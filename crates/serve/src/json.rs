//! A minimal recursive JSON reader/writer for the wire protocol.
//!
//! The workspace's `serde` is an offline no-op shim, and the flat-object
//! parser inside `srra_explore` only handles the shape of a
//! [`srra_explore::PointRecord`] line, so the protocol layer carries its own
//! small JSON value type.  Numbers are kept as their raw source text: the
//! parser never converts to `f64` and back, so re-rendering a parsed value
//! reproduces the original digits exactly (this is what lets a client pass an
//! embedded record object straight back to
//! [`srra_explore::PointRecord::from_json_line`] without losing precision).

use std::fmt::Write as _;

/// One JSON value: the full recursive grammar, with numbers kept as raw text.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw (already validated) source text.
    Number(String),
    /// A string (unescaped).
    Text(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered field list (duplicate keys keep first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document; trailing garbage is an error.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON (no added whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders the value as compact JSON into an existing buffer, so hot
    /// paths can reuse one allocation across many renders.
    pub fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Number(raw) => out.push_str(raw),
            JsonValue::Text(text) => render_string(out, text),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (name, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(out, name);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks a field up in an object (first occurrence); `None` for other
    /// variants or a missing field.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(key, _)| key == name)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The string payload, if this is a `Text` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Text(text) => Some(text),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool` value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Writes `text` as a quoted, escaped JSON string.
///
/// Public so the protocol layer can render request/response lines directly
/// into a reused buffer without building a [`JsonValue`] tree first; the
/// escaping matches [`JsonValue::render`] byte for byte.
pub fn render_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Text(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected value start {other:?} at byte {}",
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Decode by chars, not bytes: the input is valid UTF-8 already, so
        // track multi-byte sequences through a chars iterator over the rest.
        let rest = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| "invalid UTF-8 in string".to_owned())?;
        let mut chars = rest.char_indices();
        loop {
            let Some((offset, ch)) = chars.next() else {
                return Err("unterminated string".to_owned());
            };
            match ch {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let digits: String =
                            (0..4).filter_map(|_| chars.next().map(|c| c.1)).collect();
                        if digits.len() != 4 {
                            return Err("truncated \\u escape".to_owned());
                        }
                        let code = u32::from_str_radix(&digits, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape `\\{other:?}`")),
                },
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let raw =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number `{raw}` at byte {start}"));
        }
        Ok(JsonValue::Number(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders_nested_documents() {
        let text = r#"{"op":"explore","points":[{"kernel":"fir","budget":32,"deep":[1,2.5,-3e2]}],"flag":true,"none":null}"#;
        let value = JsonValue::parse(text).expect("parses");
        assert_eq!(
            value.render(),
            text,
            "raw numbers re-render byte-identically"
        );
        assert_eq!(value.get("op").and_then(JsonValue::as_str), Some("explore"));
        let points = value.get("points").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            points[0].get("budget").and_then(JsonValue::as_u64),
            Some(32)
        );
        assert_eq!(points[0].get("deep").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(value.get("flag").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(value.get("none"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}f→g";
        let rendered = {
            let mut out = String::new();
            render_string(&mut out, original);
            out
        };
        let back = JsonValue::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let value = JsonValue::parse("\"\\u0041\\u00e9\\u2192\"").unwrap();
        assert_eq!(value.as_str(), Some("Aé→"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "{\"a\":1} trailing",
            "01a",
            "nulL",
            "\"bad \\q escape\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn numbers_preserve_source_text() {
        let value = JsonValue::parse("[10.573, 1305.312048, 1e-300]").unwrap();
        assert_eq!(value.render(), "[10.573,1305.312048,1e-300]");
        let items = value.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(10.573));
        assert_eq!(items[1].as_f64(), Some(1_305.312_048));
    }
}
