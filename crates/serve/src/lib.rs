//! Sharded result store and concurrent query serving over the `srra`
//! exploration cache.
//!
//! The exploration engine of [`srra_explore`] caches every evaluated design
//! point in a content-addressed [`srra_explore::ResultStore`].  This crate
//! scales that substrate in two layers:
//!
//! 1. [`ShardedStore`] — the cache split over N fixed-header binary segment
//!    files (records routed by `key % N`; see
//!    [`srra_explore::SegmentStore`] for the on-disk record grammar), each
//!    shard behind its own read/write lock so any number of concurrent warm
//!    lookups proceed in parallel against the in-memory index (appends
//!    briefly exclude their own shard only), plus a lock file guarding the
//!    directory against concurrent processes.  Legacy JSONL shard
//!    directories open unchanged (the `.jsonl` siblings are folded in
//!    read-only); [`ShardedStore::merge_file`] folds a legacy single-file
//!    cache into the shards and [`ShardedStore::compact`] deduplicates,
//!    re-routes and rewrites dirty or legacy shards to pure segment form.
//! 2. [`Server`] — a thread-pool TCP front end (`std::net` only, no async
//!    runtime) speaking two interchangeable wire codecs — line-delimited
//!    JSON and a length-prefixed binary framing, negotiated per frame by
//!    the first byte ([`BINARY_MAGIC`] vs anything else) so clients of both
//!    kinds share one listener.  The ops: `get` a record by
//!    canonical design-point string, `explore` a batch of points (hits
//!    answered from the shards, misses evaluated through the
//!    [`srra_explore::evaluate_point`] seam exactly once — concurrent
//!    requests for the same missing point block on an in-flight table rather
//!    than re-evaluating), batched `mget` / `mexplore` (many lookups or
//!    points per wire line), `put` (store pre-evaluated records verbatim —
//!    the cluster replication tee), `ping` (liveness probe), `stats` (with
//!    per-op latency quantiles), `metrics` (the full [`srra_obs`] telemetry
//!    snapshot, as structured JSON or Prometheus text exposition), `trace`
//!    (the spans the flight recorder retains for a trace id — see
//!    `docs/observability.md`), `series` (the last N timestamped snapshots
//!    of the opt-in metrics sampler, or the rate/quantile-ready delta over a
//!    trailing window — the time dimension behind `srra cluster top` and
//!    the SLO evaluator), `digest` (per-shard anti-entropy digests:
//!    record count plus an order-insensitive hash fold, so two replicas can
//!    compare contents without shipping them) and `scan` (offset-paged
//!    canonical strings of one shard — the diff-streaming substrate for
//!    cluster repair and rebalance), and graceful `shutdown` (which also closes
//!    idle keep-alive connections so draining never waits on clients).  Any
//!    request line may carry a `trace` id — the server echoes it on the
//!    reply, emits a span tree for the request into the
//!    [`srra_obs::TraceBuffer`] flight recorder, attributes its slow-query
//!    log lines to it, and attaches it to the latency histogram bucket the
//!    request lands in as an exemplar.
//!
//! The wire protocol is specified in `docs/serving.md`; [`Request`] /
//! [`Response`] are its single shape definition, with the JSON encoding in
//! this crate's `json`/`protocol` modules and the binary encoding in
//! `binary` (over the [`srra_explore::WireSerde`] trait).  [`Connection`]
//! is the keep-alive, pipelining client used on hot paths
//! ([`Connection::connect_binary`] for the binary codec); [`Client`] is the
//! one-shot wrapper around it.
//!
//! # Quickstart
//!
//! ```
//! use srra_serve::{Client, QueryPoint, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("srra-serve-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let server = Server::bind(&ServerConfig::ephemeral(&dir))?;
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let client = Client::new(addr.to_string());
//! let reply = client.explore(&[QueryPoint::new("fir", "cpa", 32)])?;
//! assert_eq!(reply.records.len(), 1);
//! assert_eq!(reply.evaluated, 1, "cold shard: the miss is evaluated");
//! client.shutdown()?;
//! handle.join().expect("server thread")?;
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod client;
mod json;
mod protocol;
mod server;
mod shard;

pub use binary::{
    decode_payload, encode_request_frame, encode_response_frame, read_frame, FrameError,
    BINARY_MAGIC, MAX_FRAME_LEN,
};
pub use client::{Client, ClientError, Connection, ExploreReply, MultiExploreReply};
pub use json::JsonValue;
pub use protocol::{
    stamp_trace, trace_suffix, valid_trace_id, OpStats, PointOutcome, QueryPoint, Request,
    Response, ServerStats, ShardDigest, TRACE_MAX_LEN,
};
pub use server::{canonical_for, device_by_name, ServeError, Server, ServerConfig, ServerReport};
pub use shard::{CompactOutcome, MergeOutcome, ShardError, ShardedStore};

// The span type rides on `trace` replies, and the series types on `series`
// replies; re-exported so serve-layer callers need not depend on `srra_obs`
// directly.
pub use srra_obs::{SeriesSample, SnapshotDelta, Span};
