//! The line-delimited JSON wire protocol spoken between `srra serve` and
//! `srra query`.
//!
//! Every request and every response is exactly one JSON object on one line
//! (`\n`-terminated).  A connection may carry any number of request/response
//! pairs in order, and clients may *pipeline*: write several request lines
//! before reading any replies — the server answers strictly in request order.
//! The batched `mget` / `mexplore` ops amortise framing and syscalls further
//! by answering many lookups or points with a single line in each direction.
//! The full specification lives in `docs/serving.md`; this module is the
//! single encode/decode implementation used by both the server and the
//! client, so the two cannot drift apart.
//!
//! All render methods come in a pair: `render` (fresh `String`) and
//! `render_into` (append to a caller-owned buffer), so the server and the
//! keep-alive client can reuse one scratch allocation across requests.
//! Embedded [`PointRecord`]s are written straight into the output buffer as
//! their raw JSONL lines (via [`PointRecord::write_json_line`]) — no
//! intermediate [`JsonValue`] tree and no per-record temporaries — so the
//! hot `get`/`explore` reply path allocates nothing beyond the record
//! lookup itself and the buffer's own growth.

use srra_explore::PointRecord;
use srra_obs::{
    valid_metric_name, HistogramSnapshot, MetricsSnapshot, SeriesSample, SnapshotDelta, Span,
    LATENCY_BUCKETS,
};

use crate::json::{render_string, JsonValue};

/// Longest accepted `trace` id, in bytes.
pub const TRACE_MAX_LEN: usize = 64;

/// Whether `id` is a legal wire trace id: 1 ..= [`TRACE_MAX_LEN`] bytes of
/// `[A-Za-z0-9._-]`.
///
/// The restricted alphabet is what makes trace propagation free on the hot
/// path: a valid id never needs JSON escaping, so both sides can stamp and
/// strip the field with plain byte pushes (see [`stamp_trace`] /
/// [`trace_suffix`]).
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= TRACE_MAX_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
}

/// Appends `,"trace":"<id>"` inside the closing brace of the one-object JSON
/// line in `out`.
///
/// Every rendered request and response line ends in `}`, so stamping is one
/// pop plus a few pushes — no re-render.  Callers guarantee
/// [`valid_trace_id`]`(id)`.
pub fn stamp_trace(out: &mut String, id: &str) {
    debug_assert!(
        out.ends_with('}'),
        "stamping requires a rendered JSON object"
    );
    debug_assert!(valid_trace_id(id));
    out.pop();
    out.push_str(",\"trace\":\"");
    out.push_str(id);
    out.push_str("\"}");
}

/// Recognises a trailing `,"trace":"<id>"}` suffix on a one-object JSON
/// line, returning the byte offset where the suffix starts and the id.
///
/// Sound for any valid JSON line: an unescaped `"` cannot occur inside a
/// JSON string, so a raw `,"trace":"` directly before the final `"}` can
/// only be a top-level `trace` member.  Lines where the candidate id fails
/// [`valid_trace_id`] are left alone and fall through to the full parser.
pub fn trace_suffix(line: &str) -> Option<(usize, &str)> {
    let rest = line.strip_suffix("\"}")?;
    let start = rest.rfind(",\"trace\":\"")?;
    let id = &rest[start + ",\"trace\":\"".len()..];
    valid_trace_id(id).then_some((start, id))
}

/// One design point named by a query (the request-side mirror of
/// [`srra_explore::DesignPoint`], with everything by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPoint {
    /// Kernel name (`fir`, `mat`, ..., or `example`).
    pub kernel: String,
    /// Allocator name, label, version or alias (resolved through the
    /// [`srra_core::AllocatorRegistry`]).
    pub algorithm: String,
    /// Register budget.
    pub budget: u64,
    /// RAM access latency in cycles.
    pub ram_latency: u64,
    /// Device name (`xcv1000` / `xcv300`, case-insensitive, or a full part
    /// name).
    pub device: String,
}

impl QueryPoint {
    /// A point with the protocol defaults for latency (2 cycles) and device
    /// (`xcv1000`).
    pub fn new(kernel: impl Into<String>, algorithm: impl Into<String>, budget: u64) -> Self {
        Self {
            kernel: kernel.into(),
            algorithm: algorithm.into(),
            budget,
            ram_latency: 2,
            device: "xcv1000".to_owned(),
        }
    }

    fn render_into(&self, out: &mut String) {
        out.push_str("{\"kernel\":");
        render_string(out, &self.kernel);
        out.push_str(",\"algo\":");
        render_string(out, &self.algorithm);
        out.push_str(",\"budget\":");
        out.push_str(&self.budget.to_string());
        out.push_str(",\"latency\":");
        out.push_str(&self.ram_latency.to_string());
        out.push_str(",\"device\":");
        render_string(out, &self.device);
        out.push('}');
    }

    fn from_value(value: &JsonValue) -> Result<Self, String> {
        let text = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("point needs a string `{name}` field"))
        };
        let budget = value
            .get("budget")
            .and_then(JsonValue::as_u64)
            .ok_or("point needs a numeric `budget` field")?;
        let ram_latency = match value.get("latency") {
            None => 2,
            Some(v) => v.as_u64().ok_or("`latency` must be a number")?,
        };
        let device = match value.get("device") {
            None => "xcv1000".to_owned(),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or("`device` must be a string")?,
        };
        Ok(Self {
            kernel: text("kernel")?,
            algorithm: text("algo")?,
            budget,
            ram_latency,
            device,
        })
    }
}

/// Renders a `[...]` of query points.
fn render_points(out: &mut String, points: &[QueryPoint]) {
    out.push('[');
    for (index, point) in points.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        point.render_into(out);
    }
    out.push(']');
}

/// Renders a `get` request line from borrowed data (no trailing newline) —
/// the hot-path twin of [`Request::render_into`] that needs no owned
/// [`Request`].
pub(crate) fn render_get_request(out: &mut String, canonical: &str) {
    out.push_str("{\"op\":\"get\",\"canonical\":");
    render_string(out, canonical);
    out.push('}');
}

/// Renders an `mget` request line from borrowed canonicals (no trailing
/// newline).
pub(crate) fn render_mget_request(out: &mut String, canonicals: &[String]) {
    out.push_str("{\"op\":\"mget\",\"canonicals\":[");
    for (index, canonical) in canonicals.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        render_string(out, canonical);
    }
    out.push_str("]}");
}

/// Renders a `put` request line from borrowed records (no trailing newline).
pub(crate) fn render_put_request(out: &mut String, records: &[PointRecord]) {
    out.push_str("{\"op\":\"put\",\"records\":[");
    for (index, record) in records.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        record.write_json_line(out);
    }
    out.push_str("]}");
}

/// Renders an `explore`-shaped request line (`op` is `explore` or
/// `mexplore`) from borrowed points (no trailing newline).
pub(crate) fn render_points_request(out: &mut String, op: &str, points: &[QueryPoint]) {
    out.push_str("{\"op\":\"");
    out.push_str(op);
    out.push_str("\",\"points\":");
    render_points(out, points);
    out.push('}');
}

/// Parses the non-empty `points` array shared by `explore` and `mexplore`.
fn parse_points(value: &JsonValue, op: &str) -> Result<Vec<QueryPoint>, String> {
    let items = value
        .get("points")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("`{op}` needs a `points` array"))?;
    if items.is_empty() {
        return Err(format!("`{op}` needs at least one point"));
    }
    items.iter().map(QueryPoint::from_value).collect()
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look a record up by its canonical design-point string; never evaluates.
    Get {
        /// The canonical string (see `srra_explore::DesignPoint::canonical`).
        canonical: String,
    },
    /// Batched lookups: one line carrying many canonical strings, answered by
    /// one line of record-or-null results in request order.  Never evaluates.
    MultiGet {
        /// The canonical strings to look up, in reply order.
        canonicals: Vec<String>,
    },
    /// Answer a batch of design points: cache hits from the shards, misses
    /// evaluated on demand and written back.
    Explore {
        /// The points to answer, in request order.
        points: Vec<QueryPoint>,
    },
    /// Batched explore with *per-point* outcomes: points that fail to resolve
    /// answer with a per-point error instead of failing the whole batch.
    MultiExplore {
        /// The points to answer, in request order.
        points: Vec<QueryPoint>,
    },
    /// Store pre-evaluated records verbatim (no evaluation).  Used by the
    /// cluster router to tee freshly evaluated records to replica nodes; a
    /// record whose canonical is already present is a no-op.
    Put {
        /// The records to store, in their JSONL cache encoding.
        records: Vec<PointRecord>,
    },
    /// Trivial health probe: answers [`Response::Pong`] and touches nothing.
    /// Used by the cluster router to probe node liveness cheaply.
    Ping,
    /// Server statistics.
    Stats,
    /// Telemetry scrape: every instrument of the server's registry merged
    /// with the process-global one, as JSON or as a Prometheus-style text
    /// exposition (see `docs/observability.md`).
    Metrics {
        /// `false` answers [`Response::Metrics`] (JSON), `true` answers
        /// [`Response::MetricsText`] (Prometheus-style exposition).
        prometheus: bool,
    },
    /// Fetch the recorded span tree of one trace id from the server's flight
    /// recorder (see `docs/observability.md`).  Answers [`Response::Traced`]
    /// with every retained span of the trace, oldest first; a trace the
    /// recorder no longer holds answers with an empty span list, not an
    /// error.
    Trace {
        /// The trace id to look up (validated by [`valid_trace_id`]).
        id: String,
    },
    /// Time-series scrape of the server's sampled metrics ring (fed by
    /// `--sample-interval-ms`; see `docs/observability.md`).  Exactly one of
    /// the two fields is non-zero: `last` answers [`Response::Series`] with
    /// the most recent samples, `window_us` answers
    /// [`Response::SeriesDelta`] with the computed window delta (per-window
    /// counter increments and histogram buckets, last-value gauges).
    Series {
        /// Most recent samples to return (`0` when querying by window).
        last: u64,
        /// Window length in microseconds (`0` when querying by sample
        /// count).
        window_us: u64,
    },
    /// Anti-entropy digest: answers [`Response::Digests`] with one
    /// [`ShardDigest`] per shard, in shard order.  Cheap enough to compare
    /// across replicas on every repair pass without streaming records.
    Digest,
    /// Page through one shard's canonical strings in its stable store order.
    /// Answers [`Response::Scanned`]; repair and rebalance walk these pages
    /// to learn what a node holds without transferring whole records.
    Scan {
        /// Shard index to page through (`0 ..` the server's shard count).
        shard: u64,
        /// Records to skip before the first returned canonical.
        offset: u64,
        /// Maximum canonicals in this page (at least 1).
        limit: u64,
    },
    /// Graceful shutdown: the server acknowledges, stops accepting, drains
    /// in-flight connections and exits.
    Shutdown,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    /// Encodes the request into `out` (no trailing newline), reusing the
    /// buffer's allocation.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Request::Get { canonical } => render_get_request(out, canonical),
            Request::MultiGet { canonicals } => render_mget_request(out, canonicals),
            Request::Explore { points } => render_points_request(out, "explore", points),
            Request::MultiExplore { points } => render_points_request(out, "mexplore", points),
            Request::Put { records } => render_put_request(out, records),
            Request::Ping => out.push_str(r#"{"op":"ping"}"#),
            Request::Stats => out.push_str(r#"{"op":"stats"}"#),
            Request::Metrics { prometheus: false } => out.push_str(r#"{"op":"metrics"}"#),
            Request::Metrics { prometheus: true } => {
                out.push_str(r#"{"op":"metrics","format":"prometheus"}"#)
            }
            Request::Trace { id } => {
                out.push_str("{\"op\":\"trace\",\"id\":");
                render_string(out, id);
                out.push('}');
            }
            Request::Series { last, window_us } => {
                if *window_us > 0 {
                    out.push_str("{\"op\":\"series\",\"window_us\":");
                    out.push_str(&window_us.to_string());
                } else {
                    out.push_str("{\"op\":\"series\",\"last\":");
                    out.push_str(&last.to_string());
                }
                out.push('}');
            }
            Request::Digest => out.push_str(r#"{"op":"digest"}"#),
            Request::Scan {
                shard,
                offset,
                limit,
            } => {
                out.push_str("{\"op\":\"scan\",\"shard\":");
                out.push_str(&shard.to_string());
                out.push_str(",\"offset\":");
                out.push_str(&offset.to_string());
                out.push_str(",\"limit\":");
                out.push_str(&limit.to_string());
                out.push('}');
            }
            Request::Shutdown => out.push_str(r#"{"op":"shutdown"}"#),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a user-facing description of the first problem (malformed JSON,
    /// unknown op, missing fields).
    pub fn parse(line: &str) -> Result<Self, String> {
        // Fast path for the hot `get` line exactly as [`Request::render`]
        // frames it.  A canonical containing quotes or escapes falls back to
        // the general parser below.
        if let Some(rest) = line.strip_prefix("{\"op\":\"get\",\"canonical\":\"") {
            if let Some(text) = rest.strip_suffix("\"}") {
                if !text.contains('\\') && !text.contains('"') {
                    return Ok(Request::Get {
                        canonical: text.to_owned(),
                    });
                }
            }
        }
        let value = JsonValue::parse(line)?;
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string `op` field")?;
        match op {
            "get" => Ok(Request::Get {
                canonical: value
                    .get("canonical")
                    .and_then(JsonValue::as_str)
                    .ok_or("`get` needs a string `canonical` field")?
                    .to_owned(),
            }),
            "mget" => {
                let items = value
                    .get("canonicals")
                    .and_then(JsonValue::as_array)
                    .ok_or("`mget` needs a `canonicals` array")?;
                if items.is_empty() {
                    return Err("`mget` needs at least one canonical".to_owned());
                }
                let canonicals = items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_owned)
                            .ok_or("`canonicals` entries must be strings".to_owned())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::MultiGet { canonicals })
            }
            "explore" => Ok(Request::Explore {
                points: parse_points(&value, "explore")?,
            }),
            "mexplore" => Ok(Request::MultiExplore {
                points: parse_points(&value, "mexplore")?,
            }),
            "put" => {
                let items = value
                    .get("records")
                    .and_then(JsonValue::as_array)
                    .ok_or("`put` needs a `records` array")?;
                if items.is_empty() {
                    return Err("`put` needs at least one record".to_owned());
                }
                let records = items
                    .iter()
                    .map(record_from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Put { records })
            }
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => match value.get("format").map(JsonValue::as_str) {
                None => Ok(Request::Metrics { prometheus: false }),
                Some(Some("json")) => Ok(Request::Metrics { prometheus: false }),
                Some(Some("prometheus" | "prom")) => Ok(Request::Metrics { prometheus: true }),
                Some(other) => Err(format!(
                    "`metrics` format must be \"json\" or \"prometheus\", got {other:?}"
                )),
            },
            "trace" => {
                let id = value
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("`trace` needs a string `id` field")?;
                if !valid_trace_id(id) {
                    return Err(format!(
                        "`trace` id must be 1..={TRACE_MAX_LEN} bytes of [A-Za-z0-9._-]"
                    ));
                }
                Ok(Request::Trace { id: id.to_owned() })
            }
            "series" => {
                let field = |name: &str| -> Result<u64, String> {
                    match value.get(name) {
                        None => Ok(0),
                        Some(v) => v
                            .as_u64()
                            .ok_or_else(|| format!("`{name}` must be a number")),
                    }
                };
                let last = field("last")?;
                let window_us = field("window_us")?;
                if (last == 0) == (window_us == 0) {
                    return Err(
                        "`series` needs exactly one of `last` or `window_us`, non-zero".to_owned(),
                    );
                }
                Ok(Request::Series { last, window_us })
            }
            "digest" => Ok(Request::Digest),
            "scan" => {
                let shard = value
                    .get("shard")
                    .and_then(JsonValue::as_u64)
                    .ok_or("`scan` needs a numeric `shard` field")?;
                let offset = match value.get("offset") {
                    None => 0,
                    Some(v) => v.as_u64().ok_or("`offset` must be a number")?,
                };
                let limit = match value.get("limit") {
                    None => 1024,
                    Some(v) => v.as_u64().ok_or("`limit` must be a number")?,
                };
                if limit == 0 {
                    return Err("`scan` limit must be at least 1".to_owned());
                }
                Ok(Request::Scan {
                    shard,
                    offset,
                    limit,
                })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Decodes one request line together with its optional `trace` id.
    ///
    /// Clients render the `trace` member last (see [`stamp_trace`]), so the
    /// common cases — no trace at all, or a traced hot-path `get` — are
    /// answered without re-framing the line; only traced non-`get` requests
    /// pay one small copy to strip the suffix before the general parser.
    ///
    /// # Errors
    ///
    /// As [`Request::parse`].
    pub fn parse_with_trace(line: &str) -> Result<(Self, Option<String>), String> {
        let Some((start, id)) = trace_suffix(line) else {
            return Ok((Self::parse(line)?, None));
        };
        let trace = Some(id.to_owned());
        let body = &line[..start];
        // Traced twin of the hot `get` fast path in [`Request::parse`].
        if let Some(text) = body.strip_prefix("{\"op\":\"get\",\"canonical\":\"") {
            if let Some(text) = text.strip_suffix('"') {
                if !text.contains('\\') && !text.contains('"') {
                    return Ok((
                        Request::Get {
                            canonical: text.to_owned(),
                        },
                        trace,
                    ));
                }
            }
        }
        let mut stripped = String::with_capacity(body.len() + 1);
        stripped.push_str(body);
        stripped.push('}');
        Ok((Self::parse(&stripped)?, trace))
    }
}

/// One shard's anti-entropy digest, as served by the `digest` op: the
/// record count plus an order-insensitive fold of the records' content
/// hashes.  Two shards holding the same record set report the same digest
/// regardless of insertion order, and one mutated payload flips the fold —
/// so replicas can detect divergence by comparing a few integers instead of
/// streaming records (see `ShardedStore::digests`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardDigest {
    /// Records indexed in the shard.
    pub records: u64,
    /// Order-insensitive fold over the records' content hashes.
    pub fold: u64,
}

/// Request count and latency quantiles of one op, as reported by `stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Op name (`get`, `mget`, `explore`, `mexplore`, `put`, `ping`,
    /// `stats`, `shutdown`, or `invalid` for unparseable request lines).
    pub op: String,
    /// Requests of this op handled so far.
    pub count: u64,
    /// Median service time in microseconds (bucket upper bound; 0 when the
    /// op was never requested).
    pub p50_us: u64,
    /// 99th-percentile service time in microseconds (bucket upper bound).
    pub p99_us: u64,
}

/// Server statistics reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Whole seconds since the server started (the human-friendly twin of
    /// `uptime_ms`; derived from it when talking to a server that predates
    /// the field).
    pub uptime_secs: u64,
    /// The server's `srra-serve` crate version, empty when talking to a
    /// server that predates the field.
    pub version: String,
    /// Connections accepted.
    pub connections: u64,
    /// Requests handled (all ops).
    pub requests: u64,
    /// Lookups answered from the shards.
    pub hits: u64,
    /// Lookups that found nothing in the shards.
    pub misses: u64,
    /// Design points evaluated on demand.
    pub evaluated: u64,
    /// Record count per shard, in shard order.
    pub shard_records: Vec<usize>,
    /// Per-op request counts and service-time quantiles, in the server's
    /// fixed op order.  Empty when talking to a server that predates the
    /// field.
    pub ops: Vec<OpStats>,
}

impl ServerStats {
    /// Total records across all shards.
    pub fn records(&self) -> usize {
        self.shard_records.iter().sum()
    }

    /// The stats entry for `op`, if the server reported one.
    pub fn op(&self, op: &str) -> Option<&OpStats> {
        self.ops.iter().find(|entry| entry.op == op)
    }

    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "uptime_ms".to_owned(),
                JsonValue::Number(self.uptime_ms.to_string()),
            ),
            (
                "uptime_secs".to_owned(),
                JsonValue::Number(self.uptime_secs.to_string()),
            ),
            ("version".to_owned(), JsonValue::Text(self.version.clone())),
            (
                "connections".to_owned(),
                JsonValue::Number(self.connections.to_string()),
            ),
            (
                "requests".to_owned(),
                JsonValue::Number(self.requests.to_string()),
            ),
            ("hits".to_owned(), JsonValue::Number(self.hits.to_string())),
            (
                "misses".to_owned(),
                JsonValue::Number(self.misses.to_string()),
            ),
            (
                "evaluated".to_owned(),
                JsonValue::Number(self.evaluated.to_string()),
            ),
            (
                "records".to_owned(),
                JsonValue::Number(self.records().to_string()),
            ),
            (
                "shard_count".to_owned(),
                JsonValue::Number(self.shard_records.len().to_string()),
            ),
            (
                "shards".to_owned(),
                JsonValue::Array(
                    self.shard_records
                        .iter()
                        .map(|n| JsonValue::Number(n.to_string()))
                        .collect(),
                ),
            ),
            (
                "ops".to_owned(),
                JsonValue::Object(
                    self.ops
                        .iter()
                        .map(|entry| {
                            (
                                entry.op.clone(),
                                JsonValue::Object(vec![
                                    (
                                        "count".to_owned(),
                                        JsonValue::Number(entry.count.to_string()),
                                    ),
                                    (
                                        "p50_us".to_owned(),
                                        JsonValue::Number(entry.p50_us.to_string()),
                                    ),
                                    (
                                        "p99_us".to_owned(),
                                        JsonValue::Number(entry.p99_us.to_string()),
                                    ),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(value: &JsonValue) -> Result<Self, String> {
        let num = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stats need a numeric `{name}` field"))
        };
        let shard_records = value
            .get("shards")
            .and_then(JsonValue::as_array)
            .ok_or("stats need a `shards` array")?
            .iter()
            .map(|v| v.as_u64().map(|n| n as usize))
            .collect::<Option<Vec<_>>>()
            .ok_or("`shards` entries must be numbers")?;
        // Absent on pre-batching servers: default to empty rather than erroring,
        // so a new client can still read an old server's stats.
        let mut ops = Vec::new();
        if let Some(JsonValue::Object(entries)) = value.get("ops") {
            for (op, entry) in entries {
                let field = |name: &str| -> Result<u64, String> {
                    entry
                        .get(name)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("op stats need a numeric `{name}` field"))
                };
                ops.push(OpStats {
                    op: op.clone(),
                    count: field("count")?,
                    p50_us: field("p50_us")?,
                    p99_us: field("p99_us")?,
                });
            }
        }
        let uptime_ms = num("uptime_ms")?;
        // Absent on servers that predate the field (as are `version` and the
        // redundant `shard_count`): tolerate, deriving what we can.
        let uptime_secs = value
            .get("uptime_secs")
            .and_then(JsonValue::as_u64)
            .unwrap_or(uptime_ms / 1000);
        let version = value
            .get("version")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_owned();
        Ok(Self {
            uptime_ms,
            uptime_secs,
            version,
            connections: num("connections")?,
            requests: num("requests")?,
            hits: num("hits")?,
            misses: num("misses")?,
            evaluated: num("evaluated")?,
            shard_records,
            ops,
        })
    }
}

/// The per-point result of one `mexplore` entry.
//
// `Answered` dwarfs `Failed`, but outcomes overwhelmingly ARE answers on the
// hot path — boxing the record would buy smaller error variants at the price
// of one extra allocation per served record.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point resolved; `hit` is `true` when the shards already held the
    /// record before this request arrived.  `hit == false` means the point
    /// was evaluated on this request's account — by this request itself *or
    /// by a concurrent one it waited on* (matching the `evaluated` counter
    /// of [`Response::Explored`]).
    Answered {
        /// The stored or freshly evaluated record.
        record: PointRecord,
        /// Whether the shards already held the record when the request
        /// arrived.
        hit: bool,
    },
    /// The point failed to resolve (unknown kernel/algorithm/device or a
    /// store error); the rest of the batch is unaffected.
    Failed {
        /// A user-facing description of the problem.
        error: String,
    },
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `get` hit.
    Found {
        /// The stored record.
        record: PointRecord,
    },
    /// `get` miss.
    NotFound,
    /// `mget` answer: one record-or-null per requested canonical, in order.
    MultiGot {
        /// `Some(record)` for hits, `None` for misses, in request order.
        records: Vec<Option<PointRecord>>,
    },
    /// `explore` answer.
    Explored {
        /// One record per requested point, in request order.
        records: Vec<PointRecord>,
        /// Points answered from the shards.
        hits: u64,
        /// Points evaluated on demand (by this request or one it waited on).
        evaluated: u64,
    },
    /// `mexplore` answer: per-point outcomes, in request order.
    MultiExplored {
        /// One outcome per requested point.
        outcomes: Vec<PointOutcome>,
        /// Points answered from the shards.
        hits: u64,
        /// Points evaluated on demand (by this request or one it waited on).
        evaluated: u64,
    },
    /// `put` answer: how many of the records were new to the store (records
    /// whose canonical was already present are skipped).
    Stored {
        /// Newly stored records, `<=` the records in the request.
        stored: u64,
    },
    /// `ping` answer.
    Pong,
    /// `stats` answer.
    Stats(ServerStats),
    /// `metrics` answer in JSON form: the merged per-server + process-global
    /// instrument snapshot.
    Metrics(MetricsSnapshot),
    /// `metrics` answer in Prometheus-style text form, carried as one JSON
    /// string member (the exposition itself is multi-line; the wire line is
    /// still one line).
    MetricsText {
        /// The rendered exposition, `\n`-separated inside the JSON string.
        text: String,
    },
    /// `trace` answer: every span of the requested trace that the node's
    /// flight recorder still retains, sorted by start time.  An unknown or
    /// evicted trace answers with an empty list.
    Traced {
        /// The retained spans, oldest first.
        spans: Vec<Span>,
    },
    /// `series` answer (by sample count): the most recent retained samples
    /// of the server's metrics ring, oldest first.  A server whose sampler
    /// is off answers an empty list.
    Series {
        /// The retained samples, oldest first.
        samples: Vec<SeriesSample>,
    },
    /// `series` answer (by window): the delta between the newest retained
    /// sample and the oldest one inside the window — per-window counter
    /// increments and histogram buckets, last-value gauges.
    SeriesDelta {
        /// The computed window delta.
        delta: SnapshotDelta,
    },
    /// `digest` answer: one entry per shard, in shard order.
    Digests {
        /// Per-shard digests (`digests.len()` is the server's shard count).
        digests: Vec<ShardDigest>,
    },
    /// `scan` answer: one page of canonical strings from the requested shard.
    Scanned {
        /// The canonicals in this page, in the shard's stable store order.
        canonicals: Vec<String>,
        /// Whether the page reached the end of the shard (an `offset` past
        /// the end answers an empty page with `done == true`).
        done: bool,
    },
    /// `shutdown` acknowledgement.
    ShuttingDown,
    /// Any failure; the connection stays open.
    Error {
        /// A user-facing description of the problem.
        message: String,
    },
}

/// Decodes a [`PointRecord`] from a parsed JSON object by re-rendering it as
/// a JSONL line.  Numbers keep their raw source text, so the round trip is
/// bit-exact for the f64 fields.
fn record_from_value(value: &JsonValue) -> Result<PointRecord, String> {
    PointRecord::from_json_line(&value.render())
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.render_into(&mut out);
        out
    }

    /// Encodes the response into `out` (no trailing newline), reusing the
    /// buffer's allocation.  Embedded records are appended as their raw JSONL
    /// lines (byte-identical to the shard files), so the hot reply paths do
    /// not build an intermediate JSON tree.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Response::Found { record } => {
                out.push_str("{\"ok\":true,\"found\":true,\"record\":");
                record.write_json_line(out);
                out.push('}');
            }
            Response::NotFound => out.push_str(r#"{"ok":true,"found":false}"#),
            Response::MultiGot { records } => {
                out.push_str("{\"ok\":true,\"got\":[");
                for (index, record) in records.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    match record {
                        Some(record) => record.write_json_line(out),
                        None => out.push_str("null"),
                    }
                }
                out.push_str("]}");
            }
            Response::Explored {
                records,
                hits,
                evaluated,
            } => {
                out.push_str("{\"ok\":true,\"records\":[");
                for (index, record) in records.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    record.write_json_line(out);
                }
                out.push_str("],\"hits\":");
                out.push_str(&hits.to_string());
                out.push_str(",\"evaluated\":");
                out.push_str(&evaluated.to_string());
                out.push('}');
            }
            Response::MultiExplored {
                outcomes,
                hits,
                evaluated,
            } => {
                out.push_str("{\"ok\":true,\"outcomes\":[");
                for (index, outcome) in outcomes.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    match outcome {
                        PointOutcome::Answered { record, hit } => {
                            out.push_str(if *hit {
                                "{\"hit\":true,\"record\":"
                            } else {
                                "{\"hit\":false,\"record\":"
                            });
                            record.write_json_line(out);
                            out.push('}');
                        }
                        PointOutcome::Failed { error } => {
                            out.push_str("{\"error\":");
                            render_string(out, error);
                            out.push('}');
                        }
                    }
                }
                out.push_str("],\"hits\":");
                out.push_str(&hits.to_string());
                out.push_str(",\"evaluated\":");
                out.push_str(&evaluated.to_string());
                out.push('}');
            }
            Response::Stored { stored } => {
                out.push_str("{\"ok\":true,\"stored\":");
                out.push_str(&stored.to_string());
                out.push('}');
            }
            Response::Pong => out.push_str(r#"{"ok":true,"pong":true}"#),
            Response::Stats(stats) => {
                out.push_str("{\"ok\":true,\"stats\":");
                stats.to_value().render_into(out);
                out.push('}');
            }
            Response::Metrics(snapshot) => {
                out.push_str("{\"ok\":true,\"metrics\":");
                snapshot.render_json_into(out);
                out.push('}');
            }
            Response::MetricsText { text } => {
                out.push_str("{\"ok\":true,\"exposition\":");
                render_string(out, text);
                out.push('}');
            }
            Response::Traced { spans } => {
                out.push_str("{\"ok\":true,\"spans\":[");
                for (index, span) in spans.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    render_span(out, span);
                }
                out.push_str("]}");
            }
            Response::Series { samples } => {
                out.push_str("{\"ok\":true,\"series\":[");
                for (index, sample) in samples.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"at_us\":");
                    out.push_str(&sample.at_us.to_string());
                    out.push_str(",\"metrics\":");
                    sample.metrics.render_json_into(out);
                    out.push('}');
                }
                out.push_str("]}");
            }
            Response::SeriesDelta { delta } => {
                out.push_str("{\"ok\":true,\"delta\":{\"from_us\":");
                out.push_str(&delta.from_us.to_string());
                out.push_str(",\"to_us\":");
                out.push_str(&delta.to_us.to_string());
                out.push_str(",\"metrics\":");
                delta.diff.render_json_into(out);
                out.push_str("}}");
            }
            Response::Digests { digests } => {
                out.push_str("{\"ok\":true,\"digests\":[");
                for (index, digest) in digests.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"records\":");
                    out.push_str(&digest.records.to_string());
                    out.push_str(",\"fold\":");
                    out.push_str(&digest.fold.to_string());
                    out.push('}');
                }
                out.push_str("]}");
            }
            Response::Scanned { canonicals, done } => {
                out.push_str("{\"ok\":true,\"canonicals\":[");
                for (index, canonical) in canonicals.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    render_string(out, canonical);
                }
                out.push_str(if *done {
                    "],\"done\":true}"
                } else {
                    "],\"done\":false}"
                });
            }
            Response::ShuttingDown => out.push_str(r#"{"ok":true,"shutting_down":true}"#),
            Response::Error { message } => {
                out.push_str("{\"ok\":false,\"error\":");
                render_string(out, message);
                out.push('}');
            }
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (malformed JSON or an
    /// unrecognised shape).
    pub fn parse(line: &str) -> Result<Self, String> {
        // Fast path for the hot `get` hit reply exactly as
        // [`Response::render`] frames it: one flat parse of the embedded
        // record instead of a JSON tree plus a re-render plus a second
        // parse.  Any other framing falls back to the general parser below.
        if let Some(rest) = line.strip_prefix("{\"ok\":true,\"found\":true,\"record\":") {
            if let Some(record_text) = rest.strip_suffix('}') {
                if let Ok(record) = PointRecord::from_json_line(record_text) {
                    return Ok(Response::Found { record });
                }
            }
        }
        let value = JsonValue::parse(line)?;
        let ok = value
            .get("ok")
            .and_then(JsonValue::as_bool)
            .ok_or("response needs a boolean `ok` field")?;
        if !ok {
            return Ok(Response::Error {
                message: value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned(),
            });
        }
        if let Some(found) = value.get("found").and_then(JsonValue::as_bool) {
            return if found {
                Ok(Response::Found {
                    record: record_from_value(
                        value
                            .get("record")
                            .ok_or("`found` response lacks `record`")?,
                    )?,
                })
            } else {
                Ok(Response::NotFound)
            };
        }
        if let Some(items) = value.get("got").and_then(JsonValue::as_array) {
            let records = items
                .iter()
                .map(|item| match item {
                    JsonValue::Null => Ok(None),
                    other => record_from_value(other).map(Some),
                })
                .collect::<Result<Vec<_>, String>>()?;
            return Ok(Response::MultiGot { records });
        }
        if let Some(items) = value.get("outcomes").and_then(JsonValue::as_array) {
            let outcomes = items
                .iter()
                .map(|item| {
                    if let Some(error) = item.get("error").and_then(JsonValue::as_str) {
                        return Ok(PointOutcome::Failed {
                            error: error.to_owned(),
                        });
                    }
                    let hit = item
                        .get("hit")
                        .and_then(JsonValue::as_bool)
                        .ok_or("outcome needs a boolean `hit` field")?;
                    let record = record_from_value(
                        item.get("record").ok_or("outcome lacks a `record` field")?,
                    )?;
                    Ok(PointOutcome::Answered { record, hit })
                })
                .collect::<Result<Vec<_>, String>>()?;
            let (hits, evaluated) = parse_hits_evaluated(&value, "mexplore")?;
            return Ok(Response::MultiExplored {
                outcomes,
                hits,
                evaluated,
            });
        }
        if let Some(items) = value.get("records").and_then(JsonValue::as_array) {
            let records = items
                .iter()
                .map(record_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let (hits, evaluated) = parse_hits_evaluated(&value, "explore")?;
            return Ok(Response::Explored {
                records,
                hits,
                evaluated,
            });
        }
        if let Some(stored) = value.get("stored").and_then(JsonValue::as_u64) {
            return Ok(Response::Stored { stored });
        }
        if value.get("pong").and_then(JsonValue::as_bool) == Some(true) {
            return Ok(Response::Pong);
        }
        if let Some(stats) = value.get("stats") {
            return Ok(Response::Stats(ServerStats::from_value(stats)?));
        }
        if let Some(metrics) = value.get("metrics") {
            return Ok(Response::Metrics(snapshot_from_value(metrics)?));
        }
        if let Some(text) = value.get("exposition").and_then(JsonValue::as_str) {
            return Ok(Response::MetricsText {
                text: text.to_owned(),
            });
        }
        if let Some(items) = value.get("spans").and_then(JsonValue::as_array) {
            let spans = items
                .iter()
                .map(span_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(Response::Traced { spans });
        }
        if let Some(items) = value.get("series").and_then(JsonValue::as_array) {
            let samples = items
                .iter()
                .map(|item| {
                    let at_us = item
                        .get("at_us")
                        .and_then(JsonValue::as_u64)
                        .ok_or("series sample needs a numeric `at_us` field")?;
                    let metrics = snapshot_from_value(
                        item.get("metrics")
                            .ok_or("series sample lacks a `metrics` field")?,
                    )?;
                    Ok(SeriesSample { at_us, metrics })
                })
                .collect::<Result<Vec<_>, String>>()?;
            return Ok(Response::Series { samples });
        }
        if let Some(item) = value.get("delta") {
            let field = |name: &str| -> Result<u64, String> {
                item.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("series delta needs a numeric `{name}` field"))
            };
            let diff = snapshot_from_value(
                item.get("metrics")
                    .ok_or("series delta lacks a `metrics` field")?,
            )?;
            return Ok(Response::SeriesDelta {
                delta: SnapshotDelta {
                    from_us: field("from_us")?,
                    to_us: field("to_us")?,
                    diff,
                },
            });
        }
        if let Some(items) = value.get("digests").and_then(JsonValue::as_array) {
            let digests = items
                .iter()
                .map(|item| {
                    let field = |name: &str| -> Result<u64, String> {
                        item.get(name)
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("digest needs a numeric `{name}` field"))
                    };
                    Ok(ShardDigest {
                        records: field("records")?,
                        fold: field("fold")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            return Ok(Response::Digests { digests });
        }
        if let Some(items) = value.get("canonicals").and_then(JsonValue::as_array) {
            let canonicals = items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_owned)
                        .ok_or("`canonicals` entries must be strings".to_owned())
                })
                .collect::<Result<Vec<_>, String>>()?;
            let done = value
                .get("done")
                .and_then(JsonValue::as_bool)
                .ok_or("`scan` response needs a boolean `done` field")?;
            return Ok(Response::Scanned { canonicals, done });
        }
        if value.get("shutting_down").and_then(JsonValue::as_bool) == Some(true) {
            return Ok(Response::ShuttingDown);
        }
        Err("unrecognised response shape".to_owned())
    }
}

/// Renders one span as a JSON object (the `trace` reply's element shape —
/// see `docs/observability.md`).  Empty annotation lists are omitted.
fn render_span(out: &mut String, span: &Span) {
    out.push_str("{\"trace\":");
    render_string(out, &span.trace_id);
    out.push_str(",\"span\":");
    out.push_str(&span.span_id.to_string());
    out.push_str(",\"parent\":");
    out.push_str(&span.parent_id.to_string());
    out.push_str(",\"name\":");
    render_string(out, &span.name);
    out.push_str(",\"start_us\":");
    out.push_str(&span.start_us.to_string());
    out.push_str(",\"dur_us\":");
    out.push_str(&span.dur_us.to_string());
    if !span.annotations.is_empty() {
        out.push_str(",\"annotations\":{");
        for (index, (key, value)) in span.annotations.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            render_string(out, key);
            out.push(':');
            render_string(out, value);
        }
        out.push('}');
    }
    out.push('}');
}

/// Decodes one span of a `trace` reply.
fn span_from_value(value: &JsonValue) -> Result<Span, String> {
    let text = |name: &str| -> Result<String, String> {
        value
            .get(name)
            .and_then(JsonValue::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("span needs a string `{name}` field"))
    };
    let number = |name: &str| -> Result<u64, String> {
        value
            .get(name)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("span needs a numeric `{name}` field"))
    };
    let annotations = match value.get("annotations") {
        None => Vec::new(),
        Some(JsonValue::Object(entries)) => entries
            .iter()
            .map(|(key, entry)| {
                entry
                    .as_str()
                    .map(|text| (key.clone(), text.to_owned()))
                    .ok_or_else(|| format!("span annotation `{key}` must be a string"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        Some(_) => return Err("span `annotations` must be an object".to_owned()),
    };
    Ok(Span {
        trace_id: text("trace")?,
        span_id: number("span")?,
        parent_id: number("parent")?,
        name: text("name")?,
        start_us: number("start_us")?,
        dur_us: number("dur_us")?,
        annotations,
    })
}

/// Decodes the `metrics` reply body back into a [`MetricsSnapshot`].
///
/// Metric names are re-validated on the way in (they render unescaped on
/// the way out), and histogram bucket arrays may be shorter than the local
/// bucket count — a trailing-zero-trimmed or older peer's array zero-pads.
fn snapshot_from_value(value: &JsonValue) -> Result<MetricsSnapshot, String> {
    let mut snapshot = MetricsSnapshot::default();
    let entries = |name: &str| -> Result<&[(String, JsonValue)], String> {
        match value.get(name) {
            None => Ok(&[]),
            Some(JsonValue::Object(entries)) => Ok(entries),
            Some(_) => Err(format!("metrics `{name}` must be an object")),
        }
    };
    for (name, entry) in entries("counters")? {
        if !valid_metric_name(name) {
            return Err(format!("illegal metric name {name:?}"));
        }
        let count = entry
            .as_u64()
            .ok_or_else(|| format!("counter `{name}` must be a non-negative number"))?;
        snapshot.counters.push((name.clone(), count));
    }
    for (name, entry) in entries("gauges")? {
        if !valid_metric_name(name) {
            return Err(format!("illegal metric name {name:?}"));
        }
        let JsonValue::Number(raw) = entry else {
            return Err(format!("gauge `{name}` must be a number"));
        };
        let level = raw
            .parse::<i64>()
            .map_err(|_| format!("gauge `{name}` must be an integer"))?;
        snapshot.gauges.push((name.clone(), level));
    }
    for (name, entry) in entries("histograms")? {
        if !valid_metric_name(name) {
            return Err(format!("illegal metric name {name:?}"));
        }
        let buckets = entry
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("histogram `{name}` needs a `buckets` array"))?
            .iter()
            .map(JsonValue::as_u64)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| format!("histogram `{name}` buckets must be numbers"))?;
        let mut buckets = HistogramSnapshot::from_buckets(&buckets)
            .ok_or_else(|| format!("histogram `{name}` carries too many buckets"))?;
        match entry.get("exemplars") {
            None => {}
            Some(JsonValue::Object(exemplars)) => {
                // Keys are the bucket upper bounds `(1 << index) - 1` the
                // JSON rendering emits; unknown bounds are ignored so newer
                // peers with more buckets still parse.
                for (le, id) in exemplars {
                    let (Ok(bound), Some(id)) = (le.parse::<u64>(), id.as_str()) else {
                        return Err(format!(
                            "histogram `{name}` exemplars must map bucket bounds to trace ids"
                        ));
                    };
                    if let Some(index) =
                        (0..LATENCY_BUCKETS).find(|i| (1u64 << i).wrapping_sub(1) == bound)
                    {
                        buckets.set_exemplar(index, id.to_owned());
                    }
                }
            }
            Some(_) => {
                return Err(format!("histogram `{name}` exemplars must be an object"));
            }
        }
        snapshot.histograms.push((name.clone(), buckets));
    }
    Ok(snapshot)
}

/// Parses the `hits`/`evaluated` totals shared by the explore-shaped replies.
fn parse_hits_evaluated(value: &JsonValue, op: &str) -> Result<(u64, u64), String> {
    let hits = value
        .get("hits")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("`{op}` response lacks `hits`"))?;
    let evaluated = value
        .get("evaluated")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("`{op}` response lacks `evaluated`"))?;
    Ok((hits, evaluated))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> PointRecord {
        PointRecord {
            key: 0x1234_5678_9abc_def0,
            canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560".to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 17,
            total_cycles: 4242,
            compute_cycles: 4000,
            memory_cycles: 200,
            transfer_cycles: 42,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:16 \"b\":1".to_owned(),
        }
    }

    fn sample_stats() -> ServerStats {
        ServerStats {
            uptime_ms: 1234,
            uptime_secs: 1,
            version: "0.1.0".to_owned(),
            connections: 5,
            requests: 17,
            hits: 10,
            misses: 7,
            evaluated: 7,
            shard_records: vec![3, 0, 4, 1],
            ops: vec![
                OpStats {
                    op: "get".to_owned(),
                    count: 9,
                    p50_us: 63,
                    p99_us: 255,
                },
                OpStats {
                    op: "explore".to_owned(),
                    count: 8,
                    p50_us: 127,
                    p99_us: 1023,
                },
            ],
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = srra_obs::Registry::new();
        registry.counter("serve_requests_total").add(7);
        registry.gauge("serve_open_connections").set(-1);
        let latency = registry.histogram("serve_op_get_latency_us");
        latency.record_micros(40);
        latency.record_micros(5_000);
        latency.record_traced(std::time::Duration::from_micros(90), "sweep-7.a");
        registry.snapshot()
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Get {
                canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560"
                    .to_owned(),
            },
            Request::MultiGet {
                canonicals: vec![
                    "kernel=fir;algo=CPA-RA;budget=32".to_owned(),
                    "x".to_owned(),
                ],
            },
            Request::Explore {
                points: vec![
                    QueryPoint::new("fir", "cpa", 32),
                    QueryPoint {
                        kernel: "mat".to_owned(),
                        algorithm: "FR-RA".to_owned(),
                        budget: 8,
                        ram_latency: 1,
                        device: "xcv300".to_owned(),
                    },
                ],
            },
            Request::MultiExplore {
                points: vec![QueryPoint::new("mat", "fr", 16)],
            },
            Request::Put {
                records: vec![sample_record(), sample_record()],
            },
            Request::Ping,
            Request::Stats,
            Request::Metrics { prometheus: false },
            Request::Metrics { prometheus: true },
            Request::Trace {
                id: "sweep-7.a".to_owned(),
            },
            Request::Series {
                last: 16,
                window_us: 0,
            },
            Request::Series {
                last: 0,
                window_us: 60_000_000,
            },
            Request::Digest,
            Request::Scan {
                shard: 3,
                offset: 128,
                limit: 64,
            },
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.render();
            assert!(!line.contains('\n'), "one line per request");
            assert_eq!(Request::parse(&line).unwrap(), request, "line: {line}");
            // `render_into` appends exactly the same bytes.
            let mut buffer = String::from("prefix");
            request.render_into(&mut buffer);
            assert_eq!(buffer, format!("prefix{line}"));
        }
    }

    #[test]
    fn explore_points_default_latency_and_device() {
        let parsed = Request::parse(
            r#"{"op":"explore","points":[{"kernel":"fir","algo":"cpa","budget":32}]}"#,
        )
        .unwrap();
        let Request::Explore { points } = parsed else {
            panic!("wrong variant");
        };
        assert_eq!(points[0].ram_latency, 2);
        assert_eq!(points[0].device, "xcv1000");
    }

    #[test]
    fn responses_round_trip_with_bit_exact_floats() {
        let record = sample_record();
        let responses = [
            Response::Found {
                record: record.clone(),
            },
            Response::NotFound,
            Response::MultiGot {
                records: vec![Some(record.clone()), None, Some(record.clone())],
            },
            Response::Explored {
                records: vec![record.clone(), record.clone()],
                hits: 1,
                evaluated: 1,
            },
            Response::MultiExplored {
                outcomes: vec![
                    PointOutcome::Answered {
                        record: record.clone(),
                        hit: true,
                    },
                    PointOutcome::Failed {
                        error: "unknown kernel `nope`".to_owned(),
                    },
                    PointOutcome::Answered { record, hit: false },
                ],
                hits: 1,
                evaluated: 1,
            },
            Response::Stored { stored: 2 },
            Response::Pong,
            Response::Stats(sample_stats()),
            Response::Metrics(sample_snapshot()),
            Response::MetricsText {
                text: "# TYPE serve_requests_total counter\nserve_requests_total 7\n".to_owned(),
            },
            Response::Traced {
                spans: vec![
                    Span {
                        trace_id: "sweep-7.a".to_owned(),
                        span_id: 11,
                        parent_id: 0,
                        name: "explore".to_owned(),
                        start_us: 100,
                        dur_us: 900,
                        annotations: vec![("points".to_owned(), "4".to_owned())],
                    },
                    Span {
                        trace_id: "sweep-7.a".to_owned(),
                        span_id: 12,
                        parent_id: 11,
                        name: "engine.cost_model".to_owned(),
                        start_us: 400,
                        dur_us: 300,
                        annotations: Vec::new(),
                    },
                ],
            },
            Response::Traced { spans: Vec::new() },
            Response::Series {
                samples: vec![
                    SeriesSample {
                        at_us: 1_000_000,
                        metrics: sample_snapshot(),
                    },
                    SeriesSample {
                        at_us: 2_000_000,
                        metrics: sample_snapshot(),
                    },
                ],
            },
            Response::Series {
                samples: Vec::new(),
            },
            Response::SeriesDelta {
                delta: SnapshotDelta {
                    from_us: 1_000_000,
                    to_us: 2_000_000,
                    diff: sample_snapshot(),
                },
            },
            Response::Digests {
                digests: vec![
                    ShardDigest {
                        records: 3,
                        fold: 0x1234_5678_9abc_def0,
                    },
                    ShardDigest {
                        records: 0,
                        fold: 0,
                    },
                ],
            },
            Response::Scanned {
                canonicals: vec![
                    "kernel=fir;algo=CPA-RA;budget=32".to_owned(),
                    "kernel=mat;algo=FR-RA;budget=8".to_owned(),
                ],
                done: false,
            },
            Response::Scanned {
                canonicals: Vec::new(),
                done: true,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown kernel `nope`".to_owned(),
            },
        ];
        for response in responses {
            let line = response.render();
            assert!(!line.contains('\n'), "one line per response");
            assert_eq!(Response::parse(&line).unwrap(), response, "line: {line}");
            let mut buffer = String::from("prefix");
            response.render_into(&mut buffer);
            assert_eq!(buffer, format!("prefix{line}"));
        }
    }

    #[test]
    fn stats_totals_sum_the_shards_and_carry_op_latencies() {
        let stats = sample_stats();
        assert_eq!(stats.records(), 8);
        let rendered = stats.to_value().render();
        assert!(rendered.contains("\"records\":8"));
        assert!(rendered.contains("\"ops\":{\"get\":{\"count\":9,\"p50_us\":63,\"p99_us\":255}"));
        assert_eq!(stats.op("get").unwrap().count, 9);
        assert_eq!(stats.op("frobnicate"), None);
    }

    #[test]
    fn stats_without_ops_still_parse() {
        // A reply from a server that predates per-op latency accounting.
        let line = r#"{"ok":true,"stats":{"uptime_ms":1,"connections":2,"requests":3,"hits":1,"misses":2,"evaluated":2,"records":3,"shards":[1,2]}}"#;
        let Response::Stats(stats) = Response::parse(line).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(stats.shard_records, vec![1, 2]);
        assert!(stats.ops.is_empty());
        assert_eq!(stats.uptime_secs, 0, "derived from uptime_ms when absent");
        assert_eq!(stats.version, "", "absent on old servers");
    }

    #[test]
    fn stats_carry_uptime_version_and_shard_count() {
        let rendered = sample_stats().to_value().render();
        assert!(rendered.contains("\"uptime_secs\":1"));
        assert!(rendered.contains("\"version\":\"0.1.0\""));
        assert!(rendered.contains("\"shard_count\":4"));
    }

    #[test]
    fn trace_ids_stamp_and_strip_on_any_line() {
        let mut line = Request::Stats.render();
        stamp_trace(&mut line, "sweep-7.a");
        assert_eq!(line, r#"{"op":"stats","trace":"sweep-7.a"}"#);
        let (request, trace) = Request::parse_with_trace(&line).unwrap();
        assert_eq!(request, Request::Stats);
        assert_eq!(trace.as_deref(), Some("sweep-7.a"));

        // The traced hot-path `get` still decodes, trace included.
        let mut line = Request::Get {
            canonical: "kernel=fir;algo=CPA-RA;budget=32".to_owned(),
        }
        .render();
        stamp_trace(&mut line, "t1");
        let (request, trace) = Request::parse_with_trace(&line).unwrap();
        assert_eq!(
            request,
            Request::Get {
                canonical: "kernel=fir;algo=CPA-RA;budget=32".to_owned()
            }
        );
        assert_eq!(trace.as_deref(), Some("t1"));

        // Responses stamp the same way; `trace_suffix` locates the id.
        let mut reply = Response::Pong.render();
        stamp_trace(&mut reply, "t1");
        let (start, id) = trace_suffix(&reply).expect("stamped reply carries the id");
        assert_eq!(id, "t1");
        assert!(reply[..start].starts_with(r#"{"ok":true"#));
    }

    #[test]
    fn untraced_lines_and_bad_ids_have_no_trace() {
        assert_eq!(
            Request::parse_with_trace(r#"{"op":"ping"}"#).unwrap(),
            (Request::Ping, None)
        );
        // A canonical that *contains* the marker text is escaped on the wire,
        // so the suffix scanner never fires inside a string.
        let tricky = Request::Get {
            canonical: "x\",\"trace\":\"oops".to_owned(),
        };
        let line = tricky.render();
        assert_eq!(trace_suffix(&line), None);
        assert_eq!(Request::parse_with_trace(&line).unwrap(), (tricky, None));
        // Over-long or ill-charactered ids are not trace suffixes.
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id(&"x".repeat(TRACE_MAX_LEN + 1)));
        assert!(!valid_trace_id("no spaces"));
        assert!(valid_trace_id("ok-id_1.2"));
    }

    #[test]
    fn metrics_requests_validate_their_format() {
        assert_eq!(
            Request::parse(r#"{"op":"metrics","format":"prom"}"#).unwrap(),
            Request::Metrics { prometheus: true }
        );
        assert_eq!(
            Request::parse(r#"{"op":"metrics","format":"json"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert!(Request::parse(r#"{"op":"metrics","format":"xml"}"#).is_err());
        assert!(Request::parse(r#"{"op":"metrics","format":3}"#).is_err());
    }

    #[test]
    fn metrics_replies_reject_illegal_names_and_oversized_buckets() {
        assert!(Response::parse(r#"{"ok":true,"metrics":{"counters":{"bad name":1}}}"#).is_err());
        assert!(Response::parse(r#"{"ok":true,"metrics":{"gauges":{"g":1.5}}}"#).is_err());
        let buckets = vec!["1"; srra_obs::LATENCY_BUCKETS + 1].join(",");
        let line = format!(
            r#"{{"ok":true,"metrics":{{"histograms":{{"h":{{"buckets":[{buckets}]}}}}}}}}"#
        );
        assert!(Response::parse(&line).is_err());
        // Short bucket arrays (older peer, or trailing zeros trimmed) pad.
        let line = r#"{"ok":true,"metrics":{"histograms":{"h":{"buckets":[0,2]}}}}"#;
        let Response::Metrics(snapshot) = Response::parse(line).unwrap() else {
            panic!("expected metrics");
        };
        assert_eq!(snapshot.histogram("h").map(|h| h.count()), Some(2));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"get"}"#,
            r#"{"op":"explore","points":[]}"#,
            r#"{"op":"explore","points":[{"kernel":"fir"}]}"#,
            r#"{"op":"mget"}"#,
            r#"{"op":"mget","canonicals":[]}"#,
            r#"{"op":"mget","canonicals":[42]}"#,
            r#"{"op":"mexplore"}"#,
            r#"{"op":"mexplore","points":[]}"#,
            r#"{"op":"mexplore","points":[{"algo":"cpa","budget":32}]}"#,
            r#"{"op":"put"}"#,
            r#"{"op":"put","records":[]}"#,
            r#"{"op":"put","records":[{"kernel":"fir"}]}"#,
            r#"{"op":"trace"}"#,
            r#"{"op":"trace","id":""}"#,
            r#"{"op":"trace","id":"no spaces"}"#,
            r#"{"op":"scan"}"#,
            r#"{"op":"scan","shard":"zero"}"#,
            r#"{"op":"scan","shard":0,"limit":0}"#,
            r#"{"op":"series"}"#,
            r#"{"op":"series","last":0}"#,
            r#"{"op":"series","last":4,"window_us":1000}"#,
            r#"{"op":"series","last":"four"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted `{bad}`");
        }
    }
}
