//! The line-delimited JSON wire protocol spoken between `srra serve` and
//! `srra query`.
//!
//! Every request and every response is exactly one JSON object on one line
//! (`\n`-terminated).  A connection may carry any number of request/response
//! pairs in order.  The full specification lives in `docs/serving.md`; this
//! module is the single encode/decode implementation used by both the server
//! and the client, so the two cannot drift apart.

use srra_explore::PointRecord;

use crate::json::JsonValue;

/// One design point named by a query (the request-side mirror of
/// [`srra_explore::DesignPoint`], with everything by name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPoint {
    /// Kernel name (`fir`, `mat`, ..., or `example`).
    pub kernel: String,
    /// Allocator name, label, version or alias (resolved through the
    /// [`srra_core::AllocatorRegistry`]).
    pub algorithm: String,
    /// Register budget.
    pub budget: u64,
    /// RAM access latency in cycles.
    pub ram_latency: u64,
    /// Device name (`xcv1000` / `xcv300`, case-insensitive, or a full part
    /// name).
    pub device: String,
}

impl QueryPoint {
    /// A point with the protocol defaults for latency (2 cycles) and device
    /// (`xcv1000`).
    pub fn new(kernel: impl Into<String>, algorithm: impl Into<String>, budget: u64) -> Self {
        Self {
            kernel: kernel.into(),
            algorithm: algorithm.into(),
            budget,
            ram_latency: 2,
            device: "xcv1000".to_owned(),
        }
    }

    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("kernel".to_owned(), JsonValue::Text(self.kernel.clone())),
            ("algo".to_owned(), JsonValue::Text(self.algorithm.clone())),
            (
                "budget".to_owned(),
                JsonValue::Number(self.budget.to_string()),
            ),
            (
                "latency".to_owned(),
                JsonValue::Number(self.ram_latency.to_string()),
            ),
            ("device".to_owned(), JsonValue::Text(self.device.clone())),
        ])
    }

    fn from_value(value: &JsonValue) -> Result<Self, String> {
        let text = |name: &str| -> Result<String, String> {
            value
                .get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("point needs a string `{name}` field"))
        };
        let budget = value
            .get("budget")
            .and_then(JsonValue::as_u64)
            .ok_or("point needs a numeric `budget` field")?;
        let ram_latency = match value.get("latency") {
            None => 2,
            Some(v) => v.as_u64().ok_or("`latency` must be a number")?,
        };
        let device = match value.get("device") {
            None => "xcv1000".to_owned(),
            Some(v) => v
                .as_str()
                .map(str::to_owned)
                .ok_or("`device` must be a string")?,
        };
        Ok(Self {
            kernel: text("kernel")?,
            algorithm: text("algo")?,
            budget,
            ram_latency,
            device,
        })
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Look a record up by its canonical design-point string; never evaluates.
    Get {
        /// The canonical string (see `srra_explore::DesignPoint::canonical`).
        canonical: String,
    },
    /// Answer a batch of design points: cache hits from the shards, misses
    /// evaluated on demand and written back.
    Explore {
        /// The points to answer, in request order.
        points: Vec<QueryPoint>,
    },
    /// Server statistics.
    Stats,
    /// Graceful shutdown: the server acknowledges, stops accepting, drains
    /// in-flight connections and exits.
    Shutdown,
}

impl Request {
    /// Encodes the request as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Request::Get { canonical } => JsonValue::Object(vec![
                ("op".to_owned(), JsonValue::Text("get".to_owned())),
                ("canonical".to_owned(), JsonValue::Text(canonical.clone())),
            ])
            .render(),
            Request::Explore { points } => JsonValue::Object(vec![
                ("op".to_owned(), JsonValue::Text("explore".to_owned())),
                (
                    "points".to_owned(),
                    JsonValue::Array(points.iter().map(QueryPoint::to_value).collect()),
                ),
            ])
            .render(),
            Request::Stats => r#"{"op":"stats"}"#.to_owned(),
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_owned(),
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// Returns a user-facing description of the first problem (malformed JSON,
    /// unknown op, missing fields).
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = JsonValue::parse(line)?;
        let op = value
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("request needs a string `op` field")?;
        match op {
            "get" => Ok(Request::Get {
                canonical: value
                    .get("canonical")
                    .and_then(JsonValue::as_str)
                    .ok_or("`get` needs a string `canonical` field")?
                    .to_owned(),
            }),
            "explore" => {
                let items = value
                    .get("points")
                    .and_then(JsonValue::as_array)
                    .ok_or("`explore` needs a `points` array")?;
                if items.is_empty() {
                    return Err("`explore` needs at least one point".to_owned());
                }
                let points = items
                    .iter()
                    .map(QueryPoint::from_value)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Request::Explore { points })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Server statistics reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Requests handled (all ops).
    pub requests: u64,
    /// Lookups answered from the shards.
    pub hits: u64,
    /// Lookups that found nothing in the shards.
    pub misses: u64,
    /// Design points evaluated on demand.
    pub evaluated: u64,
    /// Record count per shard, in shard order.
    pub shard_records: Vec<usize>,
}

impl ServerStats {
    /// Total records across all shards.
    pub fn records(&self) -> usize {
        self.shard_records.iter().sum()
    }

    fn to_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "uptime_ms".to_owned(),
                JsonValue::Number(self.uptime_ms.to_string()),
            ),
            (
                "connections".to_owned(),
                JsonValue::Number(self.connections.to_string()),
            ),
            (
                "requests".to_owned(),
                JsonValue::Number(self.requests.to_string()),
            ),
            ("hits".to_owned(), JsonValue::Number(self.hits.to_string())),
            (
                "misses".to_owned(),
                JsonValue::Number(self.misses.to_string()),
            ),
            (
                "evaluated".to_owned(),
                JsonValue::Number(self.evaluated.to_string()),
            ),
            (
                "records".to_owned(),
                JsonValue::Number(self.records().to_string()),
            ),
            (
                "shards".to_owned(),
                JsonValue::Array(
                    self.shard_records
                        .iter()
                        .map(|n| JsonValue::Number(n.to_string()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_value(value: &JsonValue) -> Result<Self, String> {
        let num = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stats need a numeric `{name}` field"))
        };
        let shard_records = value
            .get("shards")
            .and_then(JsonValue::as_array)
            .ok_or("stats need a `shards` array")?
            .iter()
            .map(|v| v.as_u64().map(|n| n as usize))
            .collect::<Option<Vec<_>>>()
            .ok_or("`shards` entries must be numbers")?;
        Ok(Self {
            uptime_ms: num("uptime_ms")?,
            connections: num("connections")?,
            requests: num("requests")?,
            hits: num("hits")?,
            misses: num("misses")?,
            evaluated: num("evaluated")?,
            shard_records,
        })
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `get` hit.
    Found {
        /// The stored record.
        record: PointRecord,
    },
    /// `get` miss.
    NotFound,
    /// `explore` answer.
    Explored {
        /// One record per requested point, in request order.
        records: Vec<PointRecord>,
        /// Points answered from the shards.
        hits: u64,
        /// Points evaluated on demand (by this request or one it waited on).
        evaluated: u64,
    },
    /// `stats` answer.
    Stats(ServerStats),
    /// `shutdown` acknowledgement.
    ShuttingDown,
    /// Any failure; the connection stays open.
    Error {
        /// A user-facing description of the problem.
        message: String,
    },
}

/// Embeds a [`PointRecord`] as a raw JSON object (its JSONL line).
fn record_value(record: &PointRecord) -> JsonValue {
    JsonValue::parse(&record.to_json_line()).expect("PointRecord lines are valid JSON")
}

/// Decodes a [`PointRecord`] from a parsed JSON object by re-rendering it as
/// a JSONL line.  Numbers keep their raw source text, so the round trip is
/// bit-exact for the f64 fields.
fn record_from_value(value: &JsonValue) -> Result<PointRecord, String> {
    PointRecord::from_json_line(&value.render())
}

impl Response {
    /// Encodes the response as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Response::Found { record } => JsonValue::Object(vec![
                ("ok".to_owned(), JsonValue::Bool(true)),
                ("found".to_owned(), JsonValue::Bool(true)),
                ("record".to_owned(), record_value(record)),
            ])
            .render(),
            Response::NotFound => r#"{"ok":true,"found":false}"#.to_owned(),
            Response::Explored {
                records,
                hits,
                evaluated,
            } => JsonValue::Object(vec![
                ("ok".to_owned(), JsonValue::Bool(true)),
                (
                    "records".to_owned(),
                    JsonValue::Array(records.iter().map(record_value).collect()),
                ),
                ("hits".to_owned(), JsonValue::Number(hits.to_string())),
                (
                    "evaluated".to_owned(),
                    JsonValue::Number(evaluated.to_string()),
                ),
            ])
            .render(),
            Response::Stats(stats) => JsonValue::Object(vec![
                ("ok".to_owned(), JsonValue::Bool(true)),
                ("stats".to_owned(), stats.to_value()),
            ])
            .render(),
            Response::ShuttingDown => r#"{"ok":true,"shutting_down":true}"#.to_owned(),
            Response::Error { message } => JsonValue::Object(vec![
                ("ok".to_owned(), JsonValue::Bool(false)),
                ("error".to_owned(), JsonValue::Text(message.clone())),
            ])
            .render(),
        }
    }

    /// Decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (malformed JSON or an
    /// unrecognised shape).
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = JsonValue::parse(line)?;
        let ok = value
            .get("ok")
            .and_then(JsonValue::as_bool)
            .ok_or("response needs a boolean `ok` field")?;
        if !ok {
            return Ok(Response::Error {
                message: value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified server error")
                    .to_owned(),
            });
        }
        if let Some(found) = value.get("found").and_then(JsonValue::as_bool) {
            return if found {
                Ok(Response::Found {
                    record: record_from_value(
                        value
                            .get("record")
                            .ok_or("`found` response lacks `record`")?,
                    )?,
                })
            } else {
                Ok(Response::NotFound)
            };
        }
        if let Some(items) = value.get("records").and_then(JsonValue::as_array) {
            let records = items
                .iter()
                .map(record_from_value)
                .collect::<Result<Vec<_>, _>>()?;
            let hits = value
                .get("hits")
                .and_then(JsonValue::as_u64)
                .ok_or("`explore` response lacks `hits`")?;
            let evaluated = value
                .get("evaluated")
                .and_then(JsonValue::as_u64)
                .ok_or("`explore` response lacks `evaluated`")?;
            return Ok(Response::Explored {
                records,
                hits,
                evaluated,
            });
        }
        if let Some(stats) = value.get("stats") {
            return Ok(Response::Stats(ServerStats::from_value(stats)?));
        }
        if value.get("shutting_down").and_then(JsonValue::as_bool) == Some(true) {
            return Ok(Response::ShuttingDown);
        }
        Err("unrecognised response shape".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> PointRecord {
        PointRecord {
            key: 0x1234_5678_9abc_def0,
            canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560".to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 17,
            total_cycles: 4242,
            compute_cycles: 4000,
            memory_cycles: 200,
            transfer_cycles: 42,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:16 \"b\":1".to_owned(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Get {
                canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560"
                    .to_owned(),
            },
            Request::Explore {
                points: vec![
                    QueryPoint::new("fir", "cpa", 32),
                    QueryPoint {
                        kernel: "mat".to_owned(),
                        algorithm: "FR-RA".to_owned(),
                        budget: 8,
                        ram_latency: 1,
                        device: "xcv300".to_owned(),
                    },
                ],
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.render();
            assert!(!line.contains('\n'), "one line per request");
            assert_eq!(Request::parse(&line).unwrap(), request, "line: {line}");
        }
    }

    #[test]
    fn explore_points_default_latency_and_device() {
        let parsed = Request::parse(
            r#"{"op":"explore","points":[{"kernel":"fir","algo":"cpa","budget":32}]}"#,
        )
        .unwrap();
        let Request::Explore { points } = parsed else {
            panic!("wrong variant");
        };
        assert_eq!(points[0].ram_latency, 2);
        assert_eq!(points[0].device, "xcv1000");
    }

    #[test]
    fn responses_round_trip_with_bit_exact_floats() {
        let record = sample_record();
        let responses = [
            Response::Found {
                record: record.clone(),
            },
            Response::NotFound,
            Response::Explored {
                records: vec![record.clone(), record],
                hits: 1,
                evaluated: 1,
            },
            Response::Stats(ServerStats {
                uptime_ms: 1234,
                connections: 5,
                requests: 17,
                hits: 10,
                misses: 7,
                evaluated: 7,
                shard_records: vec![3, 0, 4, 1],
            }),
            Response::ShuttingDown,
            Response::Error {
                message: "unknown kernel `nope`".to_owned(),
            },
        ];
        for response in responses {
            let line = response.render();
            assert!(!line.contains('\n'), "one line per response");
            assert_eq!(Response::parse(&line).unwrap(), response, "line: {line}");
        }
    }

    #[test]
    fn stats_totals_sum_the_shards() {
        let stats = ServerStats {
            uptime_ms: 1,
            connections: 1,
            requests: 1,
            hits: 0,
            misses: 0,
            evaluated: 0,
            shard_records: vec![2, 3, 5],
        };
        assert_eq!(stats.records(), 10);
        assert!(stats.to_value().render().contains("\"records\":10"));
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"get"}"#,
            r#"{"op":"explore","points":[]}"#,
            r#"{"op":"explore","points":[{"kernel":"fir"}]}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted `{bad}`");
        }
    }
}
