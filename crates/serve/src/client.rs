//! Blocking clients for the serve protocol, used by `srra query`, the
//! integration tests and the serving benchmark.
//!
//! [`Connection`] is the hot-path client: it keeps one `TcpStream` (with
//! `TCP_NODELAY`) alive across any number of requests, renders each request
//! plus its trailing `\n` into a reused scratch buffer and sends it with a
//! single `write_all`, and supports *pipelining* — write N request lines
//! back-to-back, then read the N replies in order.  [`Client`] is the
//! connection-per-request convenience wrapper kept for one-shot callers: each
//! call opens a fresh [`Connection`], performs one round trip and drops it.
//!
//! A keep-alive socket can go stale while idle — the server restarted, or a
//! middlebox dropped the connection — surfacing as broken-pipe / ECONNRESET
//! on the next write or an immediate EOF on the next read.  The single
//! request/response methods transparently reconnect and retry **once** in
//! that case (safe: a stale failure means no reply byte arrived, and every
//! protocol op except `shutdown` is idempotent — `shutdown` alone is never
//! retried, since a replay could stop a server restarted between the
//! attempts); [`Connection::pipeline`] retries only when the failure
//! precedes its first reply byte and the window carries no `shutdown`, so
//! replies are never replayed or lost.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use srra_explore::codec::WireError;
use srra_explore::PointRecord;
use srra_obs::{Counter, MetricsSnapshot, Registry, SeriesSample, SnapshotDelta, Span};

use crate::binary::{
    encode_get_frame, encode_mget_frame, encode_points_frame, encode_put_frame,
    encode_request_frame, read_frame, FrameError,
};
use crate::protocol::{
    render_get_request, render_mget_request, render_points_request, render_put_request,
    stamp_trace, trace_suffix, valid_trace_id, PointOutcome, QueryPoint, Request, Response,
    ServerStats, ShardDigest,
};

/// Lifts a codec failure into the client error space.
fn wire_err(err: WireError) -> ClientError {
    match err {
        WireError::Io(err) => ClientError::Io(err),
        WireError::Corrupt(message) => ClientError::Protocol(message),
    }
}

/// Handles into [`Registry::global`] for the client-side instruments,
/// resolved once — recording on the reconnect paths is handle-direct.
struct ConnectionMetrics {
    connects: Arc<Counter>,
    reconnect_retries: Arc<Counter>,
}

fn connection_metrics() -> &'static ConnectionMetrics {
    static METRICS: OnceLock<ConnectionMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        ConnectionMetrics {
            connects: registry.counter("client_connects_total"),
            reconnect_retries: registry.counter("client_reconnect_retries_total"),
        }
    })
}

/// Errors of the query client.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The response line could not be decoded.
    Protocol(String),
    /// The server answered with an error response.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "query I/O error: {err}"),
            ClientError::Protocol(message) => write!(f, "malformed server response: {message}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// The records and cache statistics of one `explore` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReply {
    /// One record per requested point, in request order.
    pub records: Vec<PointRecord>,
    /// Points answered from the shards.
    pub hits: u64,
    /// Points evaluated on demand.
    pub evaluated: u64,
}

/// The per-point outcomes and cache statistics of one `mexplore` request.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiExploreReply {
    /// One outcome per requested point, in request order.
    pub outcomes: Vec<PointOutcome>,
    /// Points answered from the shards.
    pub hits: u64,
    /// Points evaluated on demand.
    pub evaluated: u64,
}

/// A persistent keep-alive connection to one server.
///
/// One `TcpStream` carries any number of request/response pairs; the server
/// answers in strict request order.  All methods take `&mut self` — a
/// connection is a sequential conversation, callers wanting parallelism open
/// several connections.
#[derive(Debug)]
pub struct Connection {
    /// The `host:port` this connection targets, kept for transparent
    /// reconnects after the socket goes stale.
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether this connection speaks the binary frame codec instead of
    /// JSON lines (chosen at connect time; the server negotiates per frame).
    binary: bool,
    /// Scratch buffer for rendering outgoing request lines.
    scratch: String,
    /// Scratch buffer for incoming response lines.
    line: String,
    /// Scratch buffer for outgoing binary frames.
    frame: Vec<u8>,
    /// Scratch buffer for incoming binary frame payloads.
    payload: Vec<u8>,
    /// Trace id stamped onto every outgoing request line, when set.
    trace: Option<String>,
    /// Trace id echoed on the most recently received reply, if any.
    last_trace: Option<String>,
    /// I/O deadline applied to connects, reads and writes; `None` blocks
    /// indefinitely (the pre-deadline behaviour).
    timeout: Option<Duration>,
}

/// Whether `err` says the keep-alive socket went stale while idle (server
/// restart, middlebox drop) — the failures a reconnect-and-retry can heal.
fn is_stale(err: &ClientError) -> bool {
    matches!(err, ClientError::Io(io) if matches!(
        io.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected
    ))
}

/// Opens the `TCP_NODELAY` stream pair for `addr`.  With a `timeout`, the
/// connect and every subsequent read and write carry that deadline — a hung,
/// partitioned or stalled server surfaces as a `TimedOut`/`WouldBlock` I/O
/// error instead of blocking the caller forever.
fn open_stream(
    addr: &str,
    timeout: Option<Duration>,
) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let mut addrs = addr.to_socket_addrs()?;
    let addr = addrs
        .next()
        .ok_or_else(|| ClientError::Protocol(format!("unresolvable address `{addr}`")))?;
    let stream = match timeout {
        None => TcpStream::connect(addr)?,
        Some(deadline) => TcpStream::connect_timeout(&addr, deadline)?,
    };
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    connection_metrics().connects.inc();
    Ok((BufReader::new(stream), writer))
}

impl Connection {
    /// Connects to the server at `addr` (`host:port`) and disables Nagle's
    /// algorithm, so single-line requests leave immediately.
    ///
    /// # Errors
    ///
    /// Connection failures and unresolvable addresses.
    pub fn connect(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with_codec(addr, false, None)
    }

    /// Like [`connect`](Connection::connect), with an I/O deadline: the
    /// connect, every read and every write time out after `timeout`, so a
    /// hung or partitioned server costs at most the deadline instead of
    /// blocking forever.  `None` disables the deadline.
    ///
    /// # Errors
    ///
    /// Connection failures (including a connect timeout) and unresolvable
    /// addresses.
    pub fn connect_with_timeout(
        addr: &str,
        timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        Self::connect_with_codec(addr, false, timeout)
    }

    /// Like [`connect`](Connection::connect), but the connection speaks the
    /// length-prefixed binary codec (`docs/serving.md`) instead of JSON
    /// lines — same protocol, same server port, no text parse on either
    /// side's hot path.
    ///
    /// # Errors
    ///
    /// Connection failures and unresolvable addresses.
    pub fn connect_binary(addr: &str) -> Result<Self, ClientError> {
        Self::connect_with_codec(addr, true, None)
    }

    /// The binary twin of [`connect_with_timeout`](Self::connect_with_timeout).
    ///
    /// # Errors
    ///
    /// Connection failures (including a connect timeout) and unresolvable
    /// addresses.
    pub fn connect_binary_with_timeout(
        addr: &str,
        timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        Self::connect_with_codec(addr, true, timeout)
    }

    fn connect_with_codec(
        addr: &str,
        binary: bool,
        timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let (reader, writer) = open_stream(addr, timeout)?;
        Ok(Self {
            addr: addr.to_owned(),
            reader,
            writer,
            binary,
            scratch: String::with_capacity(256),
            line: String::with_capacity(256),
            frame: Vec::with_capacity(256),
            payload: Vec::with_capacity(256),
            trace: None,
            last_trace: None,
            timeout,
        })
    }

    /// The I/O deadline this connection applies to connects, reads and
    /// writes, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// The `host:port` this connection targets.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether this connection speaks the binary frame codec.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Sets (or clears, with `None`) the trace id stamped onto every
    /// outgoing request line from now on.  The server echoes the id on each
    /// reply — readable afterwards via [`last_trace`](Connection::last_trace)
    /// — and attributes its slow-query log lines to it.
    ///
    /// # Errors
    ///
    /// Rejects ids that are empty, longer than
    /// [`TRACE_MAX_LEN`](crate::protocol::TRACE_MAX_LEN) bytes, or contain
    /// characters outside `[A-Za-z0-9._-]`.
    pub fn set_trace(&mut self, trace: Option<&str>) -> Result<(), ClientError> {
        match trace {
            Some(id) if !valid_trace_id(id) => Err(ClientError::Protocol(format!(
                "invalid trace id `{id}`: want 1-64 bytes of [A-Za-z0-9._-]"
            ))),
            Some(id) => {
                self.trace = Some(id.to_owned());
                Ok(())
            }
            None => {
                self.trace = None;
                Ok(())
            }
        }
    }

    /// The trace id currently stamped onto outgoing requests, if any.
    pub fn trace(&self) -> Option<&str> {
        self.trace.as_deref()
    }

    /// The trace id the server echoed on the most recent reply, if any.
    pub fn last_trace(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// Replaces the stale socket with a fresh one to the same address.  The
    /// scratch buffers (and whatever request line `scratch` holds) survive,
    /// so a failed call can be replayed byte-identically.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = open_stream(&self.addr, self.timeout)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Writes one request (a terminated line, or one binary frame) with a
    /// single `write_all`, without waiting for the reply.
    ///
    /// Pair each `send` with a later [`receive`](Connection::receive): the
    /// server replies in request order.
    ///
    /// # Errors
    ///
    /// Socket-level failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        if self.binary {
            self.frame.clear();
            encode_request_frame(&mut self.frame, self.trace.as_deref(), request)
                .map_err(wire_err)?;
            self.writer.write_all(&self.frame)?;
            return Ok(());
        }
        self.scratch.clear();
        request.render_into(&mut self.scratch);
        self.send_scratch_line()
    }

    /// Stamps the connection's trace id (when set) onto the request line
    /// sitting in `scratch` and terminates it with `\n`.
    fn finish_scratch_line(&mut self) {
        if let Some(trace) = &self.trace {
            stamp_trace(&mut self.scratch, trace);
        }
        self.scratch.push('\n');
    }

    /// Terminates and writes the request line sitting in `scratch` with one
    /// `write_all`.
    fn send_scratch_line(&mut self) -> Result<(), ClientError> {
        self.finish_scratch_line();
        self.writer.write_all(self.scratch.as_bytes())?;
        Ok(())
    }

    /// Reads and decodes the next response (line or binary frame, matching
    /// this connection's codec).
    ///
    /// # Errors
    ///
    /// Socket-level failures ([`std::io::ErrorKind::UnexpectedEof`] when the
    /// connection closes before the reply) and malformed responses.
    pub fn receive(&mut self) -> Result<Response, ClientError> {
        if self.binary {
            return self.receive_frame();
        }
        self.line.clear();
        self.reader.read_line(&mut self.line)?;
        if self.line.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection without answering",
            )));
        }
        self.line.truncate(self.line.trim_end().len());
        // Peel an echoed trace id off the reply before parsing, so traced
        // replies still hit the codec's exact-shape fast paths.
        self.last_trace = None;
        let echoed = trace_suffix(&self.line).map(|(start, id)| (start, id.to_owned()));
        if let Some((start, id)) = echoed {
            self.last_trace = Some(id);
            self.line.truncate(start);
            self.line.push('}');
        }
        Response::parse(&self.line).map_err(ClientError::Protocol)
    }

    /// The binary twin of the line-based `receive`: reads one reply frame
    /// and decodes it, recording the echoed trace id.
    fn receive_frame(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader, &mut self.payload) {
            Ok(()) => {}
            Err(FrameError::Io(err)) => return Err(ClientError::Io(err)),
            Err(err) => return Err(ClientError::Protocol(err.to_string())),
        }
        let (response, trace) =
            crate::binary::decode_payload::<Response>(&self.payload).map_err(wire_err)?;
        self.last_trace = trace;
        Ok(response)
    }

    /// Completes the request prepared in the active codec's scratch buffer
    /// (JSON: stamps the trace and terminates the line; binary: the frame is
    /// already complete), performs the round trip, and — when the socket
    /// turns out to be stale — reconnects and replays the identical bytes
    /// exactly once.  Safe because every protocol op is idempotent and a
    /// stale failure means no reply byte arrived.
    fn roundtrip_prepared(&mut self) -> Result<Response, ClientError> {
        if !self.binary {
            self.finish_scratch_line();
        }
        match self.try_roundtrip_prepared() {
            Err(err) if is_stale(&err) => {
                connection_metrics().reconnect_retries.inc();
                self.reconnect()?;
                self.try_roundtrip_prepared()
            }
            other => other,
        }
    }

    /// One attempt of [`roundtrip_prepared`](Connection::roundtrip_prepared):
    /// writes the prepared request bytes and reads one reply.
    fn try_roundtrip_prepared(&mut self) -> Result<Response, ClientError> {
        if self.binary {
            self.writer.write_all(&self.frame)?;
        } else {
            self.writer.write_all(self.scratch.as_bytes())?;
        }
        self.receive()
    }

    /// Prepares `request` in the active codec's scratch buffer (trace baked
    /// into binary frames; JSON lines get theirs in `finish_scratch_line`).
    fn prepare_request(&mut self, request: &Request) -> Result<(), ClientError> {
        if self.binary {
            self.frame.clear();
            encode_request_frame(&mut self.frame, self.trace.as_deref(), request).map_err(wire_err)
        } else {
            self.scratch.clear();
            request.render_into(&mut self.scratch);
            Ok(())
        }
    }

    /// Sends one request and reads its response, transparently reconnecting
    /// and retrying once if the idle socket had gone stale (broken pipe /
    /// connection reset / immediate EOF).  `shutdown` is the one
    /// non-idempotent op, so it is never retried — reconnect-and-replay
    /// could stop a server that was restarted between the two attempts.
    ///
    /// # Errors
    ///
    /// Socket-level failures and malformed responses.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.prepare_request(request)?;
        if matches!(request, Request::Shutdown) {
            if !self.binary {
                self.finish_scratch_line();
            }
            return self.try_roundtrip_prepared();
        }
        self.roundtrip_prepared()
    }

    /// Pipelines a batch: renders *all* request lines into one buffer, sends
    /// them with a single `write_all`, then reads the replies in order.
    ///
    /// The caller bounds the batch: both peers' socket buffers must absorb
    /// the whole request window plus the replies produced while the client
    /// is still writing, so keep batches to at most a few hundred lines
    /// (the in-tree callers use 48–256) and loop for larger workloads.
    ///
    /// A stale socket detected on the write or **before the first reply
    /// byte** reconnects and replays the whole window once; once any reply
    /// has been consumed the batch fails as-is (replaying would re-execute
    /// requests whose replies are gone).  A window containing the one
    /// non-idempotent op, `shutdown`, is never replayed — the replay could
    /// stop a server that was restarted between the attempts.
    ///
    /// # Errors
    ///
    /// Socket-level failures and malformed responses.  An [`Response::Error`]
    /// reply is returned in place, not promoted to an `Err` — pipelined
    /// batches are position-addressed.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if self.binary {
            self.frame.clear();
            for request in requests {
                encode_request_frame(&mut self.frame, self.trace.as_deref(), request)
                    .map_err(wire_err)?;
            }
        } else {
            self.scratch.clear();
            for request in requests {
                request.render_into(&mut self.scratch);
                if let Some(trace) = &self.trace {
                    stamp_trace(&mut self.scratch, trace);
                }
                self.scratch.push('\n');
            }
        }
        let replayable = !requests
            .iter()
            .any(|request| matches!(request, Request::Shutdown));
        match self.try_pipeline_prepared(requests.len()) {
            Err((_, true)) if replayable => {
                connection_metrics().reconnect_retries.inc();
                self.reconnect()?;
                self.try_pipeline_prepared(requests.len())
                    .map_err(|(err, _)| err)
            }
            Err((err, _)) => Err(err),
            Ok(responses) => Ok(responses),
        }
    }

    /// One attempt of [`pipeline`](Connection::pipeline): writes the whole
    /// pre-rendered window (lines or frames), then reads `count` replies.
    /// The error's boolean says whether a retry is safe: `true` only while
    /// no reply byte has been consumed.
    fn try_pipeline_prepared(
        &mut self,
        count: usize,
    ) -> Result<Vec<Response>, (ClientError, bool)> {
        let written = if self.binary {
            self.writer.write_all(&self.frame)
        } else {
            self.writer.write_all(self.scratch.as_bytes())
        };
        if let Err(err) = written {
            let err = ClientError::Io(err);
            let retryable = is_stale(&err);
            return Err((err, retryable));
        }
        let mut responses = Vec::with_capacity(count);
        for index in 0..count {
            match self.receive() {
                Ok(response) => responses.push(response),
                Err(err) => {
                    let retryable = index == 0 && is_stale(&err);
                    return Err((err, retryable));
                }
            }
        }
        Ok(responses)
    }

    /// Looks a record up by canonical string; `None` is a miss.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn get(&mut self, canonical: &str) -> Result<Option<PointRecord>, ClientError> {
        // Encoded from the borrowed canonical — no owned Request, no clone.
        if self.binary {
            self.frame.clear();
            encode_get_frame(&mut self.frame, self.trace.as_deref(), canonical)
                .map_err(wire_err)?;
        } else {
            self.scratch.clear();
            render_get_request(&mut self.scratch, canonical);
        }
        expect_get(self.roundtrip_prepared()?)
    }

    /// Looks a batch of canonical strings up in one request/reply pair.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn mget(&mut self, canonicals: &[String]) -> Result<Vec<Option<PointRecord>>, ClientError> {
        if self.binary {
            self.frame.clear();
            encode_mget_frame(&mut self.frame, self.trace.as_deref(), canonicals)
                .map_err(wire_err)?;
        } else {
            self.scratch.clear();
            render_mget_request(&mut self.scratch, canonicals);
        }
        expect_mget(self.roundtrip_prepared()?)
    }

    /// Answers a batch of design points (hits from the shards, misses
    /// evaluated server-side).
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn explore(&mut self, points: &[QueryPoint]) -> Result<ExploreReply, ClientError> {
        if self.binary {
            self.frame.clear();
            encode_points_frame(&mut self.frame, self.trace.as_deref(), false, points)
                .map_err(wire_err)?;
        } else {
            self.scratch.clear();
            render_points_request(&mut self.scratch, "explore", points);
        }
        expect_explore(self.roundtrip_prepared()?)
    }

    /// Answers a batch of design points with per-point outcomes: a point that
    /// fails to resolve reports its error in place instead of failing the
    /// batch.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn mexplore(&mut self, points: &[QueryPoint]) -> Result<MultiExploreReply, ClientError> {
        if self.binary {
            self.frame.clear();
            encode_points_frame(&mut self.frame, self.trace.as_deref(), true, points)
                .map_err(wire_err)?;
        } else {
            self.scratch.clear();
            render_points_request(&mut self.scratch, "mexplore", points);
        }
        expect_mexplore(self.roundtrip_prepared()?)
    }

    /// Stores pre-evaluated records verbatim (the cluster replication tee);
    /// returns how many were new to the server's shards.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn put(&mut self, records: &[PointRecord]) -> Result<u64, ClientError> {
        if self.binary {
            self.frame.clear();
            encode_put_frame(&mut self.frame, self.trace.as_deref(), records).map_err(wire_err)?;
        } else {
            self.scratch.clear();
            render_put_request(&mut self.scratch, records);
        }
        expect_stored(self.roundtrip_prepared()?)
    }

    /// Trivial health probe: round-trips a `ping` line.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let response = self.roundtrip(&Request::Ping)?;
        expect_pong(response)
    }

    /// Fetches the server statistics.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let response = self.roundtrip(&Request::Stats)?;
        expect_stats(response)
    }

    /// Fetches the server's full telemetry snapshot (counters, gauges and
    /// latency histograms) as structured data.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn metrics(&mut self) -> Result<MetricsSnapshot, ClientError> {
        let response = self.roundtrip(&Request::Metrics { prometheus: false })?;
        expect_metrics(response)
    }

    /// Fetches the server's telemetry in the Prometheus text exposition
    /// format, ready to serve to a scraper.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let response = self.roundtrip(&Request::Metrics { prometheus: true })?;
        expect_metrics_text(response)
    }

    /// Fetches the spans the server's flight recorder retains for `id` —
    /// the read side of request tracing.  An unknown (or already evicted)
    /// trace id yields an empty list, not an error.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn trace_spans(&mut self, id: &str) -> Result<Vec<Span>, ClientError> {
        let response = self.roundtrip(&Request::Trace { id: id.to_owned() })?;
        expect_traced(response)
    }

    /// Fetches the newest `last` samples of the server's metrics series ring
    /// (oldest first).  An idle sampler yields an empty list, not an error.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn series_samples(&mut self, last: u64) -> Result<Vec<SeriesSample>, ClientError> {
        let response = self.roundtrip(&Request::Series { last, window_us: 0 })?;
        expect_series(response)
    }

    /// Fetches the metrics delta across the server's trailing `window_us`
    /// window — per-window counter increments, gauge last values and
    /// histogram bucket differences, ready for rate/quantile math.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors
    /// (including too few samples in the window, e.g. a disabled sampler).
    pub fn series_delta(&mut self, window_us: u64) -> Result<SnapshotDelta, ClientError> {
        let response = self.roundtrip(&Request::Series { last: 0, window_us })?;
        expect_series_delta(response)
    }

    /// Fetches the server's per-shard anti-entropy digests, in shard order.
    /// Two nodes holding the same record set answer identical digests (see
    /// `docs/cluster.md`).
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn digest(&mut self) -> Result<Vec<ShardDigest>, ClientError> {
        let response = self.roundtrip(&Request::Digest)?;
        expect_digests(response)
    }

    /// Fetches one page of shard `shard`'s canonical strings (`offset` /
    /// `limit` paging); the boolean is `true` when the page reached the end
    /// of the shard.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors
    /// (including an out-of-range shard index).
    pub fn scan(
        &mut self,
        shard: u64,
        offset: u64,
        limit: u64,
    ) -> Result<(Vec<String>, bool), ClientError> {
        let response = self.roundtrip(&Request::Scan {
            shard,
            offset,
            limit,
        })?;
        expect_scanned(response)
    }

    /// Asks the server to shut down gracefully.  Never retried on a stale
    /// socket ([`roundtrip`](Connection::roundtrip) exempts `shutdown` from
    /// the reconnect-and-replay): a replay could stop a server that was
    /// restarted between the two attempts.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let response = self.roundtrip(&Request::Shutdown)?;
        expect_shutdown(response)
    }
}

/// A connection-per-request client addressing one server.
///
/// Every method opens a fresh [`Connection`] (so it inherits the single
/// `write_all` framing and `TCP_NODELAY`), performs one round trip and drops
/// the socket.  Use [`Client::connect`] — or [`Connection::connect`] directly
/// — to keep a connection alive across requests.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    binary: bool,
}

impl Client {
    /// A client for the server at `addr` (`host:port`), speaking JSON lines.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            binary: false,
        }
    }

    /// A client for the server at `addr` speaking the binary frame codec.
    pub fn new_binary(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            binary: true,
        }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Opens a persistent keep-alive [`Connection`] to this client's server,
    /// in this client's codec.
    ///
    /// # Errors
    ///
    /// Connection failures and unresolvable addresses.
    pub fn connect(&self) -> Result<Connection, ClientError> {
        if self.binary {
            Connection::connect_binary(&self.addr)
        } else {
            Connection::connect(&self.addr)
        }
    }

    /// Sends one request line and reads one response line over a fresh
    /// connection.
    ///
    /// # Errors
    ///
    /// Connection failures and malformed responses.
    pub fn roundtrip(&self, request: &Request) -> Result<Response, ClientError> {
        self.connect()?.roundtrip(request)
    }

    /// Looks a record up by canonical string; `None` is a miss.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn get(&self, canonical: &str) -> Result<Option<PointRecord>, ClientError> {
        self.connect()?.get(canonical)
    }

    /// Looks a batch of canonical strings up in one request/reply pair.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn mget(&self, canonicals: &[String]) -> Result<Vec<Option<PointRecord>>, ClientError> {
        self.connect()?.mget(canonicals)
    }

    /// Answers a batch of design points (hits from the shards, misses
    /// evaluated server-side).
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn explore(&self, points: &[QueryPoint]) -> Result<ExploreReply, ClientError> {
        self.connect()?.explore(points)
    }

    /// Answers a batch of design points with per-point outcomes.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn mexplore(&self, points: &[QueryPoint]) -> Result<MultiExploreReply, ClientError> {
        self.connect()?.mexplore(points)
    }

    /// Stores pre-evaluated records verbatim; returns how many were new.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn put(&self, records: &[PointRecord]) -> Result<u64, ClientError> {
        self.connect()?.put(records)
    }

    /// Trivial health probe.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn ping(&self) -> Result<(), ClientError> {
        self.connect()?.ping()
    }

    /// Fetches the server statistics.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn stats(&self) -> Result<ServerStats, ClientError> {
        self.connect()?.stats()
    }

    /// Fetches the server's full telemetry snapshot as structured data.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn metrics(&self) -> Result<MetricsSnapshot, ClientError> {
        self.connect()?.metrics()
    }

    /// Fetches the server's telemetry in the Prometheus text format.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.connect()?.metrics_text()
    }

    /// Fetches the spans the server's flight recorder retains for `id`.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn trace_spans(&self, id: &str) -> Result<Vec<Span>, ClientError> {
        self.connect()?.trace_spans(id)
    }

    /// Fetches the newest `last` samples of the server's metrics series ring.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn series_samples(&self, last: u64) -> Result<Vec<SeriesSample>, ClientError> {
        self.connect()?.series_samples(last)
    }

    /// Fetches the metrics delta across the server's trailing window.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn series_delta(&self, window_us: u64) -> Result<SnapshotDelta, ClientError> {
        self.connect()?.series_delta(window_us)
    }

    /// Fetches the server's per-shard anti-entropy digests.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn digest(&self) -> Result<Vec<ShardDigest>, ClientError> {
        self.connect()?.digest()
    }

    /// Fetches one page of a shard's canonical strings.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn scan(
        &self,
        shard: u64,
        offset: u64,
        limit: u64,
    ) -> Result<(Vec<String>, bool), ClientError> {
        self.connect()?.scan(shard, offset, limit)
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.connect()?.shutdown()
    }
}

/// Narrows a response to the `get` reply shapes.
fn expect_get(response: Response) -> Result<Option<PointRecord>, ClientError> {
    match response {
        Response::Found { record } => Ok(Some(record)),
        Response::NotFound => Ok(None),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to get: {other:?}"
        ))),
    }
}

/// Narrows a response to the `mget` reply shape.
fn expect_mget(response: Response) -> Result<Vec<Option<PointRecord>>, ClientError> {
    match response {
        Response::MultiGot { records } => Ok(records),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to mget: {other:?}"
        ))),
    }
}

/// Narrows a response to the `explore` reply shape.
fn expect_explore(response: Response) -> Result<ExploreReply, ClientError> {
    match response {
        Response::Explored {
            records,
            hits,
            evaluated,
        } => Ok(ExploreReply {
            records,
            hits,
            evaluated,
        }),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to explore: {other:?}"
        ))),
    }
}

/// Narrows a response to the `mexplore` reply shape.
fn expect_mexplore(response: Response) -> Result<MultiExploreReply, ClientError> {
    match response {
        Response::MultiExplored {
            outcomes,
            hits,
            evaluated,
        } => Ok(MultiExploreReply {
            outcomes,
            hits,
            evaluated,
        }),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to mexplore: {other:?}"
        ))),
    }
}

/// Narrows a response to the `put` reply shape.
fn expect_stored(response: Response) -> Result<u64, ClientError> {
    match response {
        Response::Stored { stored } => Ok(stored),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to put: {other:?}"
        ))),
    }
}

/// Narrows a response to the `ping` acknowledgement.
fn expect_pong(response: Response) -> Result<(), ClientError> {
    match response {
        Response::Pong => Ok(()),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to ping: {other:?}"
        ))),
    }
}

/// Narrows a response to the `stats` reply shape.
fn expect_stats(response: Response) -> Result<ServerStats, ClientError> {
    match response {
        Response::Stats(stats) => Ok(stats),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to stats: {other:?}"
        ))),
    }
}

/// Narrows a response to the structured `metrics` reply shape.
fn expect_metrics(response: Response) -> Result<MetricsSnapshot, ClientError> {
    match response {
        Response::Metrics(snapshot) => Ok(snapshot),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to metrics: {other:?}"
        ))),
    }
}

/// Narrows a response to the Prometheus-text `metrics` reply shape.
fn expect_metrics_text(response: Response) -> Result<String, ClientError> {
    match response {
        Response::MetricsText { text } => Ok(text),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to metrics: {other:?}"
        ))),
    }
}

/// Narrows a response to the `trace` reply shape.
fn expect_traced(response: Response) -> Result<Vec<Span>, ClientError> {
    match response {
        Response::Traced { spans } => Ok(spans),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to trace: {other:?}"
        ))),
    }
}

/// Narrows a response to the sample-mode `series` reply shape.
fn expect_series(response: Response) -> Result<Vec<SeriesSample>, ClientError> {
    match response {
        Response::Series { samples } => Ok(samples),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to series: {other:?}"
        ))),
    }
}

/// Narrows a response to the window-mode `series` reply shape.
fn expect_series_delta(response: Response) -> Result<SnapshotDelta, ClientError> {
    match response {
        Response::SeriesDelta { delta } => Ok(delta),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to series: {other:?}"
        ))),
    }
}

/// Narrows a response to the `digest` reply shape.
fn expect_digests(response: Response) -> Result<Vec<ShardDigest>, ClientError> {
    match response {
        Response::Digests { digests } => Ok(digests),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to digest: {other:?}"
        ))),
    }
}

/// Narrows a response to the `scan` reply shape.
fn expect_scanned(response: Response) -> Result<(Vec<String>, bool), ClientError> {
    match response {
        Response::Scanned { canonicals, done } => Ok((canonicals, done)),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to scan: {other:?}"
        ))),
    }
}

/// Narrows a response to the `shutdown` acknowledgement.
fn expect_shutdown(response: Response) -> Result<(), ClientError> {
    match response {
        Response::ShuttingDown => Ok(()),
        Response::Error { message } => Err(ClientError::Server(message)),
        other => Err(ClientError::Protocol(format!(
            "unexpected response to shutdown: {other:?}"
        ))),
    }
}
