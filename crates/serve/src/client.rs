//! A small blocking client for the serve protocol, used by `srra query`, the
//! integration tests and the serving benchmark.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use srra_explore::PointRecord;

use crate::protocol::{QueryPoint, Request, Response, ServerStats};

/// Errors of the query client.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The response line could not be decoded.
    Protocol(String),
    /// The server answered with an error response.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "query I/O error: {err}"),
            ClientError::Protocol(message) => write!(f, "malformed server response: {message}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// The records and cache statistics of one `explore` request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReply {
    /// One record per requested point, in request order.
    pub records: Vec<PointRecord>,
    /// Points answered from the shards.
    pub hits: u64,
    /// Points evaluated on demand.
    pub evaluated: u64,
}

/// A connection-per-request client addressing one server.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// A client for the server at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into() }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    ///
    /// Connection failures and malformed responses.
    pub fn roundtrip(&self, request: &Request) -> Result<Response, ClientError> {
        let mut addrs = self.addr.to_socket_addrs()?;
        let addr = addrs.next().ok_or_else(|| {
            ClientError::Protocol(format!("unresolvable address `{}`", self.addr))
        })?;
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(request.render().as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        if line.is_empty() {
            return Err(ClientError::Protocol(
                "server closed the connection without answering".to_owned(),
            ));
        }
        Response::parse(line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Looks a record up by canonical string; `None` is a miss.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn get(&self, canonical: &str) -> Result<Option<PointRecord>, ClientError> {
        match self.roundtrip(&Request::Get {
            canonical: canonical.to_owned(),
        })? {
            Response::Found { record } => Ok(Some(record)),
            Response::NotFound => Ok(None),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to get: {other:?}"
            ))),
        }
    }

    /// Answers a batch of design points (hits from the shards, misses
    /// evaluated server-side).
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn explore(&self, points: &[QueryPoint]) -> Result<ExploreReply, ClientError> {
        match self.roundtrip(&Request::Explore {
            points: points.to_vec(),
        })? {
            Response::Explored {
                records,
                hits,
                evaluated,
            } => Ok(ExploreReply {
                records,
                hits,
                evaluated,
            }),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to explore: {other:?}"
            ))),
        }
    }

    /// Fetches the server statistics.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn stats(&self) -> Result<ServerStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to stats: {other:?}"
            ))),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Connection failures, malformed responses and server-side errors.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response to shutdown: {other:?}"
            ))),
        }
    }
}
