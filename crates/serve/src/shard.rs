//! [`ShardedStore`]: a result store split across N binary segment shard
//! files.
//!
//! Records are routed to shard `key % N`.  Each shard is an independent
//! [`SegmentStore`] behind its own **read/write lock**: lookups hit the
//! shard's in-memory key→records index under a shared read guard, so any
//! number of concurrent warm `get`s proceed in parallel without touching the
//! filesystem and without contending with each other; appends take the
//! exclusive write guard and tee the record to the shard's segment file
//! (fixed-header binary records — startup re-hydration is a sequential
//! scan, not a JSON parse).  A legacy `shard-NNN.jsonl` sibling, when
//! present, is folded into the index read-only so pre-segment cache
//! directories work unmodified; [`compact`] rewrites everything into pure
//! segment form and retires the JSONL files.  A lock file in the cache
//! directory keeps concurrent *processes* from interleaving appends.
//! [`merge_file`] folds a legacy single-file cache into the shards and
//! [`compact`] also drops duplicate disk records and re-routes records that
//! sit in the wrong shard.
//!
//! [`merge_file`]: ShardedStore::merge_file
//! [`compact`]: ShardedStore::compact

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

use srra_explore::{
    fnv1a_64, JsonlError, JsonlStore, PointRecord, ResultStore, SegmentStore, StoreBase,
};
use srra_obs::{Counter, Histogram, Registry};

use crate::protocol::ShardDigest;

/// Handles into [`Registry::global`] for the shard-level instruments,
/// resolved once so the hot read path never takes the registry's name map.
struct ShardMetrics {
    reads: Arc<Counter>,
    writes: Arc<Counter>,
    read_wait: Arc<Histogram>,
    write_wait: Arc<Histogram>,
    /// Wall time of one full store open (all shards re-hydrated).
    rehydrate: Arc<Histogram>,
    /// Torn/corrupt trailing segment records truncated away at open.
    torn_segments: Arc<Counter>,
}

fn shard_metrics() -> &'static ShardMetrics {
    static METRICS: OnceLock<ShardMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        ShardMetrics {
            reads: registry.counter("store_shard_reads_total"),
            writes: registry.counter("store_shard_writes_total"),
            read_wait: registry.histogram("store_shard_read_wait_us"),
            write_wait: registry.histogram("store_shard_write_wait_us"),
            rehydrate: registry.histogram("store_rehydrate_us"),
            torn_segments: registry.counter("store_torn_segments_total"),
        }
    })
}

/// Errors of the sharded backend.
#[derive(Debug)]
pub enum ShardError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A shard file failed to open or parse.
    Store(JsonlError),
    /// Another process holds the cache directory's lock file.
    Locked(PathBuf),
    /// The directory already holds a different number of shard files.
    ShardCount {
        /// Shard files found on disk.
        found: usize,
        /// Shard count requested by the caller.
        requested: usize,
    },
    /// A shard count of zero was requested.
    EmptyShardCount,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Io(err) => write!(f, "shard I/O error: {err}"),
            ShardError::Store(err) => write!(f, "shard store error: {err}"),
            ShardError::Locked(path) => write!(
                f,
                "cache directory is locked by another process (remove `{}` if it is stale)",
                path.display()
            ),
            ShardError::ShardCount { found, requested } => write!(
                f,
                "cache directory holds {found} shard files but {requested} were requested"
            ),
            ShardError::EmptyShardCount => write!(f, "shard count must be at least 1"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(err: std::io::Error) -> Self {
        ShardError::Io(err)
    }
}

impl From<JsonlError> for ShardError {
    fn from(err: JsonlError) -> Self {
        ShardError::Store(err)
    }
}

/// An exclusive lock on a cache directory, held for the lifetime of the value.
///
/// The lock is a `LOCK` file created with `create_new` (O_EXCL) semantics and
/// removed on drop, which is portable to every platform std supports.  A
/// crashed process leaves the file behind; the [`ShardError::Locked`] message
/// tells the operator which file to remove.
#[derive(Debug)]
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> Result<Self, ShardError> {
        let path = dir.join("LOCK");
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut file) => {
                // Best-effort breadcrumb for the operator; the lock works
                // whether or not the write succeeds.
                let _ = writeln!(file, "{}", std::process::id());
                Ok(Self { path })
            }
            Err(err) if err.kind() == std::io::ErrorKind::AlreadyExists => {
                Err(ShardError::Locked(path))
            }
            Err(err) => Err(err.into()),
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What [`ShardedStore::merge_file`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Records copied into the shards.
    pub merged: usize,
    /// Records skipped because an identical canonical was already stored.
    pub duplicates: usize,
}

/// What [`ShardedStore::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactOutcome {
    /// Records kept across all shards after the rewrite.
    pub kept: usize,
    /// Disk lines dropped (duplicate lines within or across shards).
    pub duplicates_dropped: usize,
    /// Records moved to the shard their key routes to.
    pub rerouted: usize,
}

/// A [`ResultStore`] sharded over `N` binary segment files under one cache
/// directory (legacy JSONL shard files are read transparently).
///
/// Routing is `key % N`.  All read/write methods take `&self` (each shard sits
/// behind its own `RwLock`), so one `ShardedStore` can be shared across server
/// worker threads: reads of the same shard run concurrently against the
/// in-memory index, and only appends serialise against other users of that
/// shard.  The [`ResultStore`] impl forwards to the same methods, so the store
/// also drops into [`srra_explore::Explorer::explore`] unchanged.
#[derive(Debug)]
pub struct ShardedStore {
    dir: PathBuf,
    shards: Vec<RwLock<SegmentStore>>,
    _lock: DirLock,
}

/// SplitMix64-style finalizer applied to each record hash before the
/// commutative digest fold, so the fold discriminates record *sets* instead
/// of degenerating into a sum of correlated FNV values.
fn mix_digest(mut h: u64) -> u64 {
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Segment file name of shard `index`.
fn shard_file_name(index: usize) -> String {
    format!("shard-{index:03}.seg")
}

/// Legacy JSONL file name of shard `index` — read-side fallback only; new
/// appends always go to the segment file and `compact` retires the JSONL.
fn legacy_file_name(index: usize) -> String {
    format!("shard-{index:03}.jsonl")
}

impl ShardedStore {
    /// Opens (creating if needed) a store of `shard_count` shards under `dir`.
    ///
    /// # Errors
    ///
    /// [`ShardError::Locked`] if another process holds the directory,
    /// [`ShardError::ShardCount`] if the directory already holds a different
    /// number of shard files, [`ShardError::EmptyShardCount`] for
    /// `shard_count == 0`, and I/O / parse errors from the shard files.
    pub fn open(dir: impl AsRef<Path>, shard_count: usize) -> Result<Self, ShardError> {
        if shard_count == 0 {
            return Err(ShardError::EmptyShardCount);
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let lock = DirLock::acquire(&dir)?;
        let existing = Self::existing_shard_files(&dir)?;
        if !existing.is_empty() && existing.len() != shard_count {
            return Err(ShardError::ShardCount {
                found: existing.len(),
                requested: shard_count,
            });
        }
        let metrics = shard_metrics();
        let rehydrate_started = Instant::now();
        let mut shards = Vec::with_capacity(shard_count);
        let mut torn = 0;
        for index in 0..shard_count {
            let store = SegmentStore::open_with_legacy(
                dir.join(shard_file_name(index)),
                Some(dir.join(legacy_file_name(index))),
            )?;
            torn += store.torn_records();
            shards.push(RwLock::new(store));
        }
        metrics.rehydrate.record(rehydrate_started.elapsed());
        if torn > 0 {
            metrics.torn_segments.add(torn as u64);
        }
        Ok(Self {
            dir,
            shards,
            _lock: lock,
        })
    }

    /// The distinct shard file stems (either extension) already present
    /// under `dir`, sorted — a shard counts as present whether it exists as
    /// a segment file, a legacy JSONL file, or both.
    fn existing_shard_files(dir: &Path) -> Result<Vec<String>, ShardError> {
        let mut stems = std::collections::BTreeSet::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(stem) = name
                .strip_suffix(".seg")
                .or_else(|| name.strip_suffix(".jsonl"))
            {
                if stem.starts_with("shard-") {
                    stems.insert(stem.to_owned());
                }
            }
        }
        Ok(stems.into_iter().collect())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `key` routes to.
    pub fn route(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Shared read guard on the shard `key` routes to: concurrent with other
    /// readers of the same shard, excluded only by an in-flight append.
    fn shard_read(&self, key: u64) -> RwLockReadGuard<'_, SegmentStore> {
        let metrics = shard_metrics();
        let waited = Instant::now();
        let guard = self.shards[self.route(key)]
            .read()
            .expect("no shard user panics while holding the lock");
        metrics.read_wait.record(waited.elapsed());
        metrics.reads.inc();
        guard
    }

    /// Exclusive write guard on the shard `key` routes to.
    fn shard_write(&self, key: u64) -> RwLockWriteGuard<'_, SegmentStore> {
        let metrics = shard_metrics();
        let waited = Instant::now();
        let guard = self.shards[self.route(key)]
            .write()
            .expect("no shard user panics while holding the lock");
        metrics.write_wait.record(waited.elapsed());
        metrics.writes.inc();
        guard
    }

    /// Looks up the record for `key`, verifying `canonical` (shared-reference
    /// twin of [`ResultStore::get`], usable across threads).
    ///
    /// Served entirely from the shard's in-memory index under a read lock —
    /// warm lookups never touch the filesystem and never contend with other
    /// readers.
    ///
    /// # Errors
    ///
    /// Propagates shard I/O errors.
    pub fn get_record(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, ShardError> {
        Ok(self.shard_read(key).get(key, canonical)?)
    }

    /// [`Self::get_record`] plus how long the read-lock acquisition waited,
    /// for traced requests that attribute shard contention span by span.
    ///
    /// # Errors
    ///
    /// Propagates shard I/O errors.
    pub fn get_record_timed(
        &self,
        key: u64,
        canonical: &str,
    ) -> Result<(Option<PointRecord>, Duration), ShardError> {
        let waited = Instant::now();
        let guard = self.shard_read(key);
        let lock_wait = waited.elapsed();
        Ok((guard.get(key, canonical)?, lock_wait))
    }

    /// Inserts a record into its shard (shared-reference twin of
    /// [`ResultStore::put`]); returns whether the record was fresh.
    ///
    /// Takes the shard's write lock: the in-memory index and the JSONL file
    /// are updated together, so a reader sees either the old state or the new
    /// record, never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates shard I/O errors.
    pub fn put_record(&self, record: &PointRecord) -> Result<bool, ShardError> {
        Ok(self.shard_write(record.key).put(record)?)
    }

    /// Record count per shard, in shard order.
    ///
    /// # Errors
    ///
    /// Propagates shard I/O errors.
    pub fn shard_sizes(&self) -> Result<Vec<usize>, ShardError> {
        self.shards
            .iter()
            .map(|shard| {
                Ok(shard
                    .read()
                    .expect("no shard user panics while holding the lock")
                    .len()?)
            })
            .collect()
    }

    /// Per-shard anti-entropy digests, in shard order.
    ///
    /// Each record contributes the FNV-1a hash of its JSONL line (the
    /// canonical byte encoding, identical on every node that holds the
    /// record) through a local bit-mixer into a commutative `wrapping_add`
    /// fold — so the digest is insensitive to insertion order but flips when
    /// any record's content differs.  Replicas compare these against the
    /// owner's to detect divergence without streaming records (the `digest`
    /// wire op; see `docs/cluster.md`).
    pub fn digests(&self) -> Vec<ShardDigest> {
        let mut line = String::new();
        self.shards
            .iter()
            .map(|slot| {
                let shard = slot
                    .read()
                    .expect("no shard user panics while holding the lock");
                let mut records = 0u64;
                let mut fold = 0u64;
                for record in shard.records() {
                    line.clear();
                    record.write_json_line(&mut line);
                    fold = fold.wrapping_add(mix_digest(fnv1a_64(line.as_bytes())));
                    records += 1;
                }
                ShardDigest { records, fold }
            })
            .collect()
    }

    /// One page of shard `shard`'s canonical strings: skips `offset` records,
    /// returns at most `limit` canonicals in the shard's stable store order,
    /// and whether the page reached the end of the shard (the `scan` wire
    /// op's storage half).
    ///
    /// # Panics
    ///
    /// If `shard >= self.shard_count()` — callers validate the index (the
    /// server answers an out-of-range shard with a protocol error).
    pub fn scan(&self, shard: usize, offset: usize, limit: usize) -> (Vec<String>, bool) {
        let guard = self.shards[shard]
            .read()
            .expect("no shard user panics while holding the lock");
        let mut canonicals = Vec::new();
        let mut done = true;
        for (index, record) in guard.records().enumerate() {
            if index < offset {
                continue;
            }
            if canonicals.len() == limit {
                done = false;
                break;
            }
            canonicals.push(record.canonical.clone());
        }
        (canonicals, done)
    }

    /// Folds a legacy single-file JSONL cache into the shards.
    ///
    /// Every record of `path` is routed to its shard; records whose canonical
    /// string is already stored are skipped.  The legacy file itself is left
    /// untouched.
    ///
    /// # Errors
    ///
    /// Propagates I/O and parse errors from either side.
    pub fn merge_file(&self, path: impl AsRef<Path>) -> Result<MergeOutcome, ShardError> {
        let legacy = JsonlStore::open(path)?;
        let mut outcome = MergeOutcome {
            merged: 0,
            duplicates: 0,
        };
        for record in legacy.records() {
            if self.put_record(record)? {
                outcome.merged += 1;
            } else {
                outcome.duplicates += 1;
            }
        }
        Ok(outcome)
    }

    /// Rewrites every shard into pure segment form: drops duplicate disk
    /// records, moves records into the shard their key routes to, and
    /// retires legacy JSONL shard files (their records now live in the
    /// segments).
    ///
    /// Takes `&mut self` — compaction is exclusive by construction, no reader
    /// or writer can observe a half-rewritten shard.  Each shard is written to
    /// a temporary file and atomically renamed into place.
    ///
    /// # Errors
    ///
    /// Propagates shard I/O errors; on error the already-renamed shards keep
    /// their compacted contents and the rest keep their originals (every state
    /// in between is a valid store).
    pub fn compact(&mut self) -> Result<CompactOutcome, ShardError> {
        let shard_count = self.shards.len();
        // Drain: collect every record, remembering which shard held it, and
        // count raw disk records (segment records plus legacy JSONL lines)
        // to report dropped duplicates.
        let mut routed: Vec<Vec<PointRecord>> = vec![Vec::new(); shard_count];
        let mut disk_records = 0;
        let mut kept = 0;
        let mut rerouted = 0;
        for (index, slot) in self.shards.iter_mut().enumerate() {
            let shard = slot.get_mut().expect("compact holds the only reference");
            disk_records += shard.segment_records();
            let legacy = self.dir.join(legacy_file_name(index));
            if legacy.exists() {
                let raw = std::fs::read_to_string(&legacy)?;
                disk_records += raw.lines().filter(|line| !line.trim().is_empty()).count();
            }
            for record in shard.records() {
                let target = (record.key % shard_count as u64) as usize;
                let bucket = &mut routed[target];
                if bucket
                    .iter()
                    .any(|held| held.key == record.key && held.canonical == record.canonical)
                {
                    continue; // Cross-shard duplicate: keep the first copy.
                }
                if target != index {
                    rerouted += 1;
                }
                kept += 1;
                bucket.push(record.clone());
            }
        }
        // Rewrite: temp file + atomic rename, retire the legacy JSONL, then
        // reopen the shard handles.
        for (index, records) in routed.iter().enumerate() {
            let path = self.dir.join(shard_file_name(index));
            let tmp = self.dir.join(format!("{}.tmp", shard_file_name(index)));
            SegmentStore::write_records(&tmp, records.iter())?;
            std::fs::rename(&tmp, &path)?;
            let legacy = self.dir.join(legacy_file_name(index));
            if legacy.exists() {
                std::fs::remove_file(&legacy)?;
            }
            self.shards[index] = RwLock::new(SegmentStore::open(&path)?);
        }
        Ok(CompactOutcome {
            kept,
            duplicates_dropped: disk_records - kept,
            rerouted,
        })
    }
}

impl StoreBase for ShardedStore {
    type Error = ShardError;

    fn contains(&self, key: u64) -> Result<bool, ShardError> {
        Ok(self.shard_read(key).contains(key)?)
    }

    fn len(&self) -> Result<usize, ShardError> {
        Ok(self.shard_sizes()?.iter().sum())
    }
}

impl ResultStore for ShardedStore {
    fn get(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, ShardError> {
        self.get_record(key, canonical)
    }

    fn put(&mut self, record: &PointRecord) -> Result<bool, ShardError> {
        self.put_record(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_explore::fnv1a_64;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "srra-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record_for(canonical: &str) -> PointRecord {
        PointRecord {
            key: fnv1a_64(canonical.as_bytes()),
            canonical: canonical.to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 17,
            total_cycles: 4242,
            compute_cycles: 4000,
            memory_cycles: 200,
            transfer_cycles: 42,
            clock_period_ns: 9.5,
            execution_time_us: 40.299,
            slices: 311,
            block_rams: 2,
            distribution: "a:16 b:1".to_owned(),
        }
    }

    #[test]
    fn records_route_by_key_modulo_shard_count() {
        let dir = scratch_dir("route");
        let store = ShardedStore::open(&dir, 4).unwrap();
        let mut per_shard = vec![0usize; 4];
        for i in 0..32 {
            let record = record_for(&format!("kernel=fir;algo=CPA-RA;budget={i}"));
            assert!(store.put_record(&record).unwrap());
            per_shard[(record.key % 4) as usize] += 1;
            assert_eq!(
                store.get_record(record.key, &record.canonical).unwrap(),
                Some(record)
            );
        }
        assert_eq!(store.shard_sizes().unwrap(), per_shard);
        assert_eq!(store.len().unwrap(), 32);
        drop(store);

        // Reopen: contents persist, routing unchanged.
        let store = ShardedStore::open(&dir, 4).unwrap();
        assert_eq!(store.len().unwrap(), 32);
        assert_eq!(store.shard_sizes().unwrap(), per_shard);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_file_guards_against_concurrent_openers() {
        let dir = scratch_dir("lock");
        let store = ShardedStore::open(&dir, 2).unwrap();
        match ShardedStore::open(&dir, 2) {
            Err(ShardError::Locked(path)) => assert!(path.ends_with("LOCK")),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(store);
        // The lock is released on drop, so a fresh open succeeds.
        let again = ShardedStore::open(&dir, 2).unwrap();
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_count_mismatch_is_rejected() {
        let dir = scratch_dir("count");
        drop(ShardedStore::open(&dir, 4).unwrap());
        match ShardedStore::open(&dir, 8) {
            Err(ShardError::ShardCount { found, requested }) => {
                assert_eq!((found, requested), (4, 8));
            }
            other => panic!("expected ShardCount, got {other:?}"),
        }
        assert!(matches!(
            ShardedStore::open(&dir, 0),
            Err(ShardError::EmptyShardCount)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_folds_a_legacy_single_file_cache_into_the_shards() {
        let dir = scratch_dir("merge");
        std::fs::create_dir_all(&dir).unwrap();
        let legacy_path = dir.join("legacy.jsonl");
        let records: Vec<PointRecord> = (0..10)
            .map(|i| record_for(&format!("kernel=mat;algo=FR-RA;budget={i}")))
            .collect();
        {
            let mut legacy = JsonlStore::open(&legacy_path).unwrap();
            for record in &records {
                legacy.put(record).unwrap();
            }
        }
        let store = ShardedStore::open(&dir, 3).unwrap();
        // Pre-seed two of the records so the merge reports duplicates.
        store.put_record(&records[0]).unwrap();
        store.put_record(&records[5]).unwrap();
        let outcome = store.merge_file(&legacy_path).unwrap();
        assert_eq!(
            outcome,
            MergeOutcome {
                merged: 8,
                duplicates: 2
            }
        );
        assert_eq!(store.len().unwrap(), 10);
        for record in &records {
            assert_eq!(
                store.get_record(record.key, &record.canonical).unwrap(),
                Some(record.clone())
            );
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_duplicate_lines_and_reroutes_misplaced_records() {
        let dir = scratch_dir("compact");
        std::fs::create_dir_all(&dir).unwrap();
        let a = record_for("kernel=fir;algo=CPA-RA;budget=1");
        let b = record_for("kernel=fir;algo=CPA-RA;budget=2");
        // Hand-build a dirty *legacy* directory: record `a` duplicated in
        // its own JSONL shard file, record `b` sitting in the wrong shard.
        let route = |r: &PointRecord| (r.key % 2) as usize;
        let wrong = 1 - route(&b);
        let mut shard_lines = [String::new(), String::new()];
        shard_lines[route(&a)].push_str(&format!("{}\n{}\n", a.to_json_line(), a.to_json_line()));
        shard_lines[wrong].push_str(&format!("{}\n", b.to_json_line()));
        std::fs::write(dir.join(legacy_file_name(0)), &shard_lines[0]).unwrap();
        std::fs::write(dir.join(legacy_file_name(1)), &shard_lines[1]).unwrap();

        let mut store = ShardedStore::open(&dir, 2).unwrap();
        // Before compaction lookups go through routing only, so the record
        // sitting in the wrong shard is invisible...
        assert_eq!(
            store.get_record(a.key, &a.canonical).unwrap(),
            Some(a.clone())
        );
        assert_eq!(store.get_record(b.key, &b.canonical).unwrap(), None);

        let outcome = store.compact().unwrap();
        assert_eq!(
            outcome,
            CompactOutcome {
                kept: 2,
                duplicates_dropped: 1,
                rerouted: 1
            }
        );
        // After compaction both records resolve through routing.
        assert_eq!(
            store.get_record(a.key, &a.canonical).unwrap(),
            Some(a.clone())
        );
        assert_eq!(
            store.get_record(b.key, &b.canonical).unwrap(),
            Some(b.clone())
        );
        assert_eq!(store.len().unwrap(), 2);
        // The legacy JSONL files are retired and the segments are clean:
        // raw disk records equal held records.
        drop(store);
        let mut disk_records = 0;
        for index in 0..2 {
            assert!(!dir.join(legacy_file_name(index)).exists());
            let shard = SegmentStore::open(dir.join(shard_file_name(index))).unwrap();
            assert_eq!(shard.torn_records(), 0);
            disk_records += shard.segment_records();
        }
        assert_eq!(disk_records, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn digests_are_order_insensitive_and_scan_pages_canonicals() {
        let records: Vec<PointRecord> = (0..9)
            .map(|i| record_for(&format!("kernel=fir;algo=CPA-RA;budget={i}")))
            .collect();
        let dir_a = scratch_dir("digest-a");
        let dir_b = scratch_dir("digest-b");
        let store_a = ShardedStore::open(&dir_a, 2).unwrap();
        let store_b = ShardedStore::open(&dir_b, 2).unwrap();
        for record in &records {
            store_a.put_record(record).unwrap();
        }
        for record in records.iter().rev() {
            store_b.put_record(record).unwrap();
        }
        // Same record set, different insertion order: identical digests.
        assert_eq!(store_a.digests(), store_b.digests());

        // One mutated payload flips its shard's fold but not its count.
        let mut mutated = records[0].clone();
        mutated.slices += 1;
        let dir_c = scratch_dir("digest-c");
        let store_c = ShardedStore::open(&dir_c, 2).unwrap();
        store_c.put_record(&mutated).unwrap();
        for record in &records[1..] {
            store_c.put_record(record).unwrap();
        }
        let (clean, dirty) = (store_a.digests(), store_c.digests());
        let shard = store_a.route(mutated.key);
        assert_eq!(clean[shard].records, dirty[shard].records);
        assert_ne!(clean[shard].fold, dirty[shard].fold);

        // Paging walks every canonical exactly once and flags the last page.
        for shard in 0..2 {
            let mut paged = Vec::new();
            let mut offset = 0;
            loop {
                let (page, done) = store_a.scan(shard, offset, 2);
                assert!(page.len() <= 2);
                offset += page.len();
                paged.extend(page);
                if done {
                    break;
                }
            }
            assert_eq!(paged.len() as u64, store_a.digests()[shard].records);
            // An offset past the end answers an empty, done page.
            assert_eq!(store_a.scan(shard, offset + 100, 2), (Vec::new(), true));
        }

        for dir in [dir_a, dir_b, dir_c] {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn sharded_store_drives_the_explorer_unchanged() {
        use srra_explore::{DesignSpace, Explorer};
        use srra_ir::examples::paper_example;

        let dir = scratch_dir("explorer");
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[16, 64]);
        let cold = {
            let mut store = ShardedStore::open(&dir, 4).unwrap();
            Explorer::new(2).explore(&space, &mut store).unwrap()
        };
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.evaluated, space.len());
        let warm = {
            let mut store = ShardedStore::open(&dir, 4).unwrap();
            Explorer::new(2).explore(&space, &mut store).unwrap()
        };
        assert_eq!(warm.cache_hits, space.len());
        assert_eq!(warm.evaluated, 0);
        assert_eq!(warm.records, cold.records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
