//! The thread-pool TCP server: accepts line-delimited JSON queries and
//! answers them from the sharded store, evaluating misses on demand.
//!
//! Built entirely on `std::net` + scoped threads (the build environment is
//! offline, so no async runtime).  Architecture:
//!
//! * the accept loop hands sockets to a fixed pool of worker threads over an
//!   `mpsc` channel (receiver shared behind a mutex);
//! * every worker answers requests against one shared [`ShardedStore`] —
//!   shard-level read/write locks let any number of warm lookups proceed in
//!   parallel (even on the same shard) while appends briefly exclude their
//!   own shard only;
//! * each connection reuses one request-line buffer and one response buffer
//!   across its whole lifetime, renders every reply (`\n` included) with a
//!   single `write_all`, and defers the flush while another complete
//!   pipelined request is already sitting in the read buffer — so a client
//!   that writes N requests before reading gets its N replies in large
//!   batches instead of N round-trips;
//! * an in-flight table (mutex + condvar) guarantees each cache miss is
//!   evaluated *exactly once* even when many clients request the same point
//!   concurrently: the first claimant evaluates, everyone else blocks until
//!   the record lands in the store and then reads it back;
//! * `shutdown` flips an atomic flag and pokes the listener with a loopback
//!   connection so the blocking `accept` wakes up; in-flight requests are
//!   answered, then the read halves of all open sockets are shut down so
//!   workers blocked on idle keep-alive connections wake with EOF — draining
//!   never waits for clients (the cluster router keeps connections open
//!   indefinitely) to hang up first.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use srra_core::{AllocatorRegistry, CompiledKernel};
use srra_explore::{evaluate_point_timed, DesignPoint, PointRecord};
use srra_fpga::DeviceModel;
use srra_ir::examples::paper_example;
use srra_kernels::paper_suite;
use srra_obs::{
    epoch_us, next_span_id, Counter, Gauge, Histogram, Registry, SeriesBuffer, SeriesSample,
    SloEvaluator, SloRule, SnapshotDelta, Span,
};

use crate::binary::{
    decode_payload, encode_response_frame, holds_complete_request, read_frame, FrameError,
    BINARY_MAGIC,
};
use crate::protocol::{
    stamp_trace, OpStats, PointOutcome, QueryPoint, Request, Response, ServerStats,
};
use crate::shard::{ShardError, ShardedStore};

/// Errors starting or running a [`Server`].
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Sharded-store failure.
    Shard(ShardError),
    /// Invalid configuration (for example a malformed `--slo` rule).
    Config(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "serve I/O error: {err}"),
            ServeError::Shard(err) => write!(f, "serve store error: {err}"),
            ServeError::Config(message) => write!(f, "serve config error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err)
    }
}

impl From<ShardError> for ServeError {
    fn from(err: ShardError) -> Self {
        ServeError::Shard(err)
    }
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Cache directory holding the shard files.
    pub cache_dir: PathBuf,
    /// Number of shards.
    pub shards: usize,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Threshold of the slow-query log in microseconds; 0 disables it.  A
    /// request (or a single on-demand evaluation) at or over the threshold
    /// logs one stderr line carrying its op, shard and trace id, so a slow
    /// `mexplore` is attributable without a debugger attached.
    pub slow_query_us: u64,
    /// Interval of the opt-in periodic stats-reporter thread in seconds; 0
    /// (the default) runs no reporter.  The reporter prints one-line
    /// progress summaries to stderr, event-manager style.
    pub report_interval_secs: u64,
    /// Idle-connection deadline in seconds; 0 (the default) disables it.
    /// A client that connects and then stays silent for this long is reaped
    /// (counted by `serve_idle_reaped_total`) instead of pinning a worker
    /// thread forever.
    pub idle_timeout_secs: u64,
    /// Interval of the opt-in metrics sampler in milliseconds; 0 (the
    /// default) runs no sampler.  The sampler pushes one timestamped merged
    /// snapshot per interval into the series ring the `series` op answers
    /// from, and evaluates the configured SLO rules against that ring.
    pub sample_interval_ms: u64,
    /// SLO rules to evaluate every sampler tick, in the
    /// [`SloRule`] grammar (e.g. `serve_op_get_latency_us p99 < 500us over
    /// 60s`).  Ignored while the sampler is off.
    pub slos: Vec<String>,
}

impl ServerConfig {
    /// A loopback/ephemeral-port configuration over `cache_dir` with 4 shards
    /// and 4 workers (no slow-query log, no reporter).
    pub fn ephemeral(cache_dir: impl Into<PathBuf>) -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            cache_dir: cache_dir.into(),
            shards: 4,
            workers: 4,
            slow_query_us: 0,
            report_interval_secs: 0,
            idle_timeout_secs: 0,
            sample_interval_ms: 0,
            slos: Vec::new(),
        }
    }
}

/// The in-flight table: keys currently being evaluated by some worker, each
/// carrying the claimant request's trace id (when it had one) so waiters can
/// attribute their stall.
#[derive(Debug, Default)]
struct Inflight {
    keys: Mutex<HashMap<u64, Option<String>>>,
    done: Condvar,
}

impl Inflight {
    /// Claims `key` for evaluation on behalf of `trace`; `false` means
    /// another worker holds it.
    fn claim(&self, key: u64, trace: Option<&str>) -> bool {
        let mut keys = self
            .keys
            .lock()
            .expect("no worker panics while holding the in-flight lock");
        match keys.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(trace.map(str::to_owned));
                true
            }
        }
    }

    /// Releases `key` and wakes every waiter.
    fn release(&self, key: u64) {
        let mut keys = self
            .keys
            .lock()
            .expect("no worker panics while holding the in-flight lock");
        keys.remove(&key);
        drop(keys);
        self.done.notify_all();
    }

    /// Blocks until `key` is not claimed (returns immediately if it already
    /// is not), returning the trace id of the claimant that was waited on,
    /// if it had one.
    fn wait_released(&self, key: u64) -> Option<String> {
        let mut keys = self
            .keys
            .lock()
            .expect("no worker panics while holding the in-flight lock");
        let mut claimant = None;
        while let Some(trace) = keys.get(&key) {
            if claimant.is_none() {
                claimant.clone_from(trace);
            }
            keys = self
                .done
                .wait(keys)
                .expect("no worker panics while holding the in-flight lock");
        }
        claimant
    }
}

/// The protocol ops the server accounts for, in the fixed `stats` reporting
/// order.  `Invalid` covers request lines that failed to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Get,
    MultiGet,
    Explore,
    MultiExplore,
    Put,
    Ping,
    Stats,
    Metrics,
    Trace,
    Series,
    Digest,
    Scan,
    Shutdown,
    Invalid,
}

/// Wire names of the ops, indexed by `Op as usize`.
const OP_NAMES: [&str; 14] = [
    "get", "mget", "explore", "mexplore", "put", "ping", "stats", "metrics", "trace", "series",
    "digest", "scan", "shutdown", "invalid",
];

/// Count + latency histogram of one op (handles into the server registry).
#[derive(Debug)]
struct OpCounter {
    count: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// The server's instruments: handles into its per-server [`Registry`], so
/// every count below is also scrapeable through the `metrics` op under the
/// `serve_` prefix.  Recording is handle-direct (no name lookup, no lock) —
/// the same discipline the private atomics had before they moved here.
#[derive(Debug)]
struct Counters {
    connections: Arc<Counter>,
    requests: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evaluated: Arc<Counter>,
    /// Requests carrying a `trace` id.
    traced_requests: Arc<Counter>,
    /// Requests (or single evaluations) at or over the slow-query threshold.
    slow_queries: Arc<Counter>,
    /// Misses that claimed the in-flight table and evaluated themselves.
    inflight_claims: Arc<Counter>,
    /// Misses that blocked on another worker's in-flight evaluation.
    inflight_waits: Arc<Counter>,
    /// Slow traces pinned into the flight recorder's retained set.
    pinned_traces: Arc<Counter>,
    /// Currently open client connections.
    open_connections: Arc<Gauge>,
    /// Request-line decode time (codec parse, per request).
    codec_parse_us: Arc<Histogram>,
    /// Response-line encode time (codec render, per request).
    codec_render_us: Arc<Histogram>,
    /// Requests that arrived as binary frames.
    codec_binary: Arc<Counter>,
    /// Requests that arrived as JSON lines.
    codec_json: Arc<Counter>,
    /// Idle keep-alive connections reaped by the idle-connection deadline.
    idle_reaped: Arc<Counter>,
    /// Per-op accounting, indexed by `Op as usize`.
    ops: [OpCounter; OP_NAMES.len()],
}

impl Counters {
    /// Registers every instrument in `registry`.
    fn register(registry: &Registry) -> Self {
        Self {
            connections: registry.counter("serve_connections_total"),
            requests: registry.counter("serve_requests_total"),
            hits: registry.counter("serve_hits_total"),
            misses: registry.counter("serve_misses_total"),
            evaluated: registry.counter("serve_evaluated_total"),
            traced_requests: registry.counter("serve_traced_requests_total"),
            slow_queries: registry.counter("serve_slow_queries_total"),
            inflight_claims: registry.counter("serve_inflight_claims_total"),
            inflight_waits: registry.counter("serve_inflight_waits_total"),
            pinned_traces: registry.counter("serve_pinned_traces_total"),
            open_connections: registry.gauge("serve_open_connections"),
            codec_parse_us: registry.histogram("serve_codec_parse_us"),
            codec_render_us: registry.histogram("serve_codec_render_us"),
            codec_binary: registry.counter("serve_codec_binary_total"),
            codec_json: registry.counter("serve_codec_json_total"),
            idle_reaped: registry.counter("serve_idle_reaped_total"),
            ops: std::array::from_fn(|index| OpCounter {
                count: registry.counter(&format!("serve_op_{}_total", OP_NAMES[index])),
                latency: registry.histogram(&format!("serve_op_{}_latency_us", OP_NAMES[index])),
            }),
        }
    }

    /// Records one handled request of `op` that took `elapsed` to serve.  A
    /// traced request also stamps its trace id as the latency bucket's
    /// exemplar, so a histogram outlier links straight to a fetchable trace.
    fn record_op(&self, op: Op, elapsed: Duration, trace: Option<&str>) {
        let counter = &self.ops[op as usize];
        counter.count.inc();
        match trace {
            Some(id) => counter.latency.record_traced(elapsed, id),
            None => counter.latency.record(elapsed),
        }
    }

    /// The per-op stats in fixed reporting order.
    fn op_stats(&self) -> Vec<OpStats> {
        OP_NAMES
            .iter()
            .zip(&self.ops)
            .map(|(name, counter)| OpStats {
                op: (*name).to_owned(),
                count: counter.count.get(),
                p50_us: counter.latency.quantile(0.50),
                p99_us: counter.latency.quantile(0.99),
            })
            .collect()
    }
}

/// Span accumulator of one traced request, allocated only when the request
/// carried a trace id — untraced requests never construct one, so the hot
/// path stays allocation-free.
///
/// Children accumulate as stages complete; [`finish`](Self::finish) appends
/// the root span last (its duration is the whole request) and hands the tree
/// to the flight recorder.
struct SpanCollector {
    trace_id: String,
    root_id: u64,
    spans: Vec<Span>,
}

impl SpanCollector {
    fn new(trace_id: &str) -> Self {
        Self {
            trace_id: trace_id.to_owned(),
            root_id: next_span_id(),
            spans: Vec::new(),
        }
    }

    /// Records one completed child stage under the request's root span,
    /// returning it for annotation.
    fn child(&mut self, name: &str, started: Instant, dur: Duration) -> &mut Span {
        let mut span = Span::new(&self.trace_id, self.root_id, name);
        span.start_us = epoch_us(started);
        span.dur_us = dur.as_micros().min(u128::from(u64::MAX)) as u64;
        self.spans.push(span);
        self.spans.last_mut().expect("just pushed")
    }

    /// The top-`count` child stages by duration, as a `name:Nus,...` list for
    /// the slow-query log line.
    fn slow_note(&self, count: usize) -> String {
        let mut tops: Vec<&Span> = self.spans.iter().collect();
        tops.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.start_us.cmp(&b.start_us)));
        tops.iter()
            .take(count)
            .map(|span| format!("{}:{}us", span.name, span.dur_us))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Completes the root span (named after the request's op, spanning the
    /// whole service time) and returns the request's span tree.
    fn finish(mut self, op: &str, started: Instant, elapsed: Duration) -> Vec<Span> {
        let root = Span {
            trace_id: self.trace_id.clone(),
            span_id: self.root_id,
            parent_id: 0,
            name: op.to_owned(),
            start_us: epoch_us(started),
            dur_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
            annotations: Vec::new(),
        };
        self.spans.push(root);
        self.spans
    }
}

/// Shared state of a running server.
struct ServerState {
    store: ShardedStore,
    kernels: HashMap<String, CompiledKernel>,
    inflight: Inflight,
    /// This server's instrument registry; the `metrics` op merges it with
    /// [`Registry::global`] (where the explore engine, the sharded store and
    /// the wire clients record).
    registry: Registry,
    counters: Counters,
    /// The ring of timestamped merged snapshots the `series` op answers
    /// from; fed by the sampler thread (empty while the sampler is off).
    series: SeriesBuffer,
    /// SLO rules evaluated against the series ring every sampler tick;
    /// `None` when no rules were configured.
    slos: Option<SloEvaluator>,
    /// Slow-query log threshold in microseconds; 0 disables the log.
    slow_query_us: u64,
    /// Idle-connection deadline; zero disables it.
    idle_timeout: Duration,
    shutdown: AtomicBool,
    started: Instant,
    /// Read-shutdown handles of the currently open connections, keyed by a
    /// per-connection id.  A graceful shutdown walks this table and shuts
    /// down each socket's *read* half: workers blocked in `read_line` on an
    /// idle keep-alive connection wake with EOF (pending replies can still
    /// be written), so draining never waits on clients that simply keep
    /// their connection open — the cluster router does exactly that.
    open_connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection_id: AtomicU64,
}

impl ServerState {
    /// Registers a connection's read-shutdown handle; returns its id.  When
    /// the server is already shutting down, the read half is shut down
    /// immediately so the connection cannot linger.
    fn register_connection(&self, stream: &TcpStream) -> Option<u64> {
        let handle = stream.try_clone().ok()?;
        let id = self.next_connection_id.fetch_add(1, Ordering::Relaxed);
        self.open_connections
            .lock()
            .expect("no worker panics while holding the connection table lock")
            .insert(id, handle);
        self.counters.open_connections.inc();
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
        Some(id)
    }

    /// Drops a connection's registry entry.
    fn deregister_connection(&self, id: u64) {
        self.open_connections
            .lock()
            .expect("no worker panics while holding the connection table lock")
            .remove(&id);
        self.counters.open_connections.dec();
    }

    /// Wakes every open connection's worker by shutting down the socket read
    /// halves; called once the shutdown flag is set.
    fn close_idle_connections(&self) {
        let open = self
            .open_connections
            .lock()
            .expect("no worker panics while holding the connection table lock");
        for stream in open.values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// Final report returned by [`Server::run`] after a graceful shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerReport {
    /// The statistics at shutdown time.
    pub stats: ServerStats,
}

/// Resolves a device name the way the CLI does (`xcv1000` / `xcv300`,
/// case-insensitive; full part names also accepted).
///
/// # Errors
///
/// Returns a user-facing message naming the unknown device.
pub fn device_by_name(name: &str) -> Result<DeviceModel, String> {
    let lower = name.to_ascii_lowercase();
    for device in [DeviceModel::xcv1000(), DeviceModel::xcv300()] {
        if device.name().to_ascii_lowercase() == lower
            || device
                .name()
                .to_ascii_lowercase()
                .starts_with(&format!("{lower}-"))
        {
            return Ok(device);
        }
    }
    Err(format!(
        "unknown device `{name}`; expected xcv1000 or xcv300"
    ))
}

/// The canonical design-point string for a named query, resolved exactly as
/// the server resolves it — so a client-side `get` matches what `explore`
/// stored.
///
/// # Errors
///
/// Returns a user-facing message for an unknown algorithm or device (kernel
/// names pass through verbatim; an unknown kernel simply misses).
pub fn canonical_for(point: &QueryPoint) -> Result<String, String> {
    let allocator = AllocatorRegistry::global()
        .get(&point.algorithm)
        .ok_or_else(|| format!("unknown algorithm `{}`", point.algorithm))?;
    let device = device_by_name(&point.device)?;
    Ok(format!(
        "kernel={};algo={};budget={};latency={};device={}",
        point.kernel,
        allocator.label(),
        point.budget,
        point.ram_latency,
        device.name()
    ))
}

/// A bound, not-yet-running query server.
///
/// Separating [`bind`](Server::bind) from [`run`](Server::run) lets callers
/// learn the ephemeral port before the accept loop starts — integration tests
/// and `ci.sh` depend on it.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: ServerState,
    workers: usize,
    report_interval: Duration,
    sample_interval: Duration,
}

impl Server {
    /// Binds the listener and opens the sharded store.
    ///
    /// # Errors
    ///
    /// Socket errors ([`ServeError::Io`]) or store errors
    /// ([`ServeError::Shard`], including the directory lock).
    pub fn bind(config: &ServerConfig) -> Result<Self, ServeError> {
        let store = ShardedStore::open(&config.cache_dir, config.shards)?;
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let mut kernels = HashMap::new();
        kernels.insert("example".to_owned(), CompiledKernel::new(paper_example()));
        for spec in paper_suite() {
            kernels.insert(spec.kernel.name().to_owned(), spec.compiled());
        }
        let registry = Registry::new();
        let counters = Counters::register(&registry);
        let mut rules = Vec::new();
        for spec in &config.slos {
            rules.push(SloRule::parse(spec).map_err(ServeError::Config)?);
        }
        // Size the series ring to cover the longest SLO window at the
        // configured cadence (plus slack), so a rule never starves for
        // history; without rules the default depth is plenty for `top`.
        let mut capacity = SeriesBuffer::DEFAULT_CAPACITY;
        if config.sample_interval_ms > 0 {
            let interval_us = config.sample_interval_ms.saturating_mul(1_000).max(1);
            for rule in &rules {
                let needed = (rule.window_us() / interval_us).saturating_add(2);
                capacity = capacity.max(usize::try_from(needed).unwrap_or(usize::MAX));
            }
        }
        let slos = if rules.is_empty() {
            None
        } else {
            Some(SloEvaluator::new(rules, &registry))
        };
        Ok(Self {
            listener,
            local_addr,
            state: ServerState {
                store,
                kernels,
                inflight: Inflight::default(),
                registry,
                counters,
                series: SeriesBuffer::new(capacity.min(4096)),
                slos,
                slow_query_us: config.slow_query_us,
                idle_timeout: Duration::from_secs(config.idle_timeout_secs),
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                open_connections: Mutex::new(HashMap::new()),
                next_connection_id: AtomicU64::new(0),
            },
            workers: config.workers.max(1),
            report_interval: Duration::from_secs(config.report_interval_secs),
            sample_interval: Duration::from_millis(config.sample_interval_ms),
        })
    }

    /// The bound address (with the real port when the config asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains and returns the
    /// final statistics.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection I/O errors close that
    /// connection and are not fatal.
    pub fn run(self) -> Result<ServerReport, ServeError> {
        let Self {
            listener,
            local_addr,
            state,
            workers,
            report_interval,
            sample_interval,
        } = self;
        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Mutex::new(receiver);
        let state_ref = &state;
        std::thread::scope(|scope| -> Result<(), ServeError> {
            for _ in 0..workers {
                let receiver = &receiver;
                scope.spawn(move || loop {
                    let next = receiver
                        .lock()
                        .expect("no worker panics while holding the receiver lock")
                        .recv();
                    match next {
                        Ok(stream) => serve_connection(state_ref, stream, local_addr),
                        Err(_) => break, // Accept loop is done and queue drained.
                    }
                });
            }
            if !report_interval.is_zero() {
                scope.spawn(move || run_reporter(state_ref, report_interval));
            }
            if !sample_interval.is_zero() {
                scope.spawn(move || run_sampler(state_ref, sample_interval));
            }
            // The accept loop runs inside a closure so *every* exit — clean
            // shutdown, worker-channel teardown, fatal listener error — falls
            // through to the shutdown-flag store below; the reporter thread
            // polls that flag and would otherwise pin the scope open forever
            // on the error path.
            let accepting = || -> Result<(), ServeError> {
                for incoming in listener.incoming() {
                    if state_ref.shutdown.load(Ordering::SeqCst) {
                        break; // The wake-up connection is dropped unserved.
                    }
                    match incoming {
                        Ok(stream) => {
                            state_ref.counters.connections.inc();
                            if sender.send(stream).is_err() {
                                break;
                            }
                        }
                        // Transient accept-level failures (peer reset before
                        // the accept, interrupted syscall) concern one
                        // connection, not the listener — keep serving.
                        Err(err)
                            if matches!(
                                err.kind(),
                                std::io::ErrorKind::ConnectionAborted
                                    | std::io::ErrorKind::ConnectionReset
                                    | std::io::ErrorKind::Interrupted
                                    | std::io::ErrorKind::WouldBlock
                            ) => {}
                        Err(err) => return Err(err.into()),
                    }
                }
                Ok(())
            };
            let outcome = accepting();
            state_ref.shutdown.store(true, Ordering::SeqCst);
            drop(sender);
            outcome
        })?;
        let stats = snapshot_stats(&state)?;
        Ok(ServerReport { stats })
    }
}

/// The opt-in periodic stats reporter: one summary line to stderr every
/// `interval`, sleeping in short slices so shutdown is never delayed by a
/// long interval.
///
/// Each line reports *per-interval* figures — request rate, hit ratio and
/// latency quantiles of the traffic since the previous line, computed with
/// the same [`SnapshotDelta`] math the `series` op serves — so a burst or a
/// regression shows up in the interval it happened instead of being diluted
/// into lifetime totals.
fn run_reporter(state: &ServerState, interval: Duration) {
    let mut next = Instant::now() + interval;
    let mut previous = SeriesSample {
        at_us: srra_obs::now_us(),
        metrics: merged_snapshot(state),
    };
    while !state.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if Instant::now() < next {
            continue;
        }
        next += interval;
        let current = SeriesSample {
            at_us: srra_obs::now_us(),
            metrics: merged_snapshot(state),
        };
        let delta = SnapshotDelta::between(&previous, &current);
        let rate = |name: &str| delta.rate(name).unwrap_or(0.0);
        let hits = delta.diff.counter("serve_hits_total").unwrap_or(0);
        let misses = delta.diff.counter("serve_misses_total").unwrap_or(0);
        let looked_up = hits + misses;
        let hit_pct = if looked_up == 0 {
            100.0
        } else {
            hits as f64 * 100.0 / looked_up as f64
        };
        eprintln!(
            "srra-serve report: uptime_secs={} req_s={:.1} hit_pct={:.1} evaluated_s={:.1} open_connections={} binary_s={:.1} json_s={:.1} get_p50_us={} get_p99_us={}",
            state.started.elapsed().as_secs(),
            rate("serve_requests_total"),
            hit_pct,
            rate("serve_evaluated_total"),
            state.counters.open_connections.get(),
            rate("serve_codec_binary_total"),
            rate("serve_codec_json_total"),
            delta.quantile("serve_op_get_latency_us", 0.50).unwrap_or(0),
            delta.quantile("serve_op_get_latency_us", 0.99).unwrap_or(0),
        );
        previous = current;
    }
}

/// The opt-in metrics sampler: every `interval` it pushes one timestamped
/// merged snapshot into the series ring and evaluates the SLO rules against
/// the updated ring.  Sleeps in short slices so shutdown is never delayed.
fn run_sampler(state: &ServerState, interval: Duration) {
    let slice = interval.min(Duration::from_millis(50));
    let mut next = Instant::now();
    while !state.shutdown.load(Ordering::SeqCst) {
        if Instant::now() < next {
            std::thread::sleep(slice);
            continue;
        }
        next += interval;
        state.series.record(merged_snapshot(state));
        if let Some(slos) = &state.slos {
            slos.evaluate(&state.series);
        }
    }
}

/// This server's registry merged with the process-global one — the exact
/// view the `metrics` op scrapes, so series samples and live scrapes agree.
fn merged_snapshot(state: &ServerState) -> srra_obs::MetricsSnapshot {
    let mut snapshot = state.registry.snapshot();
    snapshot.merge(&Registry::global().snapshot());
    snapshot
}

/// Builds the current [`ServerStats`] from the shared state.
fn snapshot_stats(state: &ServerState) -> Result<ServerStats, ServeError> {
    let uptime = state.started.elapsed();
    Ok(ServerStats {
        uptime_ms: uptime.as_millis() as u64,
        uptime_secs: uptime.as_secs(),
        version: env!("CARGO_PKG_VERSION").to_owned(),
        connections: state.counters.connections.get(),
        requests: state.counters.requests.get(),
        hits: state.counters.hits.get(),
        misses: state.counters.misses.get(),
        evaluated: state.counters.evaluated.get(),
        shard_records: state.store.shard_sizes()?,
        ops: state.counters.op_stats(),
    })
}

/// Serves one connection: any number of request lines, one response line each,
/// in strict request order.
///
/// The loop owns two scratch buffers for its whole lifetime — the request
/// line and the rendered response — so a keep-alive connection stops
/// allocating once the buffers have grown to the workload's line sizes.  Each
/// response (trailing `\n` included) goes out with one `write_all`; the
/// `BufWriter` flush is skipped while the read buffer already holds another
/// complete request line, which batches pipelined replies into large writes.
fn serve_connection(state: &ServerState, stream: TcpStream, local_addr: SocketAddr) {
    // Register before serving so a graceful shutdown can wake this
    // connection's blocking read; deregister on the way out.  A connection
    // that cannot be registered (fd exhaustion on the try_clone) is refused
    // outright — serving it unregistered could leave a graceful shutdown
    // waiting forever on its read, and the client's reconnect-and-retry
    // turns the refusal into one clean retry on a fresh socket.
    let Some(id) = state.register_connection(&stream) else {
        return;
    };
    serve_connection_requests(state, stream, local_addr);
    state.deregister_connection(id);
}

/// The request/response loop of [`serve_connection`].
///
/// The codec is negotiated per request by sniffing the first buffered byte:
/// [`BINARY_MAGIC`] selects the binary frame codec, anything else the JSON
/// line codec — so one connection may freely interleave both, and existing
/// JSON clients keep working unchanged.
fn serve_connection_requests(state: &ServerState, stream: TcpStream, local_addr: SocketAddr) {
    // Replies are latency-sensitive single lines: never let Nagle hold them.
    let _ = stream.set_nodelay(true);
    // The idle-connection deadline rides on a plain read timeout: a client
    // that stays silent past it wakes the blocked codec sniff below with
    // `WouldBlock`/`TimedOut` and the connection is reaped.
    if !state.idle_timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(state.idle_timeout));
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    let mut line = String::with_capacity(256);
    let mut rendered = String::with_capacity(256);
    let mut payload: Vec<u8> = Vec::with_capacity(256);
    let mut frame: Vec<u8> = Vec::with_capacity(256);
    loop {
        // Sniff the codec of the next request off the first buffered byte
        // (this is also where an idle keep-alive connection blocks).
        let binary = match reader.fill_buf() {
            Ok([]) => return, // Clean EOF.
            Ok(buffered) => buffered[0] == BINARY_MAGIC,
            // The idle deadline fired while waiting for the next request:
            // reap the connection.  (Timeouts surface as `WouldBlock` on Unix
            // and `TimedOut` on Windows.)
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                state.counters.idle_reaped.inc();
                return;
            }
            Err(_) => return,
        };
        let started;
        let parse_elapsed;
        let parsed: Result<(Request, Option<String>), String>;
        if binary {
            match read_frame(&mut reader, &mut payload) {
                Ok(()) => {}
                Err(FrameError::BadLength(len)) => {
                    // The next frame boundary is unknowable: answer once with
                    // a binary error frame, then close the connection.
                    state.counters.requests.inc();
                    state.counters.codec_binary.inc();
                    state.counters.record_op(Op::Invalid, Duration::ZERO, None);
                    frame.clear();
                    let reply = Response::Error {
                        message: FrameError::BadLength(len).to_string(),
                    };
                    if encode_response_frame(&mut frame, None, &reply).is_ok() {
                        let _ = writer.write_all(&frame);
                        let _ = writer.flush();
                    }
                    return;
                }
                // Peer vanished mid-frame; `BadMagic` is unreachable after
                // the sniff above.
                Err(FrameError::Io(_) | FrameError::BadMagic(_)) => return,
            }
            started = Instant::now();
            state.counters.requests.inc();
            state.counters.codec_binary.inc();
            // A payload that fails to decode is recoverable: the frame
            // boundary was already consumed, so answer the error and keep
            // the connection (no desync).
            parsed = decode_payload::<Request>(&payload).map_err(|err| err.to_string());
            parse_elapsed = started.elapsed();
            state.counters.codec_parse_us.record(parse_elapsed);
        } else {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return, // Clean EOF.
                Ok(_) => {}
                Err(_) => return, // Peer vanished mid-line.
            }
            // Strip the line terminator (read_line keeps it): the codec's
            // fast paths match the exact rendered framing, terminator
            // excluded.
            let request_line = line.trim_end_matches(['\n', '\r']);
            if request_line.trim().is_empty() {
                continue;
            }
            started = Instant::now();
            state.counters.requests.inc();
            state.counters.codec_json.inc();
            parsed = Request::parse_with_trace(request_line);
            parse_elapsed = started.elapsed();
            state.counters.codec_parse_us.record(parse_elapsed);
        }
        let trace = match &parsed {
            Ok((_, trace)) => {
                if trace.is_some() {
                    state.counters.traced_requests.inc();
                }
                trace.clone()
            }
            Err(_) => None,
        };
        let trace_ref = trace.as_deref();
        // Traced requests accumulate a span tree; untraced requests never
        // allocate a collector.
        let mut collector = trace_ref.map(SpanCollector::new);
        if let Some(spans) = collector.as_mut() {
            spans
                .child("parse", started, parse_elapsed)
                .annotations
                .push((
                    "codec".to_owned(),
                    if binary { "binary" } else { "json" }.to_owned(),
                ));
        }
        let (response, op, shutdown) = match parsed {
            Err(message) => (Response::Error { message }, Op::Invalid, false),
            Ok((Request::Get { canonical }, _)) => (
                handle_get(state, &canonical, collector.as_mut()),
                Op::Get,
                false,
            ),
            Ok((Request::MultiGet { canonicals }, _)) => (
                handle_mget(state, &canonicals, collector.as_mut()),
                Op::MultiGet,
                false,
            ),
            Ok((Request::Explore { points }, _)) => (
                handle_explore(state, &points, trace_ref, collector.as_mut()),
                Op::Explore,
                false,
            ),
            Ok((Request::MultiExplore { points }, _)) => (
                handle_mexplore(state, &points, trace_ref, collector.as_mut()),
                Op::MultiExplore,
                false,
            ),
            Ok((Request::Put { records }, _)) => (handle_put(state, &records), Op::Put, false),
            Ok((Request::Ping, _)) => (Response::Pong, Op::Ping, false),
            Ok((Request::Stats, _)) => (
                match snapshot_stats(state) {
                    Ok(stats) => Response::Stats(stats),
                    Err(err) => Response::Error {
                        message: err.to_string(),
                    },
                },
                Op::Stats,
                false,
            ),
            Ok((Request::Metrics { prometheus }, _)) => {
                (handle_metrics(state, prometheus), Op::Metrics, false)
            }
            Ok((Request::Trace { id }, _)) => (handle_trace(state, &id), Op::Trace, false),
            Ok((Request::Series { last, window_us }, _)) => {
                (handle_series(state, last, window_us), Op::Series, false)
            }
            Ok((Request::Digest, _)) => (handle_digest(state), Op::Digest, false),
            Ok((
                Request::Scan {
                    shard,
                    offset,
                    limit,
                },
                _,
            )) => (handle_scan(state, shard, offset, limit), Op::Scan, false),
            Ok((Request::Shutdown, _)) => (Response::ShuttingDown, Op::Shutdown, true),
        };
        let render_started = Instant::now();
        let reply_bytes: &[u8] = if binary {
            // Echo the request's trace id on the reply frame.
            frame.clear();
            if encode_response_frame(&mut frame, trace_ref, &response).is_err() {
                // Unreachable for server-built replies under the frame cap,
                // but never leave a binary client without its reply frame.
                frame.clear();
                let _ = encode_response_frame(
                    &mut frame,
                    None,
                    &Response::Error {
                        message: "reply exceeded the binary frame cap".to_owned(),
                    },
                );
            }
            &frame
        } else {
            rendered.clear();
            response.render_into(&mut rendered);
            // Echo the request's trace id in the reply, rendered last so
            // clients strip it the same cheap way the server did.
            if let Some(trace) = trace_ref {
                stamp_trace(&mut rendered, trace);
            }
            rendered.push('\n');
            rendered.as_bytes()
        };
        let render_elapsed = render_started.elapsed();
        state.counters.codec_render_us.record(render_elapsed);
        // Account the request and record its span tree BEFORE the reply
        // leaves: a client holding the reply must find the trace queryable,
        // so the spans have to reach the flight recorder first.  `elapsed`
        // therefore covers parse through render, not the socket write.
        let elapsed = started.elapsed();
        state.counters.record_op(op, elapsed, trace_ref);
        let slow =
            state.slow_query_us > 0 && elapsed.as_micros() >= u128::from(state.slow_query_us);
        let mut span_note = String::new();
        if let Some(mut spans) = collector.take() {
            spans.child("render", render_started, render_elapsed);
            if slow {
                span_note = spans.slow_note(2);
            }
            let trace_id = spans.trace_id.clone();
            state.registry.traces().record_all(spans.finish(
                OP_NAMES[op as usize],
                started,
                elapsed,
            ));
            if slow {
                // Pin after recording: the pin copies this trace's spans out
                // of the ring into the retained set.
                state.registry.traces().pin(&trace_id);
                state.counters.pinned_traces.inc();
            }
        }
        if slow {
            state.counters.slow_queries.inc();
            if span_note.is_empty() {
                eprintln!(
                    "srra-serve slow-query: op={} elapsed_us={} trace={}",
                    OP_NAMES[op as usize],
                    elapsed.as_micros(),
                    trace_ref.unwrap_or("-"),
                );
            } else {
                eprintln!(
                    "srra-serve slow-query: op={} elapsed_us={} trace={} spans={span_note}",
                    OP_NAMES[op as usize],
                    elapsed.as_micros(),
                    trace_ref.unwrap_or("-"),
                );
            }
        }
        let mut sent = writer.write_all(reply_bytes);
        // Defer the flush only while the read buffer still holds a complete
        // request of either codec — one guaranteed to produce another
        // response before this worker can block on the socket again, so the
        // reply bytes ride along with that response's flush.  A buffered
        // blank line or partial frame alone produces no response, so
        // deferring on one would strand this reply in the BufWriter.
        if sent.is_ok() && !holds_complete_request(reader.buffer()) {
            sent = writer.flush();
        }
        if shutdown {
            let _ = writer.flush();
            state.shutdown.store(true, Ordering::SeqCst);
            // Poke the accept loop awake; it re-checks the flag and exits.
            let _ = TcpStream::connect(local_addr);
            // Wake workers blocked on idle keep-alive connections: their
            // sockets' read halves are shut down, read_line returns EOF and
            // the drain completes without waiting for clients to hang up.
            state.close_idle_connections();
            return;
        }
        if sent.is_err() {
            return;
        }
    }
}

/// Answers a `metrics` scrape: this server's registry merged with the
/// process-global one (explore engine, sharded store, wire clients), as JSON
/// or as a Prometheus-style text exposition.
fn handle_metrics(state: &ServerState, prometheus: bool) -> Response {
    let mut snapshot = state.registry.snapshot();
    snapshot.merge(&Registry::global().snapshot());
    if prometheus {
        Response::MetricsText {
            text: snapshot.render_prometheus(),
        }
    } else {
        Response::Metrics(snapshot)
    }
}

/// Answers a `series`: the newest `last` samples of the metrics ring
/// (oldest first), or the delta across the trailing `window_us` window.
/// Sample mode with an idle sampler answers an empty list; window mode
/// needs two samples inside the window, so it names the sampler knob when
/// there are not enough.
fn handle_series(state: &ServerState, last: u64, window_us: u64) -> Response {
    if last > 0 {
        let count = usize::try_from(last).unwrap_or(usize::MAX);
        return Response::Series {
            samples: state.series.last(count),
        };
    }
    match state.series.window_delta(window_us) {
        Some(delta) => Response::SeriesDelta { delta },
        None => Response::Error {
            message: "series: not enough samples in the window; is the sampler running \
                      (`--sample-interval-ms`)?"
                .to_owned(),
        },
    }
}

/// Answers a `trace`: everything the flight recorder retains for the id.
/// An unknown or churned-out trace answers an empty list, not an error — the
/// recorder is best-effort by design.
fn handle_trace(state: &ServerState, id: &str) -> Response {
    Response::Traced {
        spans: state.registry.traces().snapshot(id),
    }
}

/// Answers a `digest`: one per-shard anti-entropy digest, in shard order
/// (see [`ShardedStore::digests`]).
fn handle_digest(state: &ServerState) -> Response {
    Response::Digests {
        digests: state.store.digests(),
    }
}

/// Answers a `scan`: one offset-paged window of a shard's canonicals.
fn handle_scan(state: &ServerState, shard: u64, offset: u64, limit: u64) -> Response {
    let count = state.store.shard_count() as u64;
    if shard >= count {
        return Response::Error {
            message: format!("scan: shard {shard} out of range (server has {count} shards)"),
        };
    }
    let offset = usize::try_from(offset).unwrap_or(usize::MAX);
    let limit = usize::try_from(limit).unwrap_or(usize::MAX);
    let (canonicals, done) = state.store.scan(shard as usize, offset, limit);
    Response::Scanned { canonicals, done }
}

/// One shard lookup, with a `shard.lock_wait` span (annotated with the shard
/// index) when the request is traced.
fn shard_lookup(
    state: &ServerState,
    key: u64,
    canonical: &str,
    collector: Option<&mut SpanCollector>,
) -> Result<Option<PointRecord>, ShardError> {
    match collector {
        None => state.store.get_record(key, canonical),
        Some(spans) => {
            let started = Instant::now();
            let (record, lock_wait) = state.store.get_record_timed(key, canonical)?;
            spans
                .child("shard.lock_wait", started, lock_wait)
                .annotations
                .push(("shard".to_owned(), state.store.route(key).to_string()));
            Ok(record)
        }
    }
}

/// Answers a `get`: pure lookup, never evaluates.
fn handle_get(
    state: &ServerState,
    canonical: &str,
    collector: Option<&mut SpanCollector>,
) -> Response {
    let key = srra_explore::fnv1a_64(canonical.as_bytes());
    match shard_lookup(state, key, canonical, collector) {
        Ok(Some(record)) => {
            state.counters.hits.inc();
            Response::Found { record }
        }
        Ok(None) => {
            state.counters.misses.inc();
            Response::NotFound
        }
        Err(err) => Response::Error {
            message: err.to_string(),
        },
    }
}

/// Answers an `mget` batch: one pure lookup per canonical, misses answered
/// as nulls, all in one reply line.
fn handle_mget(
    state: &ServerState,
    canonicals: &[String],
    mut collector: Option<&mut SpanCollector>,
) -> Response {
    let mut records = Vec::with_capacity(canonicals.len());
    for canonical in canonicals {
        let key = srra_explore::fnv1a_64(canonical.as_bytes());
        match shard_lookup(state, key, canonical, collector.as_deref_mut()) {
            Ok(Some(record)) => {
                state.counters.hits.inc();
                records.push(Some(record));
            }
            Ok(None) => {
                state.counters.misses.inc();
                records.push(None);
            }
            Err(err) => {
                return Response::Error {
                    message: err.to_string(),
                }
            }
        }
    }
    Response::MultiGot { records }
}

/// Answers a `put`: stores pre-evaluated records verbatim, skipping records
/// whose canonical is already present.  The replication tee of the cluster
/// router lands here, so the records must be byte-identical to what the
/// evaluating node stored — [`PointRecord`]'s JSONL round trip guarantees it.
fn handle_put(state: &ServerState, records: &[PointRecord]) -> Response {
    let mut stored = 0;
    for record in records {
        // The protocol is open to third-party clients: reject a record whose
        // wire-supplied key does not match its canonical, or the store gains
        // an entry no lookup can ever reach (and compact would keep routing
        // by the bogus key forever).
        let expected = srra_explore::fnv1a_64(record.canonical.as_bytes());
        if record.key != expected {
            return Response::Error {
                message: format!(
                    "put: record key {:#x} does not match its canonical (expected {expected:#x})",
                    record.key
                ),
            };
        }
        match state.store.put_record(record) {
            Ok(true) => stored += 1,
            Ok(false) => {}
            Err(err) => {
                return Response::Error {
                    message: err.to_string(),
                }
            }
        }
    }
    Response::Stored { stored }
}

/// Answers an `mexplore` batch: like `explore`, but a point that fails to
/// resolve yields a per-point error instead of failing the whole batch.
fn handle_mexplore(
    state: &ServerState,
    points: &[QueryPoint],
    trace: Option<&str>,
    mut collector: Option<&mut SpanCollector>,
) -> Response {
    let mut outcomes = Vec::with_capacity(points.len());
    let mut hits = 0;
    let mut evaluated = 0;
    for point in points {
        match answer_point(state, point, trace, collector.as_deref_mut()) {
            Ok((record, was_hit)) => {
                if was_hit {
                    hits += 1;
                } else {
                    evaluated += 1;
                }
                outcomes.push(PointOutcome::Answered {
                    record,
                    hit: was_hit,
                });
            }
            Err(error) => outcomes.push(PointOutcome::Failed { error }),
        }
    }
    Response::MultiExplored {
        outcomes,
        hits,
        evaluated,
    }
}

/// Answers an `explore` batch: hits from the shards, misses evaluated exactly
/// once (across all concurrent clients) and written back.
fn handle_explore(
    state: &ServerState,
    points: &[QueryPoint],
    trace: Option<&str>,
    mut collector: Option<&mut SpanCollector>,
) -> Response {
    let mut records = Vec::with_capacity(points.len());
    let mut hits = 0;
    let mut evaluated = 0;
    for point in points {
        match answer_point(state, point, trace, collector.as_deref_mut()) {
            Ok((record, was_hit)) => {
                if was_hit {
                    hits += 1;
                } else {
                    evaluated += 1;
                }
                records.push(record);
            }
            Err(message) => return Response::Error { message },
        }
    }
    Response::Explored {
        records,
        hits,
        evaluated,
    }
}

/// Resolves and answers one point; the boolean is `true` when the record came
/// from the store without this request evaluating it.
fn answer_point(
    state: &ServerState,
    point: &QueryPoint,
    trace: Option<&str>,
    mut collector: Option<&mut SpanCollector>,
) -> Result<(PointRecord, bool), String> {
    let kernel = state.kernels.get(&point.kernel).ok_or_else(|| {
        format!(
            "unknown kernel `{}`; expected example, fir, dec_fir, mat, imi, pat or bic",
            point.kernel
        )
    })?;
    let allocator = AllocatorRegistry::global()
        .get(&point.algorithm)
        .ok_or_else(|| format!("unknown algorithm `{}`", point.algorithm))?;
    let device = device_by_name(&point.device)?;
    let design_point = DesignPoint {
        kernel_index: 0, // Unused by `evaluate_point`; the kernel is passed directly.
        kernel: point.kernel.clone(),
        allocator,
        budget: point.budget,
        ram_latency: point.ram_latency,
        device,
    };
    let canonical = design_point.canonical();
    let key = design_point.key();
    let mut first_try = true;
    loop {
        match shard_lookup(state, key, &canonical, collector.as_deref_mut()) {
            Ok(Some(record)) => {
                state.counters.hits.inc();
                return Ok((record, first_try));
            }
            Ok(None) => {}
            Err(err) => return Err(err.to_string()),
        }
        let claim_started = Instant::now();
        if state.inflight.claim(key, trace) {
            state.counters.inflight_claims.inc();
            if let Some(spans) = collector.as_deref_mut() {
                spans.child("inflight.claim", claim_started, claim_started.elapsed());
            }
            let outcome = evaluate_claimed(
                state,
                kernel,
                &design_point,
                key,
                &canonical,
                trace,
                collector.as_deref_mut(),
            );
            state.inflight.release(key);
            return outcome;
        }
        // Another worker is evaluating this key: wait for it, then re-read.
        state.counters.inflight_waits.inc();
        let wait_started = Instant::now();
        let claimant = state.inflight.wait_released(key);
        let waited = wait_started.elapsed();
        if let Some(spans) = collector.as_deref_mut() {
            let child = spans.child("inflight.wait", wait_started, waited);
            if let Some(claimant) = &claimant {
                child
                    .annotations
                    .push(("claimant".to_owned(), claimant.clone()));
            }
        }
        if state.slow_query_us > 0 && waited.as_micros() >= u128::from(state.slow_query_us) {
            eprintln!(
                "srra-serve slow-wait: canonical={canonical} waited_us={} trace={} claimant_trace={}",
                waited.as_micros(),
                trace.unwrap_or("-"),
                claimant.as_deref().unwrap_or("-"),
            );
        }
        first_try = false;
    }
}

/// Runs while holding the in-flight claim on `key`: re-checks the store
/// first — the previous holder may have published between this request's
/// miss and its claim succeeding — then evaluates.  Without the re-check a
/// preempted worker could evaluate a point twice, breaking the exactly-once
/// guarantee.  The caller releases the claim.
fn evaluate_claimed(
    state: &ServerState,
    kernel: &CompiledKernel,
    design_point: &DesignPoint,
    key: u64,
    canonical: &str,
    trace: Option<&str>,
    collector: Option<&mut SpanCollector>,
) -> Result<(PointRecord, bool), String> {
    match state.store.get_record(key, canonical) {
        Ok(Some(record)) => {
            state.counters.hits.inc();
            Ok((record, false))
        }
        Ok(None) => {
            let eval_started = Instant::now();
            let (record, timings) = evaluate_point_timed(kernel, design_point);
            let eval_elapsed = eval_started.elapsed();
            if let Some(spans) = collector {
                // The engine reports stage durations, not wall-clock bounds;
                // lay the children end to end from the evaluation start so
                // the waterfall shows them in pipeline order.
                let mut at = eval_started;
                if timings.reuse_analysis_us > 0 {
                    let dur = Duration::from_micros(timings.reuse_analysis_us);
                    spans.child("engine.reuse_analysis", at, dur);
                    at += dur;
                }
                let dur = Duration::from_micros(timings.allocation_us);
                spans.child("engine.allocation", at, dur);
                at += dur;
                if record.feasible {
                    let dur = Duration::from_micros(timings.cost_model_us);
                    spans.child("engine.cost_model", at, dur);
                }
            }
            if state.slow_query_us > 0
                && eval_elapsed.as_micros() >= u128::from(state.slow_query_us)
            {
                state.counters.slow_queries.inc();
                eprintln!(
                    "srra-serve slow-eval: canonical={canonical} shard={} elapsed_us={} trace={}",
                    state.store.route(key),
                    eval_elapsed.as_micros(),
                    trace.unwrap_or("-"),
                );
            }
            if let Err(err) = state.store.put_record(&record) {
                return Err(err.to_string());
            }
            state.counters.misses.inc();
            state.counters.evaluated.inc();
            Ok((record, false))
        }
        Err(err) => Err(err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_resolution_matches_design_point_canonicals() {
        let point = QueryPoint::new("fir", "cpa", 32);
        let canonical = canonical_for(&point).unwrap();
        assert_eq!(
            canonical,
            "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560"
        );
        assert!(canonical_for(&QueryPoint::new("fir", "nope", 32)).is_err());
        let mut bad_device = QueryPoint::new("fir", "cpa", 32);
        bad_device.device = "xcv9000".to_owned();
        assert!(canonical_for(&bad_device).is_err());
    }

    #[test]
    fn device_names_resolve_case_insensitively() {
        assert_eq!(device_by_name("xcv1000").unwrap(), DeviceModel::xcv1000());
        assert_eq!(
            device_by_name("XCV1000-BG560").unwrap(),
            DeviceModel::xcv1000()
        );
        assert_eq!(device_by_name("Xcv300").unwrap(), DeviceModel::xcv300());
        assert!(device_by_name("xcv9000").is_err());
    }

    #[test]
    fn put_validates_keys_and_stores_records_verbatim() {
        let dir = std::env::temp_dir().join(format!(
            "srra-serve-put-unit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(&ServerConfig::ephemeral(&dir)).unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut connection = crate::Connection::connect(&addr).unwrap();
        let mut record = PointRecord {
            key: srra_explore::fnv1a_64(b"kernel=fir;algo=CPA-RA;budget=32"),
            canonical: "kernel=fir;algo=CPA-RA;budget=32".to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 17,
            total_cycles: 4242,
            compute_cycles: 4000,
            memory_cycles: 200,
            transfer_cycles: 42,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:16".to_owned(),
        };
        // A fresh record stores once; the byte-identical duplicate no-ops.
        assert_eq!(connection.put(std::slice::from_ref(&record)).unwrap(), 1);
        assert_eq!(connection.put(std::slice::from_ref(&record)).unwrap(), 0);
        let read_back = connection.get(&record.canonical).unwrap().unwrap();
        assert_eq!(read_back, record);
        // A record whose wire key does not hash its canonical is rejected —
        // it would be unreachable by every lookup.
        record.key ^= 1;
        match connection.put(std::slice::from_ref(&record)) {
            Err(crate::ClientError::Server(message)) => {
                assert!(message.contains("does not match"), "{message}");
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        connection.shutdown().unwrap();
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn server_binds_an_ephemeral_port_and_shuts_down() {
        let dir = std::env::temp_dir().join(format!(
            "srra-serve-unit-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(&ServerConfig::ephemeral(&dir)).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("{}\n", Request::Stats.render()).as_bytes())
            .unwrap();
        let mut reply = String::new();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        reader.read_line(&mut reply).unwrap();
        let Response::Stats(stats) = Response::parse(reply.trim()).unwrap() else {
            panic!("expected stats, got {reply}");
        };
        assert_eq!(stats.shard_records.len(), 4);

        // Same connection: issue the shutdown.
        stream
            .write_all(format!("{}\n", Request::Shutdown.render()).as_bytes())
            .unwrap();
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert_eq!(Response::parse(ack.trim()).unwrap(), Response::ShuttingDown);

        let report = handle.join().unwrap();
        assert!(report.stats.requests >= 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
