//! The binary wire codec: length-prefixed frames carrying the same
//! [`Request`]/[`Response`] protocol as the JSON lines, without the text
//! tax.
//!
//! # Frame layout
//!
//! ```text
//! frame   := magic:u8 len:u32le payload[len]
//! payload := trace_len:u8 trace[trace_len] body
//! body    := tag:u8 fields...
//! ```
//!
//! * `magic` is [`BINARY_MAGIC`] (`0xB1`) — a byte that can never begin a
//!   JSON request line (`{` is `0x7B`, and blank/whitespace bytes are also
//!   distinct), which is the whole negotiation rule: the server sniffs the
//!   first byte of each buffered request and picks the codec per frame, so
//!   existing JSON clients keep working unchanged on the same port.
//! * `len` counts the payload bytes (everything after the 5-byte header)
//!   and must be `1 ..=` [`MAX_FRAME_LEN`]; a zero or oversized length is
//!   unrecoverable (the stream cannot be resynchronised) and closes the
//!   connection after one final error reply.
//! * `trace` is the optional trace id (see [`crate::valid_trace_id`]),
//!   echoed verbatim on the reply frame — the binary twin of the JSON
//!   `"trace"` member; `trace_len` 0 means untraced.
//! * `body` is the [`WireSerde`] encoding of the request or response: a
//!   one-byte variant tag followed by the variant's fields in declaration
//!   order, built from the primitives in [`srra_explore::codec`].
//!
//! A payload that fails to decode is answered with a [`Response::Error`]
//! frame and the connection *stays open* — the frame boundary was already
//! known, so the stream never desyncs (mirroring the JSON contract where a
//! malformed line still produces exactly one reply line).

use std::io::Read;

use srra_explore::codec::{read_len, write_seq_len, write_str, WireError, WireSerde};
use srra_explore::PointRecord;
use srra_obs::{
    valid_metric_name, HistogramSnapshot, MetricsSnapshot, SeriesSample, SnapshotDelta, Span,
};

use crate::protocol::{
    valid_trace_id, OpStats, PointOutcome, QueryPoint, Request, Response, ServerStats, ShardDigest,
};

/// First byte of every binary frame.  `0xB1` can never open a JSON request
/// (those start with `{`, whitespace or nothing), so one peeked byte decides
/// the codec.
pub const BINARY_MAGIC: u8 = 0xB1;

/// Largest accepted frame payload (64 MiB) — far above any legitimate
/// request or reply, low enough that a corrupt length header cannot ask the
/// server to buffer gigabytes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Errors reading one frame off the wire.
#[derive(Debug)]
pub enum FrameError {
    /// The stream failed or ended mid-frame; the connection is unusable.
    Io(std::io::Error),
    /// The header declared a zero or over-cap payload length; the stream
    /// cannot be resynchronised (the next frame boundary is unknowable).
    BadLength(usize),
    /// The first byte was not [`BINARY_MAGIC`] — the peer is not speaking
    /// the binary codec.
    BadMagic(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "binary frame I/O error: {err}"),
            FrameError::BadLength(len) => {
                write!(f, "binary frame length {len} outside 1..={MAX_FRAME_LEN}")
            }
            FrameError::BadMagic(byte) => write!(
                f,
                "expected the binary frame magic {BINARY_MAGIC:#04x}, got {byte:#04x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// Reads one complete frame — magic byte included — into `payload`
/// (cleared and reused).
///
/// # Errors
///
/// [`FrameError::Io`] when the stream fails or ends mid-frame,
/// [`FrameError::BadLength`] when the header is malformed.  The caller must
/// close the connection on either (after answering `BadLength` with one
/// error frame if it can).
pub fn read_frame(reader: &mut impl Read, payload: &mut Vec<u8>) -> Result<(), FrameError> {
    let mut header = [0u8; 5];
    reader.read_exact(&mut header)?;
    if header[0] != BINARY_MAGIC {
        return Err(FrameError::BadMagic(header[0]));
    }
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(FrameError::BadLength(len));
    }
    payload.clear();
    payload.resize(len, 0);
    reader.read_exact(payload)?;
    Ok(())
}

/// Appends one complete frame (magic + length + trace + body) to `out`,
/// encoding the body through `body`.
fn frame_into(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    body: impl FnOnce(&mut Vec<u8>) -> Result<(), WireError>,
) -> Result<(), WireError> {
    out.push(BINARY_MAGIC);
    let len_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let start = out.len();
    match trace {
        None => out.push(0),
        Some(id) => {
            if !valid_trace_id(id) {
                return Err(WireError::Corrupt(format!("illegal trace id {id:?}")));
            }
            out.push(id.len() as u8);
            out.extend_from_slice(id.as_bytes());
        }
    }
    body(out)?;
    let len = out.len() - start;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Corrupt(format!(
            "frame payload of {len} bytes exceeds the {MAX_FRAME_LEN} cap"
        )));
    }
    out[len_at..len_at + 4].copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Appends one request frame to `out` (not cleared — pipelining callers
/// append several frames into one buffer).
///
/// # Errors
///
/// [`WireError::Corrupt`] on an illegal trace id or over-cap body; writing
/// to a `Vec` cannot fail.
pub fn encode_request_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    request: &Request,
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| request.serialize_into(buf))
}

/// Appends one response frame to `out` (not cleared).
///
/// # Errors
///
/// As [`encode_request_frame`].
pub fn encode_response_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    response: &Response,
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| response.serialize_into(buf))
}

/// Appends a `get` request frame from a borrowed canonical — the binary twin
/// of the JSON `render_get_request` fast path (no owned [`Request`] needed).
pub(crate) fn encode_get_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    canonical: &str,
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| {
        TAG_GET.serialize_into(buf)?;
        write_str(buf, canonical)
    })
}

/// Appends an `mget` request frame from borrowed canonicals.
pub(crate) fn encode_mget_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    canonicals: &[String],
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| {
        TAG_MGET.serialize_into(buf)?;
        write_seq_len(buf, canonicals.len())?;
        for canonical in canonicals {
            write_str(buf, canonical)?;
        }
        Ok(())
    })
}

/// Appends an `explore`/`mexplore` request frame from borrowed points.
pub(crate) fn encode_points_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    multi: bool,
    points: &[QueryPoint],
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| {
        if multi { TAG_MEXPLORE } else { TAG_EXPLORE }.serialize_into(buf)?;
        write_seq_len(buf, points.len())?;
        for point in points {
            point.serialize_into(buf)?;
        }
        Ok(())
    })
}

/// Appends a `put` request frame from borrowed records.
pub(crate) fn encode_put_frame(
    out: &mut Vec<u8>,
    trace: Option<&str>,
    records: &[PointRecord],
) -> Result<(), WireError> {
    frame_into(out, trace, |buf| {
        TAG_PUT.serialize_into(buf)?;
        write_seq_len(buf, records.len())?;
        for record in records {
            record.serialize_into(buf)?;
        }
        Ok(())
    })
}

/// Decodes a frame payload (trace prefix + tagged body), requiring every
/// byte to be consumed.
///
/// # Errors
///
/// [`WireError::Io`] on truncation inside the payload, [`WireError::Corrupt`]
/// on bad bytes, an illegal trace id, or trailing garbage.
pub fn decode_payload<T: WireSerde>(payload: &[u8]) -> Result<(T, Option<String>), WireError> {
    let mut reader = payload;
    let trace_len = u8::deserialize_from(&mut reader)? as usize;
    let trace = if trace_len == 0 {
        None
    } else {
        let bytes = reader
            .get(..trace_len)
            .ok_or_else(|| WireError::Corrupt("trace id truncated".to_owned()))?;
        let id = std::str::from_utf8(bytes)
            .map_err(|_| WireError::Corrupt("trace id is not UTF-8".to_owned()))?;
        if !valid_trace_id(id) {
            return Err(WireError::Corrupt(format!("illegal trace id {id:?}")));
        }
        reader = &reader[trace_len..];
        Some(id.to_owned())
    };
    let value = T::deserialize_from(&mut reader)?;
    if !reader.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after the frame body",
            reader.len()
        )));
    }
    Ok((value, trace))
}

const TAG_GET: u8 = 1;
const TAG_MGET: u8 = 2;
const TAG_EXPLORE: u8 = 3;
const TAG_MEXPLORE: u8 = 4;
const TAG_PUT: u8 = 5;
const TAG_PING: u8 = 6;
const TAG_STATS: u8 = 7;
const TAG_METRICS: u8 = 8;
const TAG_SHUTDOWN: u8 = 9;
const TAG_TRACE: u8 = 10;
const TAG_DIGEST: u8 = 11;
const TAG_SCAN: u8 = 12;
const TAG_SERIES: u8 = 13;

impl WireSerde for QueryPoint {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        write_str(out, &self.kernel)?;
        write_str(out, &self.algorithm)?;
        self.budget.serialize_into(out)?;
        self.ram_latency.serialize_into(out)?;
        write_str(out, &self.device)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        Ok(Self {
            kernel: String::deserialize_from(reader)?,
            algorithm: String::deserialize_from(reader)?,
            budget: u64::deserialize_from(reader)?,
            ram_latency: u64::deserialize_from(reader)?,
            device: String::deserialize_from(reader)?,
        })
    }
}

impl WireSerde for Request {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        match self {
            Request::Get { canonical } => {
                TAG_GET.serialize_into(out)?;
                write_str(out, canonical)
            }
            Request::MultiGet { canonicals } => {
                TAG_MGET.serialize_into(out)?;
                canonicals.serialize_into(out)
            }
            Request::Explore { points } => {
                TAG_EXPLORE.serialize_into(out)?;
                points.serialize_into(out)
            }
            Request::MultiExplore { points } => {
                TAG_MEXPLORE.serialize_into(out)?;
                points.serialize_into(out)
            }
            Request::Put { records } => {
                TAG_PUT.serialize_into(out)?;
                records.serialize_into(out)
            }
            Request::Ping => TAG_PING.serialize_into(out),
            Request::Stats => TAG_STATS.serialize_into(out),
            Request::Metrics { prometheus } => {
                TAG_METRICS.serialize_into(out)?;
                prometheus.serialize_into(out)
            }
            Request::Trace { id } => {
                TAG_TRACE.serialize_into(out)?;
                write_str(out, id)
            }
            Request::Series { last, window_us } => {
                TAG_SERIES.serialize_into(out)?;
                last.serialize_into(out)?;
                window_us.serialize_into(out)
            }
            Request::Digest => TAG_DIGEST.serialize_into(out),
            Request::Scan {
                shard,
                offset,
                limit,
            } => {
                TAG_SCAN.serialize_into(out)?;
                shard.serialize_into(out)?;
                offset.serialize_into(out)?;
                limit.serialize_into(out)
            }
            Request::Shutdown => TAG_SHUTDOWN.serialize_into(out),
        }
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        match u8::deserialize_from(reader)? {
            TAG_GET => Ok(Request::Get {
                canonical: String::deserialize_from(reader)?,
            }),
            TAG_MGET => {
                let canonicals = Vec::<String>::deserialize_from(reader)?;
                if canonicals.is_empty() {
                    return Err(WireError::Corrupt(
                        "`mget` needs at least one canonical".to_owned(),
                    ));
                }
                Ok(Request::MultiGet { canonicals })
            }
            TAG_EXPLORE => {
                let points = Vec::<QueryPoint>::deserialize_from(reader)?;
                if points.is_empty() {
                    return Err(WireError::Corrupt(
                        "`explore` needs at least one point".to_owned(),
                    ));
                }
                Ok(Request::Explore { points })
            }
            TAG_MEXPLORE => {
                let points = Vec::<QueryPoint>::deserialize_from(reader)?;
                if points.is_empty() {
                    return Err(WireError::Corrupt(
                        "`mexplore` needs at least one point".to_owned(),
                    ));
                }
                Ok(Request::MultiExplore { points })
            }
            TAG_PUT => {
                let records = Vec::<PointRecord>::deserialize_from(reader)?;
                if records.is_empty() {
                    return Err(WireError::Corrupt(
                        "`put` needs at least one record".to_owned(),
                    ));
                }
                Ok(Request::Put { records })
            }
            TAG_PING => Ok(Request::Ping),
            TAG_STATS => Ok(Request::Stats),
            TAG_METRICS => Ok(Request::Metrics {
                prometheus: bool::deserialize_from(reader)?,
            }),
            TAG_TRACE => {
                let id = String::deserialize_from(reader)?;
                if !valid_trace_id(&id) {
                    return Err(WireError::Corrupt(format!("illegal trace id {id:?}")));
                }
                Ok(Request::Trace { id })
            }
            TAG_SERIES => {
                let last = u64::deserialize_from(reader)?;
                let window_us = u64::deserialize_from(reader)?;
                if (last == 0) == (window_us == 0) {
                    return Err(WireError::Corrupt(
                        "`series` needs exactly one of `last` or `window_us`, non-zero".to_owned(),
                    ));
                }
                Ok(Request::Series { last, window_us })
            }
            TAG_DIGEST => Ok(Request::Digest),
            TAG_SCAN => {
                let shard = u64::deserialize_from(reader)?;
                let offset = u64::deserialize_from(reader)?;
                let limit = u64::deserialize_from(reader)?;
                if limit == 0 {
                    return Err(WireError::Corrupt(
                        "`scan` limit must be at least 1".to_owned(),
                    ));
                }
                Ok(Request::Scan {
                    shard,
                    offset,
                    limit,
                })
            }
            TAG_SHUTDOWN => Ok(Request::Shutdown),
            other => Err(WireError::Corrupt(format!(
                "unknown request tag {other:#04x}"
            ))),
        }
    }
}

impl WireSerde for PointOutcome {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        match self {
            PointOutcome::Answered { record, hit } => {
                0u8.serialize_into(out)?;
                hit.serialize_into(out)?;
                record.serialize_into(out)
            }
            PointOutcome::Failed { error } => {
                1u8.serialize_into(out)?;
                write_str(out, error)
            }
        }
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        match u8::deserialize_from(reader)? {
            0 => Ok(PointOutcome::Answered {
                hit: bool::deserialize_from(reader)?,
                record: PointRecord::deserialize_from(reader)?,
            }),
            1 => Ok(PointOutcome::Failed {
                error: String::deserialize_from(reader)?,
            }),
            other => Err(WireError::Corrupt(format!(
                "unknown outcome tag {other:#04x}"
            ))),
        }
    }
}

impl WireSerde for OpStats {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        write_str(out, &self.op)?;
        self.count.serialize_into(out)?;
        self.p50_us.serialize_into(out)?;
        self.p99_us.serialize_into(out)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        Ok(Self {
            op: String::deserialize_from(reader)?,
            count: u64::deserialize_from(reader)?,
            p50_us: u64::deserialize_from(reader)?,
            p99_us: u64::deserialize_from(reader)?,
        })
    }
}

impl WireSerde for ServerStats {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        self.uptime_ms.serialize_into(out)?;
        self.uptime_secs.serialize_into(out)?;
        write_str(out, &self.version)?;
        self.connections.serialize_into(out)?;
        self.requests.serialize_into(out)?;
        self.hits.serialize_into(out)?;
        self.misses.serialize_into(out)?;
        self.evaluated.serialize_into(out)?;
        write_seq_len(out, self.shard_records.len())?;
        for &count in &self.shard_records {
            (count as u64).serialize_into(out)?;
        }
        self.ops.serialize_into(out)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let uptime_ms = u64::deserialize_from(reader)?;
        let uptime_secs = u64::deserialize_from(reader)?;
        let version = String::deserialize_from(reader)?;
        let connections = u64::deserialize_from(reader)?;
        let requests = u64::deserialize_from(reader)?;
        let hits = u64::deserialize_from(reader)?;
        let misses = u64::deserialize_from(reader)?;
        let evaluated = u64::deserialize_from(reader)?;
        let shard_records = Vec::<u64>::deserialize_from(reader)?
            .into_iter()
            .map(|count| count as usize)
            .collect();
        Ok(Self {
            uptime_ms,
            uptime_secs,
            version,
            connections,
            requests,
            hits,
            misses,
            evaluated,
            shard_records,
            ops: Vec::<OpStats>::deserialize_from(reader)?,
        })
    }
}

// `WireSerde` (from `srra_explore`) cannot be implemented for the foreign
// `MetricsSnapshot` (from `srra_obs`) — orphan rule — so the snapshot
// encoding lives in a pair of free functions.
fn write_snapshot(
    out: &mut impl std::io::Write,
    snapshot: &MetricsSnapshot,
) -> Result<(), WireError> {
    write_seq_len(out, snapshot.counters.len())?;
    for (name, count) in &snapshot.counters {
        write_str(out, name)?;
        count.serialize_into(out)?;
    }
    write_seq_len(out, snapshot.gauges.len())?;
    for (name, level) in &snapshot.gauges {
        write_str(out, name)?;
        level.serialize_into(out)?;
    }
    write_seq_len(out, snapshot.histograms.len())?;
    for (name, histogram) in &snapshot.histograms {
        write_str(out, name)?;
        histogram.buckets().to_vec().serialize_into(out)?;
        // Exemplars ride as a sparse (bucket index, trace id) list.
        let exemplars: Vec<(usize, &str)> = histogram
            .exemplars()
            .iter()
            .enumerate()
            .filter_map(|(index, id)| id.as_deref().map(|id| (index, id)))
            .collect();
        write_seq_len(out, exemplars.len())?;
        for (index, id) in exemplars {
            (index as u8).serialize_into(out)?;
            write_str(out, id)?;
        }
    }
    Ok(())
}

fn read_metric_name(reader: &mut impl Read) -> Result<String, WireError> {
    let name = String::deserialize_from(reader)?;
    if !valid_metric_name(&name) {
        return Err(WireError::Corrupt(format!("illegal metric name {name:?}")));
    }
    Ok(name)
}

fn read_snapshot(reader: &mut impl Read) -> Result<MetricsSnapshot, WireError> {
    let mut snapshot = MetricsSnapshot::default();
    let counters = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "counters")?;
    for _ in 0..counters {
        let name = read_metric_name(reader)?;
        snapshot
            .counters
            .push((name, u64::deserialize_from(reader)?));
    }
    let gauges = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "gauges")?;
    for _ in 0..gauges {
        let name = read_metric_name(reader)?;
        snapshot.gauges.push((name, i64::deserialize_from(reader)?));
    }
    let histograms = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "histograms")?;
    for _ in 0..histograms {
        let name = read_metric_name(reader)?;
        let buckets = Vec::<u64>::deserialize_from(reader)?;
        let mut histogram = HistogramSnapshot::from_buckets(&buckets).ok_or_else(|| {
            WireError::Corrupt(format!("histogram `{name}` carries too many buckets"))
        })?;
        let exemplars = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "exemplars")?;
        for _ in 0..exemplars {
            let index = u8::deserialize_from(reader)? as usize;
            let id = String::deserialize_from(reader)?;
            // Out-of-range indices are ignored, as in the JSON decoding.
            histogram.set_exemplar(index, id);
        }
        snapshot.histograms.push((name, histogram));
    }
    Ok(snapshot)
}

/// Encodes one [`Span`] (a foreign `srra_obs` type — orphan rule, same
/// pattern as the snapshot pair above).
fn write_span(out: &mut impl std::io::Write, span: &Span) -> Result<(), WireError> {
    write_str(out, &span.trace_id)?;
    span.span_id.serialize_into(out)?;
    span.parent_id.serialize_into(out)?;
    write_str(out, &span.name)?;
    span.start_us.serialize_into(out)?;
    span.dur_us.serialize_into(out)?;
    write_seq_len(out, span.annotations.len())?;
    for (key, value) in &span.annotations {
        write_str(out, key)?;
        write_str(out, value)?;
    }
    Ok(())
}

fn read_span(reader: &mut impl Read) -> Result<Span, WireError> {
    let trace_id = String::deserialize_from(reader)?;
    let span_id = u64::deserialize_from(reader)?;
    let parent_id = u64::deserialize_from(reader)?;
    let name = String::deserialize_from(reader)?;
    let start_us = u64::deserialize_from(reader)?;
    let dur_us = u64::deserialize_from(reader)?;
    let count = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "annotations")?;
    let mut annotations = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        annotations.push((
            String::deserialize_from(reader)?,
            String::deserialize_from(reader)?,
        ));
    }
    Ok(Span {
        trace_id,
        span_id,
        parent_id,
        name,
        start_us,
        dur_us,
        annotations,
    })
}

const RESP_FOUND: u8 = 1;
const RESP_NOT_FOUND: u8 = 2;
const RESP_MGOT: u8 = 3;
const RESP_EXPLORED: u8 = 4;
const RESP_MEXPLORED: u8 = 5;
const RESP_STORED: u8 = 6;
const RESP_PONG: u8 = 7;
const RESP_STATS: u8 = 8;
const RESP_METRICS: u8 = 9;
const RESP_METRICS_TEXT: u8 = 10;
const RESP_SHUTTING_DOWN: u8 = 11;
const RESP_ERROR: u8 = 12;
const RESP_TRACED: u8 = 13;
const RESP_DIGESTS: u8 = 14;
const RESP_SCANNED: u8 = 15;
const RESP_SERIES: u8 = 16;
const RESP_DELTA: u8 = 17;

impl WireSerde for ShardDigest {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        self.records.serialize_into(out)?;
        self.fold.serialize_into(out)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        Ok(Self {
            records: u64::deserialize_from(reader)?,
            fold: u64::deserialize_from(reader)?,
        })
    }
}

impl WireSerde for Response {
    fn serialize_into(&self, out: &mut impl std::io::Write) -> Result<(), WireError> {
        match self {
            Response::Found { record } => {
                RESP_FOUND.serialize_into(out)?;
                record.serialize_into(out)
            }
            Response::NotFound => RESP_NOT_FOUND.serialize_into(out),
            Response::MultiGot { records } => {
                RESP_MGOT.serialize_into(out)?;
                records.serialize_into(out)
            }
            Response::Explored {
                records,
                hits,
                evaluated,
            } => {
                RESP_EXPLORED.serialize_into(out)?;
                records.serialize_into(out)?;
                hits.serialize_into(out)?;
                evaluated.serialize_into(out)
            }
            Response::MultiExplored {
                outcomes,
                hits,
                evaluated,
            } => {
                RESP_MEXPLORED.serialize_into(out)?;
                outcomes.serialize_into(out)?;
                hits.serialize_into(out)?;
                evaluated.serialize_into(out)
            }
            Response::Stored { stored } => {
                RESP_STORED.serialize_into(out)?;
                stored.serialize_into(out)
            }
            Response::Pong => RESP_PONG.serialize_into(out),
            Response::Stats(stats) => {
                RESP_STATS.serialize_into(out)?;
                stats.serialize_into(out)
            }
            Response::Metrics(snapshot) => {
                RESP_METRICS.serialize_into(out)?;
                write_snapshot(out, snapshot)
            }
            Response::MetricsText { text } => {
                RESP_METRICS_TEXT.serialize_into(out)?;
                write_str(out, text)
            }
            Response::Traced { spans } => {
                RESP_TRACED.serialize_into(out)?;
                write_seq_len(out, spans.len())?;
                for span in spans {
                    write_span(out, span)?;
                }
                Ok(())
            }
            Response::Series { samples } => {
                RESP_SERIES.serialize_into(out)?;
                write_seq_len(out, samples.len())?;
                for sample in samples {
                    sample.at_us.serialize_into(out)?;
                    write_snapshot(out, &sample.metrics)?;
                }
                Ok(())
            }
            Response::SeriesDelta { delta } => {
                RESP_DELTA.serialize_into(out)?;
                delta.from_us.serialize_into(out)?;
                delta.to_us.serialize_into(out)?;
                write_snapshot(out, &delta.diff)
            }
            Response::Digests { digests } => {
                RESP_DIGESTS.serialize_into(out)?;
                digests.serialize_into(out)
            }
            Response::Scanned { canonicals, done } => {
                RESP_SCANNED.serialize_into(out)?;
                canonicals.serialize_into(out)?;
                done.serialize_into(out)
            }
            Response::ShuttingDown => RESP_SHUTTING_DOWN.serialize_into(out),
            Response::Error { message } => {
                RESP_ERROR.serialize_into(out)?;
                write_str(out, message)
            }
        }
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        match u8::deserialize_from(reader)? {
            RESP_FOUND => Ok(Response::Found {
                record: PointRecord::deserialize_from(reader)?,
            }),
            RESP_NOT_FOUND => Ok(Response::NotFound),
            RESP_MGOT => Ok(Response::MultiGot {
                records: Vec::<Option<PointRecord>>::deserialize_from(reader)?,
            }),
            RESP_EXPLORED => Ok(Response::Explored {
                records: Vec::<PointRecord>::deserialize_from(reader)?,
                hits: u64::deserialize_from(reader)?,
                evaluated: u64::deserialize_from(reader)?,
            }),
            RESP_MEXPLORED => Ok(Response::MultiExplored {
                outcomes: Vec::<PointOutcome>::deserialize_from(reader)?,
                hits: u64::deserialize_from(reader)?,
                evaluated: u64::deserialize_from(reader)?,
            }),
            RESP_STORED => Ok(Response::Stored {
                stored: u64::deserialize_from(reader)?,
            }),
            RESP_PONG => Ok(Response::Pong),
            RESP_STATS => Ok(Response::Stats(ServerStats::deserialize_from(reader)?)),
            RESP_METRICS => Ok(Response::Metrics(read_snapshot(reader)?)),
            RESP_METRICS_TEXT => Ok(Response::MetricsText {
                text: String::deserialize_from(reader)?,
            }),
            RESP_TRACED => {
                let count = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "spans")?;
                let mut spans = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    spans.push(read_span(reader)?);
                }
                Ok(Response::Traced { spans })
            }
            RESP_SERIES => {
                let count = read_len(reader, srra_explore::codec::MAX_SEQ_LEN, "series")?;
                let mut samples = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    samples.push(SeriesSample {
                        at_us: u64::deserialize_from(reader)?,
                        metrics: read_snapshot(reader)?,
                    });
                }
                Ok(Response::Series { samples })
            }
            RESP_DELTA => Ok(Response::SeriesDelta {
                delta: SnapshotDelta {
                    from_us: u64::deserialize_from(reader)?,
                    to_us: u64::deserialize_from(reader)?,
                    diff: read_snapshot(reader)?,
                },
            }),
            RESP_DIGESTS => Ok(Response::Digests {
                digests: Vec::<ShardDigest>::deserialize_from(reader)?,
            }),
            RESP_SCANNED => Ok(Response::Scanned {
                canonicals: Vec::<String>::deserialize_from(reader)?,
                done: bool::deserialize_from(reader)?,
            }),
            RESP_SHUTTING_DOWN => Ok(Response::ShuttingDown),
            RESP_ERROR => Ok(Response::Error {
                message: String::deserialize_from(reader)?,
            }),
            other => Err(WireError::Corrupt(format!(
                "unknown response tag {other:#04x}"
            ))),
        }
    }
}

/// Whether `buffer` (a read buffer already known to start a request) holds at
/// least one *complete* request of either codec — the flush-deferral test of
/// the pipelined server loop, generalised to mixed codecs.
pub(crate) fn holds_complete_request(buffer: &[u8]) -> bool {
    let mut rest = buffer;
    // Skip leading blank bytes (the JSON path ignores blank lines).
    while let [b, tail @ ..] = rest {
        if b.is_ascii_whitespace() {
            rest = tail;
        } else {
            break;
        }
    }
    match rest.first() {
        None => false,
        Some(&BINARY_MAGIC) => {
            if rest.len() < 5 {
                return false;
            }
            let len = u32::from_le_bytes([rest[1], rest[2], rest[3], rest[4]]) as usize;
            // A malformed length still counts as "something to answer
            // immediately" — the server will reply and close without waiting
            // for more bytes.
            len == 0 || len > MAX_FRAME_LEN || rest.len() >= 5 + len
        }
        Some(_) => rest.contains(&b'\n'),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_obs::Registry;

    fn sample_record() -> PointRecord {
        PointRecord {
            key: 0x1234_5678_9abc_def0,
            canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560".to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 17,
            total_cycles: 4242,
            compute_cycles: 4000,
            memory_cycles: 200,
            transfer_cycles: 42,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:16 \"b\":1".to_owned(),
        }
    }

    fn sample_stats() -> ServerStats {
        ServerStats {
            uptime_ms: 1234,
            uptime_secs: 1,
            version: "0.1.0".to_owned(),
            connections: 5,
            requests: 17,
            hits: 10,
            misses: 7,
            evaluated: 7,
            shard_records: vec![3, 0, 4, 1],
            ops: vec![OpStats {
                op: "get".to_owned(),
                count: 9,
                p50_us: 63,
                p99_us: 255,
            }],
        }
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = Registry::new();
        registry.counter("serve_requests_total").add(7);
        registry.gauge("serve_open_connections").set(-1);
        let latency = registry.histogram("serve_op_get_latency_us");
        latency.record_micros(40);
        latency.record_micros(5_000);
        latency.record_traced(std::time::Duration::from_micros(90), "sweep-7.a");
        registry.snapshot()
    }

    fn every_request() -> Vec<Request> {
        vec![
            Request::Get {
                canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560"
                    .to_owned(),
            },
            Request::Get {
                canonical: "nasty \"quoted\" \\ \n canonical — ünïcødé".to_owned(),
            },
            Request::MultiGet {
                canonicals: vec!["a".to_owned(), String::new(), "c".to_owned()],
            },
            Request::Explore {
                points: vec![
                    QueryPoint::new("fir", "cpa", 32),
                    QueryPoint {
                        kernel: "mat".to_owned(),
                        algorithm: "FR-RA".to_owned(),
                        budget: u64::MAX,
                        ram_latency: 0,
                        device: "xcv300".to_owned(),
                    },
                ],
            },
            Request::MultiExplore {
                points: vec![QueryPoint::new("mat", "fr", 16)],
            },
            Request::Put {
                records: vec![sample_record(), sample_record()],
            },
            Request::Ping,
            Request::Stats,
            Request::Metrics { prometheus: false },
            Request::Metrics { prometheus: true },
            Request::Trace {
                id: "sweep-7.a".to_owned(),
            },
            Request::Series {
                last: 16,
                window_us: 0,
            },
            Request::Series {
                last: 0,
                window_us: 60_000_000,
            },
            Request::Digest,
            Request::Scan {
                shard: 3,
                offset: 128,
                limit: 64,
            },
            Request::Shutdown,
        ]
    }

    fn every_response() -> Vec<Response> {
        let record = sample_record();
        let mut extreme = sample_record();
        extreme.clock_period_ns = f64::NAN;
        extreme.execution_time_us = f64::INFINITY;
        vec![
            Response::Found {
                record: record.clone(),
            },
            Response::Found { record: extreme },
            Response::NotFound,
            Response::MultiGot {
                records: vec![Some(record.clone()), None, Some(record.clone())],
            },
            Response::MultiGot {
                records: vec![None],
            },
            Response::Explored {
                records: vec![record.clone(), record.clone()],
                hits: 1,
                evaluated: 1,
            },
            Response::MultiExplored {
                outcomes: vec![
                    PointOutcome::Answered {
                        record: record.clone(),
                        hit: true,
                    },
                    PointOutcome::Failed {
                        error: "unknown kernel `nope`".to_owned(),
                    },
                    PointOutcome::Answered { record, hit: false },
                ],
                hits: 1,
                evaluated: 1,
            },
            Response::Stored { stored: 2 },
            Response::Pong,
            Response::Stats(sample_stats()),
            Response::Metrics(sample_snapshot()),
            Response::MetricsText {
                text: "# TYPE serve_requests_total counter\nserve_requests_total 7\n".to_owned(),
            },
            Response::Traced {
                spans: vec![
                    Span {
                        trace_id: "sweep-7.a".to_owned(),
                        span_id: 11,
                        parent_id: 0,
                        name: "explore".to_owned(),
                        start_us: 100,
                        dur_us: 900,
                        annotations: vec![("points".to_owned(), "4".to_owned())],
                    },
                    Span {
                        trace_id: "sweep-7.a".to_owned(),
                        span_id: 12,
                        parent_id: 11,
                        name: "engine.cost_model".to_owned(),
                        start_us: 400,
                        dur_us: 300,
                        annotations: Vec::new(),
                    },
                ],
            },
            Response::Traced { spans: Vec::new() },
            Response::Series {
                samples: vec![
                    SeriesSample {
                        at_us: 1_000_000,
                        metrics: sample_snapshot(),
                    },
                    SeriesSample {
                        at_us: 2_000_000,
                        metrics: sample_snapshot(),
                    },
                ],
            },
            Response::Series {
                samples: Vec::new(),
            },
            Response::SeriesDelta {
                delta: SnapshotDelta {
                    from_us: 1_000_000,
                    to_us: 2_000_000,
                    diff: sample_snapshot(),
                },
            },
            Response::Digests {
                digests: vec![
                    ShardDigest {
                        records: 3,
                        fold: 0x1234_5678_9abc_def0,
                    },
                    ShardDigest {
                        records: 0,
                        fold: 0,
                    },
                ],
            },
            Response::Scanned {
                canonicals: vec!["kernel=fir;algo=CPA-RA;budget=32".to_owned()],
                done: false,
            },
            Response::Scanned {
                canonicals: Vec::new(),
                done: true,
            },
            Response::ShuttingDown,
            Response::Error {
                message: "unknown kernel `nope`".to_owned(),
            },
        ]
    }

    fn frame_round_trip<T>(
        value: &T,
        trace: Option<&str>,
        encode: impl Fn(&mut Vec<u8>, Option<&str>, &T) -> Result<(), WireError>,
    ) -> (T, Option<String>)
    where
        T: WireSerde,
    {
        let mut wire = Vec::new();
        encode(&mut wire, trace, value).expect("encodes");
        let mut reader = wire.as_slice();
        let mut payload = Vec::new();
        read_frame(&mut reader, &mut payload).expect("frame reads");
        assert!(reader.is_empty(), "frame consumed exactly");
        decode_payload(&payload).expect("payload decodes")
    }

    #[test]
    fn every_request_variant_round_trips() {
        for request in every_request() {
            let (back, trace) = frame_round_trip(&request, None, encode_request_frame);
            assert_eq!(back, request);
            assert_eq!(trace, None);
            let (back, trace) = frame_round_trip(&request, Some("t-1.a"), encode_request_frame);
            assert_eq!(back, request);
            assert_eq!(trace.as_deref(), Some("t-1.a"));
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        for response in every_response() {
            let (back, trace) = frame_round_trip(&response, Some("x"), encode_response_frame);
            assert_eq!(trace.as_deref(), Some("x"));
            // NaN != NaN under PartialEq: compare via the JSON rendering,
            // which is bit-faithful for floats.
            assert_eq!(back.render(), response.render());
        }
    }

    #[test]
    fn borrowed_encoders_match_the_owned_request_encoding() {
        let canonicals = vec!["a".to_owned(), "b".to_owned()];
        let points = vec![QueryPoint::new("fir", "cpa", 32)];
        let records = vec![sample_record()];
        let cases: Vec<(Request, Vec<u8>)> = {
            let mut cases = Vec::new();
            let mut buf = Vec::new();
            encode_get_frame(&mut buf, None, "a").unwrap();
            cases.push((
                Request::Get {
                    canonical: "a".to_owned(),
                },
                buf.clone(),
            ));
            buf.clear();
            encode_mget_frame(&mut buf, None, &canonicals).unwrap();
            cases.push((
                Request::MultiGet {
                    canonicals: canonicals.clone(),
                },
                buf.clone(),
            ));
            buf.clear();
            encode_points_frame(&mut buf, None, false, &points).unwrap();
            cases.push((
                Request::Explore {
                    points: points.clone(),
                },
                buf.clone(),
            ));
            buf.clear();
            encode_points_frame(&mut buf, None, true, &points).unwrap();
            cases.push((
                Request::MultiExplore {
                    points: points.clone(),
                },
                buf.clone(),
            ));
            buf.clear();
            encode_put_frame(&mut buf, None, &records).unwrap();
            cases.push((
                Request::Put {
                    records: records.clone(),
                },
                buf.clone(),
            ));
            cases
        };
        for (request, borrowed) in cases {
            let mut owned = Vec::new();
            encode_request_frame(&mut owned, None, &request).unwrap();
            assert_eq!(borrowed, owned, "{request:?}");
        }
    }

    #[test]
    fn truncated_and_oversized_frames_are_rejected() {
        let mut wire = Vec::new();
        encode_request_frame(&mut wire, None, &Request::Ping).unwrap();
        // Truncate mid-payload.
        for cut in [1, 3, wire.len() - 1] {
            let mut reader = &wire[..cut];
            let mut payload = Vec::new();
            assert!(matches!(
                read_frame(&mut reader, &mut payload),
                Err(FrameError::Io(_))
            ));
        }
        // Zero-length header.
        let zero = [BINARY_MAGIC, 0, 0, 0, 0];
        let mut reader = zero.as_slice();
        assert!(matches!(
            read_frame(&mut reader, &mut Vec::new()),
            Err(FrameError::BadLength(0))
        ));
        // Oversized header.
        let mut oversized = vec![BINARY_MAGIC];
        oversized.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = oversized.as_slice();
        assert!(matches!(
            read_frame(&mut reader, &mut Vec::new()),
            Err(FrameError::BadLength(_))
        ));
    }

    #[test]
    fn corrupt_payloads_are_rejected_without_reading_past_the_frame() {
        // Unknown tag.
        let payload = [0u8, 0xEE];
        assert!(matches!(
            decode_payload::<Request>(&payload),
            Err(WireError::Corrupt(_))
        ));
        // Trailing garbage after a valid body.
        let mut wire = Vec::new();
        encode_request_frame(&mut wire, None, &Request::Ping).unwrap();
        let mut payload = wire[5..].to_vec();
        payload.push(0);
        assert!(decode_payload::<Request>(&payload).is_err());
        // Empty batches are rejected like their JSON twins.
        let mut body = vec![0u8, TAG_MGET];
        body.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_payload::<Request>(&body),
            Err(WireError::Corrupt(_))
        ));
        // Bad trace bytes.
        let payload = [3u8, b'a', b' ', b'b', TAG_PING];
        assert!(matches!(
            decode_payload::<Request>(&payload),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn cross_codec_equivalence_binary_and_json_agree() {
        // A reply decoded from the binary codec carries the same record a
        // JSON reply parses to, byte-identical when re-rendered as JSON.
        let record = sample_record();
        let response = Response::Found {
            record: record.clone(),
        };
        let json_line = response.render();
        let from_json = Response::parse(&json_line).unwrap();

        let mut wire = Vec::new();
        encode_response_frame(&mut wire, None, &response).unwrap();
        let mut reader = wire.as_slice();
        let mut payload = Vec::new();
        read_frame(&mut reader, &mut payload).unwrap();
        let (from_binary, _) = decode_payload::<Response>(&payload).unwrap();

        assert_eq!(from_binary, from_json);
        assert_eq!(
            from_binary.render(),
            json_line,
            "re-render is byte-identical"
        );
        let Response::Found { record: back } = from_binary else {
            panic!("wrong variant");
        };
        assert_eq!(back.to_json_line(), record.to_json_line());
    }

    #[test]
    fn magic_byte_can_never_open_a_json_request() {
        assert_ne!(BINARY_MAGIC, b'{');
        assert!(!BINARY_MAGIC.is_ascii_whitespace());
        for request in every_request() {
            let line = request.render();
            assert_ne!(line.as_bytes()[0], BINARY_MAGIC, "{line}");
        }
    }

    #[test]
    fn complete_request_detection_handles_both_codecs() {
        assert!(!holds_complete_request(b""));
        assert!(!holds_complete_request(b"   \n  "));
        assert!(!holds_complete_request(b"{\"op\":\"ping\"}"));
        assert!(holds_complete_request(b"{\"op\":\"ping\"}\n"));
        assert!(holds_complete_request(b"  \n{\"op\":\"ping\"}\n"));

        let mut wire = Vec::new();
        encode_request_frame(&mut wire, None, &Request::Ping).unwrap();
        assert!(holds_complete_request(&wire));
        assert!(!holds_complete_request(&wire[..wire.len() - 1]));
        assert!(!holds_complete_request(&wire[..3]));
        // A malformed length is "complete": the server answers and closes.
        assert!(holds_complete_request(&[BINARY_MAGIC, 0, 0, 0, 0]));
        assert!(holds_complete_request(&[BINARY_MAGIC, 255, 255, 255, 255]));
    }
}
