//! The acceptance test for the serving subsystem: concurrent clients issuing
//! a mixed hit/miss workload against a live server receive records
//! byte-identical to single-threaded evaluation, every miss is evaluated
//! exactly once (guarded by the process-wide `srra_reuse::analysis_runs()`
//! counter *and* the server's `evaluated` counter), and a warm restart
//! answers everything from the shards.

use std::collections::HashMap;
use std::path::PathBuf;

use srra_core::AllocatorRegistry;
use srra_explore::{evaluate_point, DesignPoint, PointRecord};
use srra_fpga::DeviceModel;
use srra_kernels::paper_suite;
use srra_serve::{Client, QueryPoint, Server, ServerConfig};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-serve-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The workload: two kernels x two algorithms x three budgets = 12 distinct
/// points, each requested by every client.
fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat"] {
        for algo in ["cpa", "fr"] {
            for budget in [16, 32, 64] {
                let mut point = QueryPoint::new(kernel, algo, budget);
                point.ram_latency = 2;
                points.push(point);
            }
        }
    }
    points
}

/// Single-threaded ground truth, computed without any server or store.
fn ground_truth(points: &[QueryPoint]) -> HashMap<String, PointRecord> {
    let kernels: HashMap<String, _> = paper_suite()
        .into_iter()
        .map(|spec| (spec.kernel.name().to_owned(), spec.compiled()))
        .collect();
    let mut truth = HashMap::new();
    for point in points {
        let allocator = AllocatorRegistry::global()
            .get(&point.algorithm)
            .expect("workload algorithms are registered");
        let design_point = DesignPoint {
            kernel_index: 0,
            kernel: point.kernel.clone(),
            allocator,
            budget: point.budget,
            ram_latency: point.ram_latency,
            device: DeviceModel::xcv1000(),
        };
        let record = evaluate_point(&kernels[&point.kernel], &design_point);
        truth.insert(record.canonical.clone(), record);
    }
    truth
}

#[test]
fn concurrent_mixed_workload_is_correct_and_evaluates_each_miss_once() {
    const CLIENTS: usize = 6;

    let dir = scratch_dir("mixed");
    let points = workload();
    let truth = ground_truth(&points);
    let distinct = truth.len();
    assert_eq!(distinct, 12);

    let server = Server::bind(&ServerConfig::ephemeral(dir.clone())).expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    // The ground-truth pass above already compiled its own CompiledKernels,
    // so the counter below measures only the server's analyses.
    let analyses_before = srra_reuse::analysis_runs();

    // Fan out: every client requests the full point set, half of them point
    // by point (many small requests), half as one batch — so the same misses
    // race against each other across clients and request shapes.
    let results: Vec<Vec<PointRecord>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_index in 0..CLIENTS {
            let addr = addr.clone();
            let points = points.clone();
            handles.push(scope.spawn(move || {
                let client = Client::new(addr);
                if client_index % 2 == 0 {
                    let reply = client.explore(&points).expect("batch explore");
                    reply.records
                } else {
                    points
                        .iter()
                        .map(|point| {
                            client
                                .explore(std::slice::from_ref(point))
                                .expect("single-point explore")
                                .records
                                .remove(0)
                        })
                        .collect()
                }
            }));
        }
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread"))
            .collect()
    });

    // Every client got one record per requested point, byte-identical to the
    // single-threaded ground truth (compare the rendered JSONL line so f64
    // bits count too).
    for records in &results {
        assert_eq!(records.len(), points.len());
        for record in records {
            let expected = truth
                .get(&record.canonical)
                .expect("record matches a requested point");
            assert_eq!(
                record.to_json_line(),
                expected.to_json_line(),
                "served record differs from single-threaded evaluation"
            );
        }
    }

    // Exactly-once evaluation, two independent guards: the reuse-analysis
    // counter (one analysis per kernel, no matter how many clients raced) and
    // the server's own evaluation counter (one evaluation per distinct point).
    let analyses_by_server = srra_reuse::analysis_runs() - analyses_before;
    assert_eq!(
        analyses_by_server, 2,
        "the server must analyse each of the two kernels exactly once"
    );
    let client = Client::new(addr.clone());
    let stats = client.stats().expect("stats");
    assert_eq!(
        stats.evaluated, distinct as u64,
        "each distinct miss is evaluated exactly once across all clients"
    );
    assert_eq!(
        stats.hits,
        (CLIENTS * points.len()) as u64 - stats.evaluated,
        "every other lookup is answered from the shards"
    );
    assert_eq!(stats.records(), distinct);
    assert_eq!(stats.shard_records.len(), 4);

    client.shutdown().expect("graceful shutdown");
    let report = handle.join().expect("server thread");
    assert_eq!(report.stats.evaluated, distinct as u64);

    // The shards are non-empty on disk (binary segment files, scanned
    // record by record) and a *fresh* server over the same directory
    // answers the whole workload without a single evaluation.
    let on_disk: usize = (0..4)
        .map(|index| {
            let path = dir.join(format!("shard-{index:03}.seg"));
            let shard = srra_explore::SegmentStore::open(&path).expect("segment shard opens");
            assert_eq!(shard.torn_records(), 0);
            shard.segment_records()
        })
        .sum();
    assert_eq!(on_disk, distinct, "all evaluated records persisted");

    let warm = Server::bind(&ServerConfig {
        workers: 2,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("warm server binds");
    let warm_addr = warm.local_addr().to_string();
    let warm_handle = std::thread::spawn(move || warm.run().expect("warm server runs"));
    let warm_client = Client::new(warm_addr);
    let reply = warm_client.explore(&points).expect("warm explore");
    assert_eq!(reply.evaluated, 0, "warm shards answer everything");
    assert_eq!(reply.hits, points.len() as u64);
    for record in &reply.records {
        assert_eq!(
            record.to_json_line(),
            truth[&record.canonical].to_json_line()
        );
    }
    warm_client.shutdown().expect("warm shutdown");
    warm_handle.join().expect("warm server thread");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn get_round_trip_and_error_paths_over_the_wire() {
    let dir = scratch_dir("get");
    let server = Server::bind(&ServerConfig::ephemeral(&dir)).expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    let client = Client::new(addr);

    let point = QueryPoint::new("fir", "cpa", 32);
    let canonical = srra_serve::canonical_for(&point).unwrap();

    // Miss before, hit after, byte-identical record through `get`.
    assert_eq!(client.get(&canonical).expect("get"), None);
    let reply = client
        .explore(std::slice::from_ref(&point))
        .expect("explore");
    let served = client
        .get(&canonical)
        .expect("get after explore")
        .expect("now cached");
    assert_eq!(served.to_json_line(), reply.records[0].to_json_line());

    // Server-side errors come back as error responses, not broken streams.
    let mut unknown = QueryPoint::new("nope", "cpa", 32);
    let err = client.explore(std::slice::from_ref(&unknown)).unwrap_err();
    assert!(err.to_string().contains("unknown kernel"));
    unknown = QueryPoint::new("fir", "zzz", 32);
    let err = client.explore(std::slice::from_ref(&unknown)).unwrap_err();
    assert!(err.to_string().contains("unknown algorithm"));

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}
