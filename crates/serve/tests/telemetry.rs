//! End-to-end telemetry over a live socket: trace ids round-trip
//! client → server → reply, the `metrics` op answers structured JSON and
//! Prometheus text with non-zero counters after a mixed workload, and the
//! slow-query threshold turns requests into `serve_slow_queries_total`.

use std::path::PathBuf;

use srra_serve::{Connection, QueryPoint, Server, ServerConfig};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-serve-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn traces_round_trip_and_metrics_expose_the_workload() {
    let dir = scratch_dir("trace");
    let server = Server::bind(&ServerConfig {
        shards: 2,
        workers: 2,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut connection = Connection::connect(&addr).expect("connect");

    // Untraced requests echo nothing.
    connection.ping().expect("ping");
    assert_eq!(connection.last_trace(), None);

    // A traced mixed get/mexplore workload: every reply echoes the id that
    // was stamped on its request, across op shapes and the reconnecting
    // round-trip path.
    connection
        .set_trace(Some("req-alpha.1"))
        .expect("valid trace id");
    let miss = connection
        .get("kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560")
        .expect("get");
    assert!(miss.is_none(), "cold shard misses");
    assert_eq!(connection.last_trace(), Some("req-alpha.1"));

    let points = vec![
        QueryPoint::new("fir", "cpa", 32),
        QueryPoint::new("fir", "fr", 32),
    ];
    connection.set_trace(Some("req-alpha.2")).expect("valid");
    let explored = connection.mexplore(&points).expect("mexplore");
    assert_eq!(explored.outcomes.len(), 2);
    assert_eq!(explored.evaluated, 2);
    assert_eq!(connection.last_trace(), Some("req-alpha.2"));

    // Clearing the trace stops the stamping (and therefore the echo).
    connection.set_trace(None).expect("clearing is fine");
    let hit = connection
        .get("kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560")
        .expect("warm get");
    assert!(hit.is_some(), "evaluated above");
    assert_eq!(connection.last_trace(), None);

    // Bad ids are rejected client-side, before any bytes move.
    assert!(connection.set_trace(Some("")).is_err());
    assert!(connection.set_trace(Some("has space")).is_err());
    assert!(connection.set_trace(Some(&"x".repeat(65))).is_err());

    // The structured metrics snapshot reflects the workload above.
    let snapshot = connection.metrics().expect("metrics");
    let counter = |name: &str| snapshot.counter(name).unwrap_or(0);
    assert!(counter("serve_requests_total") >= 4, "{snapshot:?}");
    assert!(counter("serve_op_get_total") >= 2);
    assert!(counter("serve_op_mexplore_total") >= 1);
    assert!(counter("serve_traced_requests_total") >= 2);
    assert!(counter("serve_hits_total") >= 1);
    assert!(counter("serve_misses_total") >= 1);
    assert!(counter("serve_evaluated_total") >= 2);
    // Global instruments flow through the same scrape (the in-process server
    // shares this process's global registry, so only non-zero is asserted).
    assert!(counter("explore_evaluations_total") >= 1);
    assert!(counter("store_shard_reads_total") >= 1);
    assert!(counter("client_connects_total") >= 1);
    assert!(
        snapshot.gauge("serve_open_connections").unwrap_or(0) >= 1,
        "this keep-alive connection is open"
    );
    let get_latency = snapshot
        .histogram("serve_op_get_latency_us")
        .expect("get latency histogram present");
    assert!(get_latency.count() >= 2);
    assert!(get_latency.quantile(0.5) <= get_latency.quantile(0.99));

    // The Prometheus exposition is well-formed text over the same data.
    let text = connection.metrics_text().expect("metrics --prom");
    assert!(
        text.contains("# TYPE serve_requests_total counter"),
        "{text}"
    );
    assert!(text.contains("# TYPE serve_open_connections gauge"));
    assert!(text.contains("# TYPE serve_op_get_latency_us histogram"));
    assert!(text.contains("serve_op_get_latency_us_bucket{le=\"+Inf\"}"));
    assert!(text.contains("serve_op_get_latency_us_count"));
    assert!(
        !text.contains("serve_requests_total 0\n"),
        "the workload counters are non-zero: {text}"
    );

    connection.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn trace_op_round_trips_spans_over_the_binary_codec() {
    let dir = scratch_dir("binary-trace");
    let server = Server::bind(&ServerConfig {
        shards: 2,
        workers: 2,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut connection = Connection::connect_binary(&addr).expect("connect binary");
    connection.set_trace(Some("bin-sweep.1")).expect("valid");
    let explored = connection
        .explore(&[QueryPoint::new("fir", "cpa", 32)])
        .expect("explore");
    assert_eq!(explored.evaluated, 1);
    assert_eq!(connection.last_trace(), Some("bin-sweep.1"));

    // The flight recorder answers the whole span tree through the binary
    // `trace` op: one root request span, stage children parented under it.
    connection.set_trace(None).expect("clear");
    let spans = connection.trace_spans("bin-sweep.1").expect("trace op");
    let root = spans
        .iter()
        .find(|span| span.parent_id == 0)
        .expect("root span");
    assert_eq!(root.name, "explore");
    assert_eq!(root.trace_id, "bin-sweep.1");
    let names: Vec<&str> = spans.iter().map(|span| span.name.as_str()).collect();
    for stage in [
        "parse",
        "shard.lock_wait",
        "inflight.claim",
        "engine.allocation",
        "engine.cost_model",
        "render",
    ] {
        assert!(names.contains(&stage), "missing {stage}: {names:?}");
    }
    assert!(
        spans
            .iter()
            .all(|span| span.parent_id == 0 || span.parent_id == root.span_id),
        "single-level tree: every stage hangs off the root: {spans:?}"
    );
    let child_sum: u64 = spans
        .iter()
        .filter(|span| span.parent_id == root.span_id)
        .map(|span| span.dur_us)
        .sum();
    assert!(
        child_sum <= root.dur_us,
        "stage children are disjoint sub-intervals of the request: \
         {child_sum} > {}",
        root.dur_us
    );
    let parse = spans
        .iter()
        .find(|span| span.name == "parse")
        .expect("parse");
    assert_eq!(
        parse.annotations,
        [("codec".to_owned(), "binary".to_owned())]
    );

    // An unknown id answers an empty list, not an error.
    assert!(connection
        .trace_spans("never-sent")
        .expect("empty")
        .is_empty());

    // The traced request also left its id on the latency histogram bucket it
    // landed in — the Prometheus exposition renders it as an exemplar.
    let text = connection.metrics_text().expect("metrics --prom");
    assert!(text.contains("trace_id=\"bin-sweep.1\""), "{text}");

    connection.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn slow_query_threshold_counts_and_logs_slow_requests() {
    let dir = scratch_dir("slow");
    // A 0 µs threshold is off; 1 µs makes effectively every evaluating
    // request "slow", so the counter must move after one cold explore.
    let server = Server::bind(&ServerConfig {
        shards: 2,
        workers: 2,
        slow_query_us: 1,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut connection = Connection::connect(&addr).expect("connect");
    connection.set_trace(Some("slow-probe")).expect("valid");
    let explored = connection
        .mexplore(&[QueryPoint::new("mat", "cpa", 16)])
        .expect("mexplore");
    assert_eq!(explored.evaluated, 1);

    let snapshot = connection.metrics().expect("metrics");
    assert!(
        snapshot.counter("serve_slow_queries_total").unwrap_or(0) >= 1,
        "a cold evaluation takes well over 1 µs: {snapshot:?}"
    );

    // A slow traced request is pinned into the flight recorder's retained
    // set, so its span tree stays answerable after ring churn.
    assert!(
        snapshot.counter("serve_pinned_traces_total").unwrap_or(0) >= 1,
        "{snapshot:?}"
    );
    connection.set_trace(None).expect("clear");
    let spans = connection.trace_spans("slow-probe").expect("trace op");
    assert!(
        spans.iter().any(|span| span.name == "mexplore"),
        "the pinned trace answers its root span: {spans:?}"
    );

    connection.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn sampler_feeds_the_series_op_and_tight_slos_breach() {
    let dir = scratch_dir("series");
    let server = Server::bind(&ServerConfig {
        shards: 2,
        workers: 2,
        sample_interval_ms: 10,
        // Impossible to satisfy: any request at all breaches a 0% error
        // budget... so use a latency bound of 0-ish instead — every recorded
        // get latency is >= 0us, and a p99 < 1us over a busy window breaches.
        slos: vec!["serve_op_mexplore_latency_us p99 < 1us over 5s".to_owned()],
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));

    let mut connection = Connection::connect(&addr).expect("connect");
    // A cold mexplore records a latency far above 1us, arming the SLO.
    let explored = connection
        .mexplore(&[QueryPoint::new("fir", "cpa", 32)])
        .expect("mexplore");
    assert_eq!(explored.outcomes.len(), 1);
    // Keep traffic flowing while the sampler accumulates a few ticks.
    for _ in 0..10 {
        connection.ping().expect("ping");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let samples = connection.series_samples(64).expect("series");
    assert!(
        samples.len() >= 2,
        "a 10ms sampler produces many samples across 100ms: {}",
        samples.len()
    );
    assert!(
        samples
            .windows(2)
            .all(|pair| pair[0].at_us <= pair[1].at_us),
        "samples arrive oldest first"
    );

    // The trailing window covers the whole run: the request rate is positive
    // and the windowed request delta matches what this test sent.
    let delta = connection.series_delta(5_000_000).expect("series delta");
    assert!(delta.elapsed_us() > 0);
    let rate = delta.rate("serve_requests_total").expect("requests moved");
    assert!(rate > 0.0, "req/s across the window: {rate}");
    assert!(
        delta
            .quantile("serve_op_mexplore_latency_us", 0.99)
            .expect("windowed p99")
            >= 1,
        "the cold mexplore is far slower than 1us"
    );

    // The deliberately tight SLO breached on (at least) each armed tick.
    let metrics = connection.metrics().expect("metrics");
    assert!(
        metrics.counter("obs_slo_breaches_total").unwrap_or(0) >= 1,
        "{metrics:?}"
    );

    // The binary codec answers the same shapes.
    let mut binary = Connection::connect_binary(&addr).expect("binary connect");
    let samples_bin = binary.series_samples(4).expect("binary series");
    assert!(!samples_bin.is_empty() && samples_bin.len() <= 4);
    let delta_bin = binary.series_delta(5_000_000).expect("binary delta");
    assert!(delta_bin.rate("serve_requests_total").unwrap_or(0.0) > 0.0);

    // Window mode with an impossible window names the sampler knob.
    match connection.series_delta(1) {
        Err(srra_serve::ClientError::Server(message)) => {
            assert!(message.contains("sample-interval-ms"), "{message}");
        }
        other => panic!("expected a server error, got {other:?}"),
    }

    connection.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
