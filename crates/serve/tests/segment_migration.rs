//! Migration coverage for the binary segment shards: a legacy JSONL cache
//! directory re-hydrates unmodified, `compact` rewrites it to pure segment
//! form (deleting the JSONL files), a restart over the rewritten directory is
//! byte-identical, and a torn trailing segment record is truncated and
//! counted instead of panicking.

use std::io::Write;
use std::path::{Path, PathBuf};

use srra_explore::{fnv1a_64, PointRecord, SegmentStore};
use srra_serve::ShardedStore;

const SHARDS: usize = 2;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-seg-migrate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record_for(index: u64) -> PointRecord {
    let canonical = format!("kernel=fir;algo=CPA-RA;budget={index};latency=2;device=XCV1000");
    PointRecord {
        key: fnv1a_64(canonical.as_bytes()),
        canonical,
        kernel: "fir".to_owned(),
        algorithm: "CPA-RA".to_owned(),
        version: "v3".to_owned(),
        budget: index,
        ram_latency: 2,
        device: "XCV1000-BG560".to_owned(),
        feasible: true,
        fits: true,
        registers_used: index + 1,
        total_cycles: index * 1000,
        compute_cycles: index * 900,
        memory_cycles: index * 90,
        transfer_cycles: index * 10,
        clock_period_ns: index as f64 + 0.5,
        execution_time_us: index as f64 * 3.25,
        slices: index * 7,
        block_rams: index % 5,
        distribution: format!("a:{index} b:1"),
    }
}

/// Writes `records` as a legacy JSONL shard directory, routed like the
/// sharded store routes (`key % SHARDS`).
fn write_legacy_dir(dir: &Path, records: &[PointRecord]) {
    std::fs::create_dir_all(dir).unwrap();
    let mut shards: Vec<String> = vec![String::new(); SHARDS];
    for record in records {
        let shard = (record.key % SHARDS as u64) as usize;
        record.write_json_line(&mut shards[shard]);
        shards[shard].push('\n');
    }
    for (index, text) in shards.iter().enumerate() {
        std::fs::write(dir.join(format!("shard-{index:03}.jsonl")), text).unwrap();
    }
}

fn shard_files(dir: &Path, suffix: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("shard-") && name.ends_with(suffix))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn legacy_jsonl_dirs_rehydrate_compact_to_segments_and_restart_byte_identically() {
    const RECORDS: u64 = 32;
    let dir = scratch_dir("legacy");
    let records: Vec<PointRecord> = (0..RECORDS).map(record_for).collect();
    write_legacy_dir(&dir, &records);
    let legacy_before: Vec<Vec<u8>> = shard_files(&dir, ".jsonl")
        .iter()
        .map(|path| std::fs::read(path).unwrap())
        .collect();

    // An unmodified legacy directory opens and answers every record; reads
    // leave the JSONL files byte-identical (they are fallback, not rewritten
    // on open).
    {
        let store = ShardedStore::open(&dir, SHARDS).unwrap();
        for record in &records {
            let found = store
                .get_record(record.key, &record.canonical)
                .unwrap()
                .expect("legacy record resolves");
            assert_eq!(found.to_json_line(), record.to_json_line());
            // Duplicate puts dedupe against the legacy records too.
            assert!(!store.put_record(record).unwrap());
        }
        assert_eq!(
            store.shard_sizes().unwrap().iter().sum::<usize>(),
            RECORDS as usize
        );
    }
    let legacy_after: Vec<Vec<u8>> = shard_files(&dir, ".jsonl")
        .iter()
        .map(|path| std::fs::read(path).unwrap())
        .collect();
    assert_eq!(legacy_before, legacy_after, "open must not rewrite JSONL");

    // `compact` rewrites everything into pure segment form and removes the
    // legacy files.
    {
        let mut store = ShardedStore::open(&dir, SHARDS).unwrap();
        let outcome = store.compact().unwrap();
        assert_eq!(outcome.kept, RECORDS as usize);
        assert_eq!(outcome.duplicates_dropped, 0);
        for record in &records {
            let found = store
                .get_record(record.key, &record.canonical)
                .unwrap()
                .expect("compacted record resolves");
            assert_eq!(found.to_json_line(), record.to_json_line());
        }
    }
    assert!(
        shard_files(&dir, ".jsonl").is_empty(),
        "compact deletes the legacy JSONL shards"
    );
    let segments = shard_files(&dir, ".seg");
    assert_eq!(segments.len(), SHARDS);
    let seg_before: Vec<Vec<u8>> = segments
        .iter()
        .map(|path| std::fs::read(path).unwrap())
        .collect();

    // Restart over the rewritten directory: every record resolves and the
    // segment files stay byte-identical (re-hydration is read-only).
    {
        let store = ShardedStore::open(&dir, SHARDS).unwrap();
        for record in &records {
            let found = store
                .get_record(record.key, &record.canonical)
                .unwrap()
                .expect("restart resolves every record");
            assert_eq!(found.to_json_line(), record.to_json_line());
            assert!(!store.put_record(record).unwrap());
        }
    }
    let seg_after: Vec<Vec<u8>> = shard_files(&dir, ".seg")
        .iter()
        .map(|path| std::fs::read(path).unwrap())
        .collect();
    assert_eq!(seg_before, seg_after, "restart must not rewrite segments");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_torn_trailing_segment_is_truncated_and_counted_not_a_panic() {
    const RECORDS: u64 = 8;
    let dir = scratch_dir("torn");
    {
        let store = ShardedStore::open(&dir, SHARDS).unwrap();
        for index in 0..RECORDS {
            assert!(store.put_record(&record_for(index)).unwrap());
        }
    }

    // Tear the tail of shard 0: a record header promising more payload than
    // the file holds (a crash mid-append).
    let victim = dir.join("shard-000.seg");
    let clean_len = std::fs::metadata(&victim).unwrap().len();
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&victim)
            .unwrap();
        file.write_all(&200u32.to_le_bytes()).unwrap();
        file.write_all(&0xDEAD_BEEFu64.to_le_bytes()).unwrap();
        file.write_all(b"only a few payload bytes").unwrap();
    }

    let torn_before = srra_obs::Registry::global()
        .snapshot()
        .counter("store_torn_segments_total")
        .unwrap_or(0);
    let store = ShardedStore::open(&dir, SHARDS).unwrap();
    for index in 0..RECORDS {
        let expected = record_for(index);
        let found = store
            .get_record(expected.key, &expected.canonical)
            .unwrap()
            .expect("intact records survive the torn tail");
        assert_eq!(found.to_json_line(), expected.to_json_line());
    }
    let torn_after = srra_obs::Registry::global()
        .snapshot()
        .counter("store_torn_segments_total")
        .unwrap_or(0);
    assert_eq!(torn_after - torn_before, 1, "the torn record is counted");
    drop(store);

    // The torn bytes were truncated away: the file is back to its clean
    // length and a direct segment scan agrees nothing is torn any more.
    assert_eq!(std::fs::metadata(&victim).unwrap().len(), clean_len);
    let shard = SegmentStore::open(&victim).unwrap();
    assert_eq!(shard.torn_records(), 0);

    std::fs::remove_dir_all(&dir).unwrap();
}
