//! One server, two codecs: JSON-line and binary-frame clients share the same
//! listener (the server sniffs the first byte of every frame), interleave on
//! keep-alive connections, and receive byte-identical records.  Malformed
//! binary frames come back as protocol errors without desyncing the stream,
//! and the per-codec counters account for every request.

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use srra_serve::{
    decode_payload, read_frame, Client, Connection, FrameError, QueryPoint, Request, Response,
    Server, ServerConfig, BINARY_MAGIC, MAX_FRAME_LEN,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-mixed-codec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat"] {
        for budget in [16, 32, 64] {
            points.push(QueryPoint::new(kernel, "cpa", budget));
        }
    }
    points
}

#[test]
fn json_and_binary_clients_interleave_on_one_server_with_identical_results() {
    let dir = scratch_dir("interleave");
    let server = Server::bind(&ServerConfig {
        workers: 2,
        ..ServerConfig::ephemeral(dir.clone())
    })
    .expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    let points = workload();

    // Two keep-alive connections to the same server, one per codec.
    let mut json = Connection::connect(&addr).expect("json connect");
    let mut binary = Connection::connect_binary(&addr).expect("binary connect");
    assert!(!json.is_binary());
    assert!(binary.is_binary());

    // Warm the store over the binary codec, then interleave: a pipelined
    // binary batch (one explore per point, all frames written before any
    // reply is read) against JSON one-shots for the same points.
    let seed = binary.explore(&points).expect("binary explore");
    assert_eq!(seed.records.len(), points.len());
    assert_eq!(seed.evaluated as usize, points.len());

    let batch: Vec<Request> = points
        .iter()
        .map(|point| Request::Explore {
            points: vec![point.clone()],
        })
        .collect();
    let pipelined = binary.pipeline(&batch).expect("binary pipeline");
    assert_eq!(pipelined.len(), points.len());
    for (point, response) in points.iter().zip(&pipelined) {
        let json_reply = json
            .explore(std::slice::from_ref(point))
            .expect("json explore");
        let Response::Explored { records, hits, .. } = response else {
            panic!("unexpected pipeline reply: {}", response.render());
        };
        assert_eq!(*hits, 1, "warm store answers from the shards");
        assert_eq!(
            records[0].to_json_line(),
            json_reply.records[0].to_json_line(),
            "binary and JSON clients must see byte-identical records"
        );
    }

    // mget over both codecs agrees too (including the miss slot).
    let mut canonicals: Vec<String> = points
        .iter()
        .map(|point| srra_serve::canonical_for(point).unwrap())
        .collect();
    canonicals.push("kernel=nope;algo=CPA-RA;budget=1;latency=2;device=XCV1000".into());
    let from_binary = binary.mget(&canonicals).expect("binary mget");
    let from_json = json.mget(&canonicals).expect("json mget");
    assert_eq!(from_binary.len(), from_json.len());
    for (a, b) in from_binary.iter().zip(&from_json) {
        assert_eq!(
            a.as_ref().map(|r| r.to_json_line()),
            b.as_ref().map(|r| r.to_json_line())
        );
        assert_eq!(a.is_none(), b.is_none());
    }
    assert!(from_binary.last().unwrap().is_none());

    // Per-op stats count both codecs' traffic in one ledger: the explores
    // above were 1 (seed) + N (pipeline) + N (json one-shots), the mgets 2.
    let stats = binary.stats().expect("binary stats");
    let op_count = |name: &str| {
        stats
            .ops
            .iter()
            .find(|op| op.op == name)
            .map_or(0, |op| op.count)
    };
    assert_eq!(op_count("explore"), 1 + 2 * points.len() as u64);
    assert_eq!(op_count("mget"), 2);
    assert_eq!(stats.evaluated as usize, points.len());

    // The codec counters saw both sides.
    let metrics = json.metrics().expect("json metrics");
    let binary_frames = metrics.counter("serve_codec_binary_total").unwrap_or(0);
    let json_lines = metrics.counter("serve_codec_json_total").unwrap_or(0);
    assert!(
        binary_frames >= (2 + points.len()) as u64,
        "binary frames: {binary_frames}"
    );
    assert!(
        json_lines >= points.len() as u64,
        "json lines: {json_lines}"
    );

    binary.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reads one binary reply frame off a raw socket.
fn read_reply(reader: &mut BufReader<&TcpStream>) -> Result<Response, FrameError> {
    let mut payload = Vec::new();
    read_frame(reader, &mut payload)?;
    let (response, _trace) = decode_payload::<Response>(&payload)
        .map_err(|err| FrameError::Io(std::io::Error::other(err.to_string())))?;
    Ok(response)
}

#[test]
fn malformed_binary_frames_error_without_desyncing_the_stream() {
    let dir = scratch_dir("malformed");
    let server = Server::bind(&ServerConfig::ephemeral(dir.clone())).expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server runs"));

    // A full frame whose payload is garbage: the server must answer with an
    // error *and keep the connection usable* — the length prefix told it
    // exactly how many bytes to discard.
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = &stream;
        let mut reader = BufReader::new(&stream);
        let garbage = [0xFFu8, 0xEE, 0xDD];
        let mut frame = vec![BINARY_MAGIC];
        frame.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        frame.extend_from_slice(&garbage);
        writer.write_all(&frame).expect("write garbage frame");
        writer.flush().unwrap();
        let reply = read_reply(&mut reader).expect("error reply");
        assert!(
            matches!(&reply, Response::Error { .. }),
            "{}",
            reply.render()
        );

        // Same connection, valid request: no desync, a real answer comes back.
        let mut ping = Vec::new();
        srra_serve::encode_request_frame(&mut ping, None, &Request::Ping).unwrap();
        writer.write_all(&ping).expect("write ping");
        writer.flush().unwrap();
        let reply = read_reply(&mut reader).expect("pong");
        assert!(matches!(reply, Response::Pong), "{}", reply.render());
    }

    // An oversized length prefix: answered with an error frame, then the
    // server closes (it cannot know where the next frame would start).
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = &stream;
        let mut reader = BufReader::new(&stream);
        let mut frame = vec![BINARY_MAGIC];
        frame.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
        writer.write_all(&frame).expect("write oversized header");
        writer.flush().unwrap();
        let reply = read_reply(&mut reader).expect("error reply");
        assert!(
            matches!(&reply, Response::Error { .. }),
            "{}",
            reply.render()
        );
        let mut rest = Vec::new();
        let closed = reader.read_to_end(&mut rest);
        assert!(closed.is_ok() && rest.is_empty(), "server closed cleanly");
    }

    // A truncated frame (header promises more bytes than ever arrive): the
    // client vanishing mid-frame just closes the connection server-side; the
    // server stays healthy for the next client.
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = &stream;
        let mut frame = vec![BINARY_MAGIC];
        frame.extend_from_slice(&64u32.to_le_bytes());
        frame.extend_from_slice(&[0u8; 10]);
        writer.write_all(&frame).expect("write truncated frame");
        writer.flush().unwrap();
        drop(stream);
    }
    let client = Client::new_binary(addr);
    client.ping().expect("server survived the truncated frame");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}
