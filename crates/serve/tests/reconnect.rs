//! Transparent-reconnect tests for [`srra_serve::Connection`]: a keep-alive
//! socket that the server drops while idle is re-dialled and the failed call
//! replayed exactly once; a pipelined batch is replayed only when the
//! failure precedes its first reply.
//!
//! The "server" here is a hand-rolled accept loop speaking raw protocol
//! lines, so the test controls exactly when connections die.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use srra_serve::{stamp_trace, ClientError, Connection, Request, Response};

/// Reads request lines from `stream` and answers each with a canned
/// `NotFound` reply (echoing any trace id, like the real server), stopping
/// (and closing the connection) after `serve_limit` replies.  Returns how
/// many requests it answered.
fn serve_some(stream: TcpStream, serve_limit: usize) -> usize {
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut served = 0;
    let mut line = String::new();
    while served < serve_limit {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let (_, trace) = Request::parse_with_trace(line.trim_end())
            .unwrap_or_else(|err| panic!("client sent a well-formed line: {line}: {err}"));
        let mut reply = Response::NotFound.render();
        if let Some(trace) = &trace {
            stamp_trace(&mut reply, trace);
        }
        reply.push('\n');
        if writer.write_all(reply.as_bytes()).is_err() {
            break;
        }
        served += 1;
    }
    served
}

/// Spawns an accept loop that serves `limits[i]` requests on the `i`-th
/// accepted connection and then hangs up on it; further connections are
/// refused (the listener is dropped).  Returns the address and a counter of
/// accepted connections.
fn flaky_server(limits: Vec<usize>) -> (String, Arc<AtomicUsize>, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    let accepted = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&accepted);
    let handle = std::thread::spawn(move || {
        for limit in limits {
            let (stream, _) = listener.accept().expect("accept");
            counter.fetch_add(1, Ordering::SeqCst);
            serve_some(stream, limit);
            // Dropping the stream closes the connection: the next client
            // call sees EOF (or a reset, if it wrote first).
        }
    });
    (addr, accepted, handle)
}

#[test]
fn idle_keepalive_connection_reconnects_and_retries_once() {
    // Connection 1 serves exactly one request then hangs up; connection 2
    // serves the rest.
    let (addr, accepted, handle) = flaky_server(vec![1, 3]);
    let mut connection = Connection::connect(&addr).expect("connects");

    // First call: served by connection 1.
    assert_eq!(connection.get("kernel=fir;x").expect("first get"), None);
    // The server has dropped connection 1; this call hits EOF/reset on the
    // stale socket and must transparently reconnect and replay.
    assert_eq!(connection.get("kernel=fir;y").expect("retried get"), None);
    assert_eq!(accepted.load(Ordering::SeqCst), 2, "one reconnect happened");

    // The reconnected socket keeps serving normally.
    assert_eq!(connection.get("kernel=fir;z").expect("third get"), None);
    drop(connection);
    handle.join().expect("server thread");
}

#[test]
fn traced_requests_survive_reconnect_retry() {
    // Connection 1 serves one request then hangs up; connection 2 takes the
    // replayed call.
    let (addr, accepted, handle) = flaky_server(vec![1, 2]);
    let mut connection = Connection::connect(&addr).expect("connects");
    connection.set_trace(Some("retry-sweep.9")).expect("valid");

    assert_eq!(connection.get("kernel=fir;x").expect("first get"), None);
    assert_eq!(connection.last_trace(), Some("retry-sweep.9"));

    // The server dropped connection 1: the retried call replays the
    // identical stamped bytes over a fresh socket, so the trace id rides
    // through the reconnect and the reply still echoes it.
    assert_eq!(connection.get("kernel=fir;y").expect("retried get"), None);
    assert_eq!(accepted.load(Ordering::SeqCst), 2, "one reconnect happened");
    assert_eq!(connection.last_trace(), Some("retry-sweep.9"));
    drop(connection);
    handle.join().expect("server thread");
}

#[test]
fn pipeline_replays_only_before_the_first_reply() {
    // Connection 1 serves one request then hangs up; connection 2 also
    // serves exactly one, so a partially-answered batch fails; connection 3
    // would serve more but must never be dialled by the failing batch.
    let (addr, accepted, handle) = flaky_server(vec![1, 1, 4]);
    let mut connection = Connection::connect(&addr).expect("connects");

    let batch = vec![
        Request::Get {
            canonical: "kernel=fir;a".to_owned(),
        },
        Request::Get {
            canonical: "kernel=fir;b".to_owned(),
        },
    ];

    // Exhaust connection 1 so the next batch starts on a stale socket.
    assert_eq!(connection.get("kernel=fir;warm").expect("warm get"), None);

    // The batch write lands on the dead socket: no reply was consumed, so
    // the whole window is replayed on connection 2 — which answers one
    // reply and hangs up mid-batch.  That failure must NOT be retried:
    // reply 1 was already consumed.
    match connection.pipeline(&batch) {
        Err(ClientError::Io(err)) => {
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{err}");
        }
        other => panic!("expected a mid-batch EOF failure, got {other:?}"),
    }
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        2,
        "the mid-batch failure did not reconnect"
    );

    // An explicit follow-up call may reconnect (connection 3) and succeed.
    let replies = connection.pipeline(&batch).expect("fresh batch");
    assert_eq!(replies.len(), 2);
    assert_eq!(accepted.load(Ordering::SeqCst), 3);
    drop(connection);
    handle.join().expect("server thread");
}
