//! Integration coverage for the read-optimized sharded store: concurrent
//! readers racing an in-flight append always observe either the old or the
//! new state (never a torn record), and a restart re-hydrates the in-memory
//! index from the shard files byte-identically.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use srra_explore::{fnv1a_64, PointRecord};
use srra_serve::ShardedStore;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-shard-reads-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A record whose metric fields are derived from `index`, so a torn read
/// (fields mixed between two records) is detectable.
fn record_for(index: u64) -> PointRecord {
    let canonical = format!("kernel=fir;algo=CPA-RA;budget={index};latency=2;device=XCV1000");
    PointRecord {
        key: fnv1a_64(canonical.as_bytes()),
        canonical,
        kernel: "fir".to_owned(),
        algorithm: "CPA-RA".to_owned(),
        version: "v3".to_owned(),
        budget: index,
        ram_latency: 2,
        device: "XCV1000-BG560".to_owned(),
        feasible: true,
        fits: true,
        registers_used: index + 1,
        total_cycles: index * 1000,
        compute_cycles: index * 900,
        memory_cycles: index * 90,
        transfer_cycles: index * 10,
        clock_period_ns: index as f64 + 0.5,
        execution_time_us: index as f64 * 3.25,
        slices: index * 7,
        block_rams: index % 5,
        distribution: format!("a:{index} b:1"),
    }
}

#[test]
fn concurrent_readers_never_observe_torn_records_during_appends() {
    const RECORDS: u64 = 400;
    const READERS: usize = 4;

    let dir = scratch_dir("torn");
    let store = ShardedStore::open(&dir, 4).unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writer: appends all records as fast as it can.
        let store_ref = &store;
        let done_ref = &done;
        scope.spawn(move || {
            for index in 0..RECORDS {
                assert!(store_ref.put_record(&record_for(index)).unwrap());
            }
            done_ref.store(true, Ordering::SeqCst);
        });
        // Readers: hammer lookups across the whole keyspace while the writer
        // runs.  Every hit must be byte-identical to the canonical encoding
        // of the expected record — a miss just means the append is still in
        // flight.
        for reader in 0..READERS {
            scope.spawn(move || {
                let mut hits: u64 = 0;
                while !done_ref.load(Ordering::SeqCst) || hits == 0 {
                    for index in 0..RECORDS {
                        let expected = record_for(index);
                        // A miss is fine — the append has not landed yet; a
                        // hit must be the complete record.
                        if let Some(found) = store_ref
                            .get_record(expected.key, &expected.canonical)
                            .unwrap()
                        {
                            hits += 1;
                            assert_eq!(
                                found.to_json_line(),
                                expected.to_json_line(),
                                "reader {reader} saw a torn record for index {index}"
                            );
                        }
                    }
                }
            });
        }
    });

    // After the writer finished every record is visible.
    for index in 0..RECORDS {
        let expected = record_for(index);
        let found = store
            .get_record(expected.key, &expected.canonical)
            .unwrap()
            .expect("all records landed");
        assert_eq!(found.to_json_line(), expected.to_json_line());
    }
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restart_rehydrates_the_index_byte_identically() {
    const RECORDS: u64 = 64;

    let dir = scratch_dir("rehydrate");
    {
        let store = ShardedStore::open(&dir, 4).unwrap();
        for index in 0..RECORDS {
            assert!(store.put_record(&record_for(index)).unwrap());
        }
    } // Drop releases the LOCK file, simulating a clean restart.

    // Snapshot the shard files (binary segment form) before the reopen so
    // the test can prove the restart touched nothing.
    let shard_bytes = |dir: &PathBuf| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|path| {
                path.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-"))
            })
            .collect();
        files.sort();
        files
            .into_iter()
            .map(|path| {
                (
                    path.file_name().unwrap().to_string_lossy().into_owned(),
                    std::fs::read(&path).unwrap(),
                )
            })
            .collect()
    };
    let before = shard_bytes(&dir);
    assert_eq!(before.len(), 4);
    assert_eq!(
        (0..4)
            .map(|index| {
                srra_explore::SegmentStore::open(dir.join(format!("shard-{index:03}.seg")))
                    .unwrap()
                    .segment_records()
            })
            .sum::<usize>(),
        RECORDS as usize
    );

    let reopened = ShardedStore::open(&dir, 4).unwrap();
    // Every record resolves from the re-hydrated in-memory index with the
    // exact bytes that were stored, and a duplicate put still dedupes (the
    // index knows the canonical strings, not just the keys).
    for index in 0..RECORDS {
        let expected = record_for(index);
        let found = reopened
            .get_record(expected.key, &expected.canonical)
            .unwrap()
            .expect("re-hydrated index resolves every record");
        assert_eq!(found.to_json_line(), expected.to_json_line());
        assert!(!reopened.put_record(&expected).unwrap());
    }
    assert_eq!(
        reopened.shard_sizes().unwrap().iter().sum::<usize>(),
        RECORDS as usize
    );
    drop(reopened);
    // Re-hydration plus the duplicate puts left the files byte-identical.
    assert_eq!(shard_bytes(&dir), before);
    std::fs::remove_dir_all(&dir).unwrap();
}
