//! Integration coverage for the keep-alive/pipelining client and the batched
//! `mget` / `mexplore` wire ops: a connection that writes many request lines
//! before reading any reply gets order-preserving, byte-identical answers;
//! batched ops round-trip; malformed batches answer with errors while the
//! connection stays open.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use srra_serve::{
    canonical_for, Client, Connection, PointOutcome, QueryPoint, Request, Response, Server,
    ServerConfig,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srra-serve-pipe-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(dir: &PathBuf) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig::ephemeral(dir)).expect("server binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || {
        server.run().expect("server runs");
    });
    (addr, handle)
}

/// The mixed workload: distinct warm points plus repeats.
fn points() -> Vec<QueryPoint> {
    let mut points = Vec::new();
    for kernel in ["fir", "mat"] {
        for budget in [16, 32, 64] {
            points.push(QueryPoint::new(kernel, "cpa", budget));
        }
    }
    points
}

#[test]
fn pipelined_replies_preserve_order_and_match_one_shot_bytes() {
    let dir = scratch_dir("order");
    let (addr, handle) = start_server(&dir);

    // Warm the shards through one-shot requests and capture the ground-truth
    // reply line of every request we are about to pipeline.
    let one_shot = Client::new(addr.clone());
    one_shot.explore(&points()).expect("warm-up explore");

    // An interleaved request schedule: get / single-point explore / stats
    // shapes, repeated — 36 requests on one connection, written before any
    // reply is read.
    let mut requests = Vec::new();
    for round in 0..3 {
        for (index, point) in points().iter().enumerate() {
            if (round + index) % 2 == 0 {
                requests.push(Request::Get {
                    canonical: canonical_for(point).expect("grid resolves"),
                });
            } else {
                requests.push(Request::Explore {
                    points: vec![point.clone()],
                });
            }
        }
    }
    let expected: Vec<String> = requests
        .iter()
        .map(|request| {
            one_shot
                .roundtrip(request)
                .expect("one-shot roundtrip")
                .render()
        })
        .collect();

    // Write ALL the request lines raw on one socket before reading anything,
    // so the test exercises real pipelining rather than the client helper's
    // framing.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    let mut wire = String::new();
    for request in &requests {
        request.render_into(&mut wire);
        wire.push('\n');
    }
    stream.write_all(wire.as_bytes()).expect("bulk write");
    let mut reader = BufReader::new(stream);
    for (index, expected_line) in expected.iter().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        assert_eq!(
            line.trim_end(),
            expected_line,
            "pipelined reply {index} must be byte-identical to its one-shot twin"
        );
    }

    // The Connection helper produces the same replies through its API.
    let mut connection = Connection::connect(&addr).expect("connects");
    let responses = connection.pipeline(&requests).expect("pipeline");
    assert_eq!(responses.len(), requests.len());
    for (response, expected_line) in responses.iter().zip(&expected) {
        assert_eq!(&response.render(), expected_line);
    }

    connection.shutdown().expect("shutdown");
    // Drop every live socket before joining: the server drains open
    // connections to completion, so a still-open keep-alive stream would
    // deadlock the join.
    drop(connection);
    drop(reader);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mget_and_mexplore_round_trip_over_the_wire() {
    let dir = scratch_dir("batched");
    let (addr, handle) = start_server(&dir);
    let mut connection = Connection::connect(&addr).expect("connects");

    let workload = points();
    let canonicals: Vec<String> = workload
        .iter()
        .map(|point| canonical_for(point).expect("grid resolves"))
        .collect();

    // Cold mget: all misses, as nulls, in request order.
    let cold = connection.mget(&canonicals).expect("cold mget");
    assert_eq!(cold.len(), canonicals.len());
    assert!(cold.iter().all(Option::is_none));

    // mexplore evaluates every point (per-point outcomes), then a warm mget
    // returns records byte-identical to the evaluated ones.
    let explored = connection.mexplore(&workload).expect("mexplore");
    assert_eq!(explored.outcomes.len(), workload.len());
    assert_eq!(explored.evaluated, workload.len() as u64);
    assert_eq!(explored.hits, 0);
    let warm = connection.mget(&canonicals).expect("warm mget");
    for (outcome, got) in explored.outcomes.iter().zip(&warm) {
        let PointOutcome::Answered { record, hit } = outcome else {
            panic!("grid point failed: {outcome:?}");
        };
        assert!(!hit);
        let got = got.as_ref().expect("warm mget hits");
        assert_eq!(got.to_json_line(), record.to_json_line());
    }

    // A second mexplore is all hits.
    let rerun = connection.mexplore(&workload).expect("warm mexplore");
    assert_eq!(rerun.hits, workload.len() as u64);
    assert_eq!(rerun.evaluated, 0);

    // Unknown kernels/algorithms fail per point, not per batch; the good
    // point still answers.
    let mixed = vec![
        QueryPoint::new("fir", "cpa", 32),
        QueryPoint::new("nope", "cpa", 32),
        QueryPoint::new("fir", "zzz", 32),
    ];
    let reply = connection.mexplore(&mixed).expect("mixed mexplore");
    assert!(matches!(
        &reply.outcomes[0],
        PointOutcome::Answered { hit: true, .. }
    ));
    let PointOutcome::Failed { error } = &reply.outcomes[1] else {
        panic!("expected per-point failure, got {:?}", reply.outcomes[1]);
    };
    assert!(error.contains("unknown kernel"), "{error}");
    let PointOutcome::Failed { error } = &reply.outcomes[2] else {
        panic!("expected per-point failure, got {:?}", reply.outcomes[2]);
    };
    assert!(error.contains("unknown algorithm"), "{error}");

    // Per-op stats counted the batched ops.
    let stats = connection.stats().expect("stats");
    assert_eq!(stats.op("mget").expect("mget accounted").count, 2);
    assert_eq!(stats.op("mexplore").expect("mexplore accounted").count, 3);

    connection.shutdown().expect("shutdown");
    drop(connection);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn blank_lines_behind_pipelined_requests_do_not_strand_replies() {
    let dir = scratch_dir("blank");
    let (addr, handle) = start_server(&dir);

    // One write carrying a request followed by blank lines, then another
    // request + blank line.  Blank lines produce no response, so the server
    // must not defer its flushes on their account — the regression here was
    // a reply stranded in the server's write buffer while it blocked
    // reading.  A read timeout turns that hang into a test failure.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("timeout set");
    stream
        .write_all(b"{\"op\":\"stats\"}\n\n\n{\"op\":\"stats\"}\n\n")
        .expect("bulk write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for _ in 0..2 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply before timeout");
        assert!(
            matches!(Response::parse(line.trim_end()), Ok(Response::Stats(_))),
            "expected stats, got {line}"
        );
    }

    let mut connection = Connection::connect(&addr).expect("connects");
    connection.shutdown().expect("shutdown");
    drop(connection);
    drop(reader);
    drop(stream);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn malformed_batches_answer_errors_and_keep_the_connection_open() {
    let dir = scratch_dir("malformed");
    let (addr, handle) = start_server(&dir);
    let mut connection = Connection::connect(&addr).expect("connects");

    // Every malformed line gets an error reply on the same connection; they
    // are pipelined back-to-back to prove the stream stays in sync.
    let bad_lines = [
        r#"{"op":"mget"}"#,
        r#"{"op":"mget","canonicals":[]}"#,
        r#"{"op":"mget","canonicals":[7]}"#,
        r#"{"op":"mexplore","points":[]}"#,
        r#"{"op":"mexplore","points":[{"algo":"cpa","budget":1}]}"#,
        "not json at all",
    ];
    let mut stream = TcpStream::connect(&addr).expect("connects");
    let wire: String = bad_lines.iter().map(|line| format!("{line}\n")).collect();
    stream.write_all(wire.as_bytes()).expect("bulk write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for bad in bad_lines {
        let mut line = String::new();
        reader.read_line(&mut line).expect("error reply");
        let Response::Error { message } = Response::parse(line.trim_end()).expect("parses") else {
            panic!("expected an error reply to `{bad}`, got {line}");
        };
        assert!(!message.is_empty());
    }
    // The same raw connection still serves a valid request afterwards.
    stream
        .write_all(b"{\"op\":\"stats\"}\n")
        .expect("stats after errors");
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats reply");
    let Response::Stats(stats) = Response::parse(line.trim_end()).expect("parses") else {
        panic!("expected stats, got {line}");
    };
    // The malformed lines were accounted as `invalid` with latencies.
    assert_eq!(
        stats.op("invalid").expect("invalid accounted").count,
        bad_lines.len() as u64
    );

    connection.shutdown().expect("shutdown");
    drop(connection);
    drop(reader);
    drop(stream);
    handle.join().expect("server thread");
    std::fs::remove_dir_all(&dir).unwrap();
}
