//! Property tests for the anti-entropy shard digests: the digest of a shard
//! must depend only on the *set* of records it holds (not their insertion
//! order), must move when any record's payload changes, and must mean the
//! same thing on both wire codecs — those three properties are what let
//! `ClusterClient::repair` compare two nodes without shipping their data.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use srra_explore::{fnv1a_64, PointRecord};
use srra_serve::{decode_payload, encode_response_frame, Response, ShardDigest, ShardedStore};

/// Unique scratch directory per test case (cases run back to back within one
/// process and must not share lock files).
fn scratch(label: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "srra-digest-props-{}-{label}-{seq}",
        std::process::id()
    ))
}

/// A fully synthetic record keyed by `budget`; `slices` doubles as the
/// mutable payload field for the discrimination property.
fn record_for(budget: u64, slices: u64) -> PointRecord {
    let canonical =
        format!("kernel=fir;algo=CPA-RA;budget={budget};latency=2;device=XCV1000-BG560");
    PointRecord {
        key: fnv1a_64(canonical.as_bytes()),
        canonical,
        kernel: "fir".to_owned(),
        algorithm: "CPA-RA".to_owned(),
        version: "v3".to_owned(),
        budget,
        ram_latency: 2,
        device: "XCV1000-BG560".to_owned(),
        feasible: true,
        fits: true,
        registers_used: budget / 2,
        total_cycles: 4000 + budget,
        compute_cycles: 4000,
        memory_cycles: budget,
        transfer_cycles: 42,
        clock_period_ns: 9.5,
        execution_time_us: 40.0,
        slices,
        block_rams: 2,
        distribution: "a:16 b:1".to_owned(),
    }
}

/// Distinct records from possibly-repeating generated budgets.
fn distinct_records(budgets: &[u64]) -> Vec<PointRecord> {
    let mut seen = std::collections::BTreeSet::new();
    budgets
        .iter()
        .filter(|&&budget| seen.insert(budget))
        .map(|&budget| record_for(budget, 100 + budget % 37))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The digest vector depends only on the record *set*: inserting the
    /// same records in a rotated-and-reversed order produces identical
    /// digests, and the per-shard counts sum to the set size.
    #[test]
    fn digests_are_insertion_order_insensitive(
        budgets in prop::collection::vec(0u64..10_000, 24),
        rotate in 0usize..24,
        shards in 1usize..=4,
    ) {
        let records = distinct_records(&budgets);
        let mut shuffled = records.clone();
        shuffled.rotate_left(rotate % records.len().max(1));
        shuffled.reverse();

        let (dir_a, dir_b) = (scratch("order-a"), scratch("order-b"));
        let store_a = ShardedStore::open(&dir_a, shards).unwrap();
        let store_b = ShardedStore::open(&dir_b, shards).unwrap();
        for record in &records {
            store_a.put_record(record).unwrap();
        }
        for record in &shuffled {
            store_b.put_record(record).unwrap();
        }
        let (digests_a, digests_b) = (store_a.digests(), store_b.digests());
        drop((store_a, store_b));
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);

        prop_assert_eq!(&digests_a, &digests_b);
        prop_assert_eq!(digests_a.len(), shards);
        let total: u64 = digests_a.iter().map(|digest| digest.records).sum();
        prop_assert_eq!(total, records.len() as u64);
    }

    /// The digest discriminates: mutating one record's payload flips its
    /// shard's fold (without moving the count), and dropping a record flips
    /// the count.  A digest that missed either would make repair report
    /// "converged" over divergent replicas.
    #[test]
    fn digests_discriminate_payload_and_membership_changes(
        budgets in prop::collection::vec(0u64..10_000, 12),
        shards in 1usize..=4,
    ) {
        let records = distinct_records(&budgets);
        let mut mutated = records.clone();
        mutated[0].slices += 1;

        let dirs = [scratch("disc-a"), scratch("disc-b"), scratch("disc-c")];
        let store_a = ShardedStore::open(&dirs[0], shards).unwrap();
        let store_b = ShardedStore::open(&dirs[1], shards).unwrap();
        let store_c = ShardedStore::open(&dirs[2], shards).unwrap();
        for record in &records {
            store_a.put_record(record).unwrap();
        }
        for record in &mutated {
            store_b.put_record(record).unwrap();
        }
        for record in &records[1..] {
            store_c.put_record(record).unwrap();
        }
        let clean = store_a.digests();
        let payload_changed = store_b.digests();
        let member_dropped = store_c.digests();
        let shard = store_a.route(records[0].key);
        drop((store_a, store_b, store_c));
        for dir in &dirs {
            let _ = std::fs::remove_dir_all(dir);
        }

        prop_assert_eq!(clean[shard].records, payload_changed[shard].records);
        prop_assert_ne!(clean[shard].fold, payload_changed[shard].fold);
        prop_assert_eq!(
            clean[shard].records,
            member_dropped[shard].records + 1
        );
    }

    /// A `digest` reply means the same thing on both codecs: rendering the
    /// response as a JSON line and as a binary frame round-trips to the same
    /// digest vector, so a JSON client and a binary client comparing nodes
    /// agree.
    #[test]
    fn digest_replies_round_trip_identically_on_both_codecs(
        records in prop::collection::vec(any::<u64>(), 4),
        folds in prop::collection::vec(any::<u64>(), 4),
    ) {
        let digests: Vec<ShardDigest> = records
            .iter()
            .zip(&folds)
            .map(|(&records, &fold)| ShardDigest { records, fold })
            .collect();
        let response = Response::Digests { digests: digests.clone() };

        let via_json = Response::parse(&response.render()).unwrap();

        let mut frame = Vec::new();
        encode_response_frame(&mut frame, None, &response).unwrap();
        let (via_binary, trace) = decode_payload::<Response>(&frame[5..]).unwrap();
        prop_assert_eq!(trace, None);

        let unpack = |parsed: Response| match parsed {
            Response::Digests { digests } => digests,
            other => panic!("not a digests reply: {other:?}"),
        };
        prop_assert_eq!(unpack(via_json), digests.clone());
        prop_assert_eq!(unpack(via_binary), digests);
    }
}
