//! Longest-path (critical-path) analysis and the Critical Graph.

use serde::{Deserialize, Serialize};

use crate::graph::{DataFlowGraph, NodeId};
use crate::latency::{LatencyModel, StorageMap};

/// The subgraph of a DFG containing every node and edge that lies on at least one
/// critical (maximum-latency) path.
///
/// The paper calls this the *Critical Graph* (CG); CPA-RA allocates registers to cuts
/// of this graph so that every register spent shortens **all** critical paths at once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalGraph {
    nodes: Vec<NodeId>,
    edges: Vec<(NodeId, NodeId)>,
    sources: Vec<NodeId>,
    sinks: Vec<NodeId>,
}

impl CriticalGraph {
    /// Nodes of the critical graph, in ascending id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Edges of the critical graph (each edge lies on some critical path).
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Critical nodes with no critical predecessor (path entry points).
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Critical nodes with no critical successor (path exit points).
    pub fn sinks(&self) -> &[NodeId] {
        &self.sinks
    }

    /// Returns `true` when the node belongs to the critical graph.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Successors of `node` within the critical graph.
    pub fn successors(&self, node: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(from, _)| *from == node)
            .map(|(_, to)| *to)
            .collect()
    }

    /// Number of critical nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the critical graph is empty (only possible for an empty
    /// DFG).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Longest-path analysis of a [`DataFlowGraph`] under a [`LatencyModel`] and a
/// [`StorageMap`].
///
/// The *length* of a path is the sum of the latencies of its nodes, exactly the
/// `lat(p) = Σ lat(n)` definition of the paper, and the execution time `T_comp` of the
/// DFG is the maximum path length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathAnalysis {
    latencies: Vec<u64>,
    longest_to: Vec<u64>,
    longest_from: Vec<u64>,
    critical_length: u64,
    critical_graph: CriticalGraph,
}

impl CriticalPathAnalysis {
    /// Runs the analysis.
    pub fn new(dfg: &DataFlowGraph, model: &LatencyModel, storage: &StorageMap) -> Self {
        let n = dfg.node_count();
        let latencies: Vec<u64> = dfg
            .node_ids()
            .map(|id| model.node_latency(dfg.node(id), storage))
            .collect();

        let order = dfg.topological_order();
        let mut longest_to = vec![0u64; n];
        for &node in &order {
            let incoming = dfg
                .predecessors(node)
                .iter()
                .map(|p| longest_to[p.index()])
                .max()
                .unwrap_or(0);
            longest_to[node.index()] = incoming + latencies[node.index()];
        }
        let mut longest_from = vec![0u64; n];
        for &node in order.iter().rev() {
            let outgoing = dfg
                .successors(node)
                .iter()
                .map(|s| longest_from[s.index()])
                .max()
                .unwrap_or(0);
            longest_from[node.index()] = outgoing + latencies[node.index()];
        }
        let critical_length = longest_to.iter().copied().max().unwrap_or(0);

        let mut nodes: Vec<NodeId> = dfg
            .node_ids()
            .filter(|id| {
                longest_to[id.index()] + longest_from[id.index()] - latencies[id.index()]
                    == critical_length
            })
            .collect();
        nodes.sort_unstable();
        let mut edges = Vec::new();
        for &from in &nodes {
            for &to in dfg.successors(from) {
                let critical_edge =
                    longest_to[from.index()] + longest_from[to.index()] == critical_length;
                if critical_edge && nodes.binary_search(&to).is_ok() {
                    edges.push((from, to));
                }
            }
        }
        let sources: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| !edges.iter().any(|(_, to)| to == n))
            .collect();
        let sinks: Vec<NodeId> = nodes
            .iter()
            .copied()
            .filter(|n| !edges.iter().any(|(from, _)| from == n))
            .collect();

        Self {
            latencies,
            longest_to,
            longest_from,
            critical_length,
            critical_graph: CriticalGraph {
                nodes,
                edges,
                sources,
                sinks,
            },
        }
    }

    /// The latency assigned to a node by the model and storage map.
    pub fn latency(&self, node: NodeId) -> u64 {
        self.latencies[node.index()]
    }

    /// Length of the longest path ending at (and including) `node`.
    pub fn longest_to(&self, node: NodeId) -> u64 {
        self.longest_to[node.index()]
    }

    /// Length of the longest path starting at (and including) `node`.
    pub fn longest_from(&self, node: NodeId) -> u64 {
        self.longest_from[node.index()]
    }

    /// The critical path length `T_comp`: the maximum path latency of the DFG.
    pub fn critical_length(&self) -> u64 {
        self.critical_length
    }

    /// Slack of a node: how much its latency could grow without lengthening the
    /// critical path.  Critical nodes have zero slack.
    pub fn slack(&self, node: NodeId) -> u64 {
        self.critical_length
            - (self.longest_to[node.index()] + self.longest_from[node.index()]
                - self.latencies[node.index()])
    }

    /// Returns `true` when the node lies on at least one critical path.
    pub fn is_critical(&self, node: NodeId) -> bool {
        self.slack(node) == 0
    }

    /// The critical graph (all critical paths).
    pub fn critical_graph(&self) -> &CriticalGraph {
        &self.critical_graph
    }

    /// Enumerates complete critical paths (source to sink), up to `limit` paths.
    ///
    /// The number of critical paths can be exponential in pathological graphs, hence
    /// the explicit cap; the graphs arising from the paper's kernels have only a
    /// handful.
    pub fn critical_paths(&self, limit: usize) -> Vec<Vec<NodeId>> {
        let cg = &self.critical_graph;
        let mut paths = Vec::new();
        let mut stack: Vec<Vec<NodeId>> = cg.sources().iter().map(|&s| vec![s]).collect();
        while let Some(path) = stack.pop() {
            if paths.len() >= limit {
                break;
            }
            let last = *path.last().expect("non-empty path");
            let succs = cg.successors(last);
            if succs.is_empty() {
                paths.push(path);
            } else {
                for s in succs {
                    let mut next = path.clone();
                    next.push(s);
                    stack.push(next);
                }
            }
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Storage;
    use srra_ir::examples::paper_example;

    fn setup() -> (srra_ir::Kernel, DataFlowGraph, LatencyModel) {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        (kernel, dfg, LatencyModel::default())
    }

    fn node_by_label(dfg: &DataFlowGraph, label: &str) -> NodeId {
        dfg.nodes()
            .find(|n| n.label() == label)
            .unwrap_or_else(|| panic!("node {label} not found"))
            .id()
    }

    #[test]
    fn all_ram_critical_path_follows_the_long_chain() {
        let (_, dfg, model) = setup();
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        // a/b (1) -> op1 (2) -> d (1) -> op2 (2) -> e (1) = 7 cycles.
        assert_eq!(analysis.critical_length(), 7);
        let cg = analysis.critical_graph();
        let labels: Vec<&str> = cg.nodes().iter().map(|&n| dfg.node(n).label()).collect();
        assert!(labels.contains(&"a[k]"));
        assert!(labels.contains(&"b[k][j]"));
        assert!(labels.contains(&"d[i][k]"));
        assert!(labels.contains(&"e[i][j][k]"));
        // c is NOT on the critical path: its chain c -> op2 -> e is shorter.
        assert!(!labels.contains(&"c[j]"));
        assert_eq!(cg.len(), 6);
    }

    #[test]
    fn slack_is_zero_exactly_on_critical_nodes() {
        let (_, dfg, model) = setup();
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        for node in dfg.node_ids() {
            assert_eq!(analysis.slack(node) == 0, analysis.is_critical(node));
        }
        let c = node_by_label(&dfg, "c[j]");
        assert!(analysis.slack(c) > 0);
    }

    #[test]
    fn promoting_the_critical_references_shortens_the_path() {
        let (kernel, dfg, model) = setup();
        let table = kernel.reference_table();
        let mut storage = StorageMap::all_ram();
        for name in ["a", "b", "d", "e"] {
            storage.set(table.find_by_name(name).unwrap().id(), Storage::Register);
        }
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &storage);
        // Memory latency disappears from the long chain; now c (still in RAM) matters:
        // c (1) -> op2 (2) -> e (0) = 3, versus a/b (0) -> op1 (2) -> d (0) -> op2 (2) -> e (0) = 4.
        assert_eq!(analysis.critical_length(), 4);
    }

    #[test]
    fn critical_paths_enumeration_is_capped_and_complete() {
        let (_, dfg, model) = setup();
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        let paths = analysis.critical_paths(16);
        // Two critical paths: one starting at a, one at b.
        assert_eq!(paths.len(), 2);
        for path in &paths {
            assert_eq!(dfg.node(*path.last().unwrap()).label(), "e[i][j][k]");
        }
        assert_eq!(analysis.critical_paths(1).len(), 1);
    }

    #[test]
    fn longest_to_and_from_are_consistent_with_length() {
        let (_, dfg, model) = setup();
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        for node in dfg.node_ids() {
            let through =
                analysis.longest_to(node) + analysis.longest_from(node) - analysis.latency(node);
            assert!(through <= analysis.critical_length());
        }
        let e = node_by_label(&dfg, "e[i][j][k]");
        assert_eq!(analysis.longest_to(e), analysis.critical_length());
    }

    #[test]
    fn critical_graph_membership_queries() {
        let (_, dfg, model) = setup();
        let analysis = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        let cg = analysis.critical_graph();
        assert!(!cg.is_empty());
        let d = node_by_label(&dfg, "d[i][k]");
        let c = node_by_label(&dfg, "c[j]");
        assert!(cg.contains(d));
        assert!(!cg.contains(c));
        assert_eq!(cg.sinks().len(), 1);
        assert_eq!(cg.sources().len(), 2);
    }
}
