//! Construction of a [`DataFlowGraph`] from an `srra-ir` kernel.

use std::collections::HashMap;

use srra_ir::{AccessKind, Expr, Kernel, RefId, StoreTarget};

use crate::graph::{DataFlowGraph, NodeId, NodeKind};

struct Builder<'k> {
    kernel: &'k Kernel,
    graph: DataFlowGraph,
    /// Producing node of each scalar temporary defined so far.
    scalar_defs: HashMap<String, NodeId>,
    /// Reference node that most recently wrote each reference group (value forwarding
    /// inside one iteration, e.g. the `d[i][k]` node of the paper's example).
    last_write: HashMap<RefId, NodeId>,
    /// Reference node created for a read of each group, so repeated reads of the same
    /// element within one iteration fetch it only once.
    read_nodes: HashMap<RefId, NodeId>,
}

impl<'k> Builder<'k> {
    fn new(kernel: &'k Kernel) -> Self {
        Self {
            kernel,
            graph: DataFlowGraph::new(),
            scalar_defs: HashMap::new(),
            last_write: HashMap::new(),
            read_nodes: HashMap::new(),
        }
    }

    fn reference_label(&self, ref_id: RefId) -> String {
        let table = self.kernel.reference_table();
        let names = self.kernel.nest().loop_names();
        table
            .get(ref_id)
            .map(|info| info.render(&names))
            .unwrap_or_else(|| ref_id.to_string())
    }

    fn lookup_ref(&self, array: srra_ir::ArrayId, subscripts: &[srra_ir::AffineExpr]) -> RefId {
        self.kernel
            .reference_table()
            .find(array, subscripts)
            .map(|info| info.id())
            .expect("reference present in table")
    }

    fn build_expr(&mut self, expr: &Expr, statement: usize) -> NodeId {
        match expr {
            Expr::ArrayAccess(r) => {
                let ref_id = self.lookup_ref(r.array(), r.subscripts());
                if let Some(&producer) = self.last_write.get(&ref_id) {
                    return producer;
                }
                if let Some(&existing) = self.read_nodes.get(&ref_id) {
                    return existing;
                }
                let label = self.reference_label(ref_id);
                let node = self.graph.add_node(
                    NodeKind::Reference {
                        ref_id,
                        array: r.array(),
                        access: AccessKind::Read,
                    },
                    label,
                );
                self.read_nodes.insert(ref_id, node);
                node
            }
            Expr::Scalar(name) => {
                if let Some(&producer) = self.scalar_defs.get(name) {
                    producer
                } else {
                    self.graph.add_node(NodeKind::Input, name.clone())
                }
            }
            Expr::LoopIndex(l) => self.graph.add_node(NodeKind::Input, l.to_string()),
            Expr::IntConst(v) => self.graph.add_node(NodeKind::Input, v.to_string()),
            Expr::Binary { op, lhs, rhs } => {
                let lhs_node = self.build_expr(lhs, statement);
                let rhs_node = self.build_expr(rhs, statement);
                let node = self.graph.add_node(
                    NodeKind::Binary { op: *op, statement },
                    format!("{}#{}", op.mnemonic(), statement),
                );
                self.graph.add_edge(lhs_node, node);
                self.graph.add_edge(rhs_node, node);
                node
            }
            Expr::Unary { op, operand } => {
                let operand_node = self.build_expr(operand, statement);
                let node = self.graph.add_node(
                    NodeKind::Unary { op: *op, statement },
                    format!("{}#{}", op.mnemonic(), statement),
                );
                self.graph.add_edge(operand_node, node);
                node
            }
        }
    }

    fn build(mut self) -> DataFlowGraph {
        for (statement, stmt) in self.kernel.nest().body().iter().enumerate() {
            let value_node = self.build_expr(stmt.value(), statement);
            match stmt.target() {
                StoreTarget::Array(r) => {
                    let ref_id = self.lookup_ref(r.array(), r.subscripts());
                    let label = self.reference_label(ref_id);
                    let store = self.graph.add_node(
                        NodeKind::Reference {
                            ref_id,
                            array: r.array(),
                            access: AccessKind::Write,
                        },
                        label,
                    );
                    self.graph.add_edge(value_node, store);
                    self.last_write.insert(ref_id, store);
                }
                StoreTarget::Scalar(name) => {
                    self.scalar_defs.insert(name.clone(), value_node);
                }
            }
        }
        self.graph
    }
}

impl DataFlowGraph {
    /// Builds the data-flow graph of one iteration of the kernel's loop body.
    ///
    /// Nodes are created for every memory reference, operation and leaf input.  Within
    /// one iteration the value written to an array element by an earlier statement is
    /// forwarded to later readers of the same reference group (so `d[i][k]` of the
    /// paper's example is a single node between the two multiplications), and repeated
    /// reads of the same reference share one fetch node.
    pub fn from_kernel(kernel: &Kernel) -> Self {
        Builder::new(kernel).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::{dot_product, paper_example, stencil3};

    #[test]
    fn paper_example_graph_shape_matches_figure_2a() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        // Nodes: a, b, op1, d, c, op2, e  ->  7 nodes, 6 edges.
        assert_eq!(dfg.node_count(), 7);
        assert_eq!(dfg.edge_count(), 6);
        assert_eq!(dfg.reference_nodes().len(), 5);
        assert_eq!(dfg.operation_nodes().len(), 2);
        assert!(dfg.is_acyclic());

        // d is a single node fed by op1 and feeding op2.
        let d = dfg
            .nodes()
            .find(|n| n.label() == "d[i][k]")
            .expect("d node");
        assert_eq!(dfg.predecessors(d.id()).len(), 1);
        assert_eq!(dfg.successors(d.id()).len(), 1);

        // e is the unique sink.
        let sinks = dfg.sinks();
        assert_eq!(sinks.len(), 1);
        assert_eq!(dfg.node(sinks[0]).label(), "e[i][j][k]");
    }

    #[test]
    fn scalar_definitions_connect_statements() {
        let kernel = dot_product(16);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        // x, y, mul, s(read), add, s(write): 6 nodes.
        assert_eq!(dfg.node_count(), 6);
        // The accumulator read and write are distinct nodes of the same group.
        let s_nodes: Vec<_> = dfg
            .nodes()
            .filter(|n| n.label().starts_with("s["))
            .collect();
        assert_eq!(s_nodes.len(), 2);
    }

    #[test]
    fn repeated_reads_share_a_fetch_node() {
        let kernel = stencil3(32);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        // in[i], in[i+1], in[i+2], two adds, out[i]: 6 nodes.
        assert_eq!(dfg.node_count(), 6);
        assert_eq!(dfg.reference_nodes().len(), 4);
    }

    #[test]
    fn nodes_of_reference_group_the_right_accesses() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let table = kernel.reference_table();
        let d = table.find_by_name("d").unwrap().id();
        assert_eq!(dfg.nodes_of_reference(d).len(), 1);
        let a = table.find_by_name("a").unwrap().id();
        assert_eq!(dfg.nodes_of_reference(a).len(), 1);
    }
}
