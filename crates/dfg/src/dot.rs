//! Graphviz (`dot`) export of data-flow graphs and critical graphs.
//!
//! The paper presents its running example as a drawing (Figure 2(a)/(b)); this module
//! produces the equivalent drawings for any kernel so reproductions and new kernels can
//! be inspected visually:
//!
//! ```text
//! cargo run --example matmul_allocation > mat.txt   # textual form
//! ```
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_dfg::{to_dot, CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
//!
//! let kernel = paper_example();
//! let dfg = DataFlowGraph::from_kernel(&kernel);
//! let analysis = CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
//! let dot = to_dot(&dfg, Some(&analysis));
//! assert!(dot.starts_with("digraph dfg {"));
//! assert!(dot.contains("a[k]"));
//! ```

use crate::critical::CriticalPathAnalysis;
use crate::graph::{DataFlowGraph, NodeKind};

fn escape(label: &str) -> String {
    label.replace('"', "\\\"")
}

/// Renders the DFG in Graphviz `dot` syntax.
///
/// Reference nodes are drawn as boxes and operations as ellipses.  When a
/// [`CriticalPathAnalysis`] is supplied, nodes and edges on the critical graph are
/// highlighted in red and every node is annotated with its latency and slack.
pub fn to_dot(dfg: &DataFlowGraph, analysis: Option<&CriticalPathAnalysis>) -> String {
    let mut out = String::from("digraph dfg {\n  rankdir=TB;\n");
    for node in dfg.nodes() {
        let shape = match node.kind() {
            NodeKind::Reference { .. } => "box",
            NodeKind::Binary { .. } | NodeKind::Unary { .. } => "ellipse",
            NodeKind::Input => "plaintext",
        };
        let mut label = escape(node.label());
        let mut colour = "black";
        if let Some(analysis) = analysis {
            label = format!(
                "{label}\\nlat={} slack={}",
                analysis.latency(node.id()),
                analysis.slack(node.id())
            );
            if analysis.is_critical(node.id()) {
                colour = "red";
            }
        }
        out.push_str(&format!(
            "  n{} [label=\"{}\", shape={}, color={}];\n",
            node.id().index(),
            label,
            shape,
            colour
        ));
    }
    for from in dfg.node_ids() {
        for &to in dfg.successors(from) {
            let critical_edge = analysis
                .map(|a| {
                    a.critical_graph()
                        .edges()
                        .iter()
                        .any(|&(f, t)| f == from && t == to)
                })
                .unwrap_or(false);
            let attrs = if critical_edge {
                " [color=red, penwidth=2]"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} -> n{}{};\n",
                from.index(),
                to.index(),
                attrs
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{LatencyModel, StorageMap};
    use srra_ir::examples::{dot_product, paper_example};

    #[test]
    fn plain_export_lists_every_node_and_edge() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let dot = to_dot(&dfg, None);
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("label=").count(), dfg.node_count());
        assert_eq!(dot.matches(" -> ").count(), dfg.edge_count());
        assert!(dot.contains("b[k][j]"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=ellipse"));
    }

    #[test]
    fn critical_annotation_highlights_the_critical_path() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let dot = to_dot(&dfg, Some(&analysis));
        assert!(dot.contains("color=red"));
        assert!(dot.contains("slack=0"));
        // c[j] is off the critical path and keeps a positive slack annotation.
        assert!(dot.contains("c[j]\\nlat=1 slack="));
    }

    #[test]
    fn works_for_other_kernels() {
        let kernel = dot_product(16);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let dot = to_dot(&dfg, None);
        assert!(dot.contains("s[0]"));
    }
}
