//! Data-flow graph, critical graph and cut enumeration for loop bodies.
//!
//! The CPA-RA algorithm of the DATE'05 paper reasons about the loop body as a
//! **data-flow graph** (DFG) whose nodes are array references and arithmetic
//! operations.  This crate provides:
//!
//! * [`DataFlowGraph`] — the graph itself, built from an `srra-ir` [`srra_ir::Kernel`]
//!   by [`DataFlowGraph::from_kernel`],
//! * [`LatencyModel`] / [`Storage`] — node latencies parameterised by whether each
//!   reference is bound to registers or to a RAM block,
//! * [`CriticalPathAnalysis`] — longest-path analysis, the critical path length
//!   (`T_comp` in the paper) and the **Critical Graph** (the union of all critical
//!   paths),
//! * [`find_cuts`] — enumeration of the minimal reference-node cuts of the critical
//!   graph, the objects CPA-RA promotes one at a time.
//!
//! # Example
//!
//! Reproduce the cut structure of the paper's Figure 2(b):
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_dfg::{CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
//!
//! let kernel = paper_example();
//! let dfg = DataFlowGraph::from_kernel(&kernel);
//! let latency = LatencyModel::default();
//! // With every reference still in RAM, the critical path runs a/b -> op1 -> d -> op2 -> e.
//! let analysis = CriticalPathAnalysis::new(&dfg, &latency, &StorageMap::all_ram());
//! let cuts = srra_dfg::find_cuts(&dfg, analysis.critical_graph());
//! let mut names: Vec<Vec<String>> = cuts
//!     .iter()
//!     .map(|cut| cut.iter().map(|&n| dfg.node(n).label().to_owned()).collect())
//!     .collect();
//! names.iter_mut().for_each(|c| c.sort());
//! assert!(names.contains(&vec!["a[k]".to_owned(), "b[k][j]".to_owned()]));
//! assert!(names.contains(&vec!["d[i][k]".to_owned()]));
//! assert!(names.contains(&vec!["e[i][j][k]".to_owned()]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod critical;
mod cuts;
mod dot;
mod graph;
mod latency;

pub use critical::{CriticalGraph, CriticalPathAnalysis};
pub use cuts::{find_cuts, level_cuts, Cut};
pub use dot::to_dot;
pub use graph::{DataFlowGraph, Node, NodeId, NodeKind};
pub use latency::{LatencyModel, Storage, StorageMap};
