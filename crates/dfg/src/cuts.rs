//! Enumeration of reference-node cuts of the Critical Graph.
//!
//! A *cut* (in the paper's terminology) is a minimal set of reference nodes of the
//! Critical Graph whose removal disconnects every critical path.  Promoting every
//! reference of a cut to registers is therefore guaranteed to shorten *all* critical
//! paths, which is the core idea behind CPA-RA: improving only a subset of the critical
//! paths "would just consume the resources without having any effect on the overall
//! computation time".
//!
//! The enumeration follows the iterative scheme sketched in the paper's footnote
//! (repeatedly pick an unblocked path and branch on its reference nodes), which yields
//! every minimal cut.  The worst case is exponential — as the paper itself notes — but
//! critical graphs of loop bodies are tiny, and the search is additionally capped.

use std::collections::BTreeSet;

use crate::critical::CriticalGraph;
use crate::graph::{DataFlowGraph, NodeId};

/// A cut: a set of reference nodes of the critical graph, sorted by node id.
pub type Cut = Vec<NodeId>;

/// Upper bound on the number of cuts returned by [`find_cuts`].
const MAX_CUTS: usize = 4096;

/// Finds a source-to-sink path of the critical graph that avoids `blocked` reference
/// nodes, if one exists.
fn find_unblocked_path(cg: &CriticalGraph, blocked: &BTreeSet<NodeId>) -> Option<Vec<NodeId>> {
    // Depth-first search from every CG source.
    for &source in cg.sources() {
        if blocked.contains(&source) {
            continue;
        }
        let mut stack = vec![vec![source]];
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        visited.insert(source);
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            let succs = cg.successors(last);
            if succs.is_empty() {
                return Some(path);
            }
            for next in succs {
                if blocked.contains(&next) || visited.contains(&next) {
                    continue;
                }
                visited.insert(next);
                let mut extended = path.clone();
                extended.push(next);
                stack.push(extended);
            }
        }
    }
    None
}

/// Returns `true` when blocking exactly the nodes of `cut` disconnects every
/// source-to-sink path of the critical graph.
fn is_blocking(cg: &CriticalGraph, cut: &BTreeSet<NodeId>) -> bool {
    find_unblocked_path(cg, cut).is_none()
}

fn minimise(cg: &CriticalGraph, cut: &BTreeSet<NodeId>) -> BTreeSet<NodeId> {
    let mut minimal = cut.clone();
    for node in cut {
        let mut candidate = minimal.clone();
        candidate.remove(node);
        if is_blocking(cg, &candidate) {
            minimal = candidate;
        }
    }
    minimal
}

/// Enumerates the minimal reference-node cuts of the critical graph.
///
/// Returns an empty vector when some critical path contains no reference node at all
/// (in that case no register allocation can shorten the critical path).  Cuts are
/// returned sorted by size, then lexicographically, so the output is deterministic.
pub fn find_cuts(dfg: &DataFlowGraph, cg: &CriticalGraph) -> Vec<Cut> {
    let reference_nodes: BTreeSet<NodeId> = cg
        .nodes()
        .iter()
        .copied()
        .filter(|&n| dfg.node(n).reference().is_some())
        .collect();
    if reference_nodes.is_empty() {
        return Vec::new();
    }

    let mut results: Vec<BTreeSet<NodeId>> = Vec::new();
    let mut stack: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new()];
    let mut explored: BTreeSet<BTreeSet<NodeId>> = BTreeSet::new();

    while let Some(partial) = stack.pop() {
        if results.len() >= MAX_CUTS {
            break;
        }
        match find_unblocked_path(cg, &partial) {
            None => {
                let minimal = minimise(cg, &partial);
                if !results.contains(&minimal) {
                    results.push(minimal);
                }
            }
            Some(path) => {
                let candidates: Vec<NodeId> = path
                    .iter()
                    .copied()
                    .filter(|n| reference_nodes.contains(n))
                    .collect();
                if candidates.is_empty() {
                    // This path can never be blocked by reference nodes: no cut exists.
                    return Vec::new();
                }
                for node in candidates {
                    let mut extended = partial.clone();
                    extended.insert(node);
                    if explored.insert(extended.clone()) {
                        stack.push(extended);
                    }
                }
            }
        }
    }

    // Keep only minimal cuts (no other cut is a subset) and sort deterministically.
    let mut cuts: Vec<Cut> = results
        .iter()
        .filter(|cut| {
            !results
                .iter()
                .any(|other| *other != **cut && other.is_subset(cut))
        })
        .map(|cut| cut.iter().copied().collect::<Vec<_>>())
        .collect();
    cuts.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    cuts.dedup();
    cuts
}

/// A cheaper, non-exhaustive alternative to [`find_cuts`] that groups the critical
/// reference nodes by their depth (longest-path level) and keeps the groups that
/// actually block every critical path.
///
/// This is used by the `cut-policy` ablation benchmark to quantify how much the
/// exhaustive enumeration buys over a simple structural heuristic.
pub fn level_cuts(dfg: &DataFlowGraph, cg: &CriticalGraph) -> Vec<Cut> {
    // Level = number of critical-graph edges on the longest CG path ending at the node.
    let mut level: Vec<Option<u64>> = vec![None; dfg.node_count()];
    // Process nodes in ascending id order repeatedly until fixpoint (CG is tiny).
    let mut changed = true;
    while changed {
        changed = false;
        for &node in cg.nodes() {
            let incoming = cg
                .edges()
                .iter()
                .filter(|(_, to)| *to == node)
                .map(|(from, _)| level[from.index()].unwrap_or(0) + 1)
                .max()
                .unwrap_or(0);
            if level[node.index()] != Some(incoming) {
                level[node.index()] = Some(incoming);
                changed = true;
            }
        }
    }

    let mut by_level: std::collections::BTreeMap<u64, BTreeSet<NodeId>> = Default::default();
    for &node in cg.nodes() {
        if dfg.node(node).reference().is_some() {
            by_level
                .entry(level[node.index()].unwrap_or(0))
                .or_default()
                .insert(node);
        }
    }

    let mut cuts = Vec::new();
    for group in by_level.values() {
        if is_blocking(cg, group) {
            let minimal = minimise(cg, group);
            let cut: Cut = minimal.into_iter().collect();
            if !cuts.contains(&cut) {
                cuts.push(cut);
            }
        }
    }
    cuts.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::CriticalPathAnalysis;
    use crate::latency::{LatencyModel, StorageMap};
    use srra_ir::examples::{dot_product, paper_example, stencil3};

    fn labelled_cuts(kernel: &srra_ir::Kernel) -> (DataFlowGraph, Vec<Vec<String>>) {
        let dfg = DataFlowGraph::from_kernel(kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let cuts = find_cuts(&dfg, analysis.critical_graph());
        let mut names: Vec<Vec<String>> = cuts
            .iter()
            .map(|cut| {
                let mut labels: Vec<String> = cut
                    .iter()
                    .map(|&n| dfg.node(n).label().to_owned())
                    .collect();
                labels.sort();
                labels
            })
            .collect();
        names.sort();
        (dfg, names)
    }

    #[test]
    fn paper_example_cuts_match_figure_2b() {
        let kernel = paper_example();
        let (_, names) = labelled_cuts(&kernel);
        assert_eq!(
            names,
            vec![
                vec!["a[k]".to_owned(), "b[k][j]".to_owned()],
                vec!["d[i][k]".to_owned()],
                vec!["e[i][j][k]".to_owned()],
            ]
        );
    }

    #[test]
    fn every_cut_blocks_every_critical_path() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let cg = analysis.critical_graph();
        for cut in find_cuts(&dfg, cg) {
            let blocked: BTreeSet<NodeId> = cut.iter().copied().collect();
            assert!(is_blocking(cg, &blocked));
        }
    }

    #[test]
    fn cuts_are_minimal() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let cg = analysis.critical_graph();
        for cut in find_cuts(&dfg, cg) {
            for drop in &cut {
                let reduced: BTreeSet<NodeId> = cut.iter().copied().filter(|n| n != drop).collect();
                assert!(
                    !is_blocking(cg, &reduced),
                    "cut {cut:?} is not minimal (can drop {drop:?})"
                );
            }
        }
    }

    #[test]
    fn stencil_cuts_cover_the_window_references() {
        let kernel = stencil3(32);
        let (_, names) = labelled_cuts(&kernel);
        assert!(!names.is_empty());
        // The store out[i] alone is always a cut: it is the unique sink.
        assert!(names.contains(&vec!["out[i]".to_owned()]));
    }

    #[test]
    fn dot_product_cuts() {
        let kernel = dot_product(16);
        let (_, names) = labelled_cuts(&kernel);
        // The accumulator write s[0] is the unique sink and forms a singleton cut.
        assert!(names.iter().any(|cut| cut == &vec!["s[0]".to_owned()]));
    }

    #[test]
    fn level_cuts_are_valid_cuts() {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let cg = analysis.critical_graph();
        let level = level_cuts(&dfg, cg);
        assert!(!level.is_empty());
        let exhaustive = find_cuts(&dfg, cg);
        for cut in &level {
            let blocked: BTreeSet<NodeId> = cut.iter().copied().collect();
            assert!(is_blocking(cg, &blocked));
            assert!(exhaustive.contains(cut), "level cut should also be minimal");
        }
        assert!(level.len() <= exhaustive.len());
    }
}
