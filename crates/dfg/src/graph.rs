use serde::{Deserialize, Serialize};
use srra_ir::{AccessKind, ArrayId, BinOp, RefId, UnOp};

/// Identifier of a node within a [`DataFlowGraph`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from its index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The index of the node in the graph's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a data-flow-graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A memory reference (array element transfer).  The node's latency depends on
    /// whether the reference group is bound to registers or to a RAM block.
    Reference {
        /// The reference group this access belongs to.
        ref_id: RefId,
        /// The referenced array.
        array: ArrayId,
        /// Whether the access fetches or stores the element.
        access: AccessKind,
    },
    /// A binary arithmetic/logic operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Index of the statement the operation belongs to.
        statement: usize,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Index of the statement the operation belongs to.
        statement: usize,
    },
    /// A leaf input that never touches memory: a constant, a loop index or an
    /// externally defined scalar.
    Input,
}

impl NodeKind {
    /// Returns the reference group when the node is a memory reference.
    pub fn as_reference(&self) -> Option<RefId> {
        match self {
            NodeKind::Reference { ref_id, .. } => Some(*ref_id),
            _ => None,
        }
    }

    /// Returns `true` for operation nodes (binary or unary).
    pub fn is_operation(&self) -> bool {
        matches!(self, NodeKind::Binary { .. } | NodeKind::Unary { .. })
    }
}

/// A node of the data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    label: String,
}

impl Node {
    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's kind.
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// Human-readable label (e.g. `a[k]` or `mul#0`), used in reports and tests.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Shorthand for [`NodeKind::as_reference`].
    pub fn reference(&self) -> Option<RefId> {
        self.kind.as_reference()
    }

    /// Shorthand for [`NodeKind::is_operation`].
    pub fn is_operation(&self) -> bool {
        self.kind.is_operation()
    }
}

/// A data-flow graph of one loop-body iteration.
///
/// Nodes are memory references, operations and leaf inputs; a directed edge `u -> v`
/// means `v` consumes the value produced by `u`.  The graph is a DAG by construction
/// (expressions are trees and cross-statement edges always point forward in program
/// order).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DataFlowGraph {
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

impl DataFlowGraph {
    /// Creates an empty graph.  Most callers use [`DataFlowGraph::from_kernel`]
    /// (defined in the `build` module) instead.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            label: label.into(),
        });
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    /// Adds a directed edge `from -> to`.  Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.nodes.len(), "unknown source node");
        assert!(to.index() < self.nodes.len(), "unknown sink node");
        if !self.succs[from.index()].contains(&to) {
            self.succs[from.index()].push(to);
            self.preds[to.index()].push(from);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// The node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates over all nodes in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node identifiers in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Successors of a node.
    pub fn successors(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.index()]
    }

    /// Predecessors of a node.
    pub fn predecessors(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.index()]
    }

    /// Nodes without predecessors.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.preds[n.index()].is_empty())
            .collect()
    }

    /// Nodes without successors.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.succs[n.index()].is_empty())
            .collect()
    }

    /// All memory-reference nodes.
    pub fn reference_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.node(*n).reference().is_some())
            .collect()
    }

    /// All operation nodes.
    pub fn operation_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.node(*n).is_operation())
            .collect()
    }

    /// Nodes belonging to the given reference group.
    pub fn nodes_of_reference(&self, ref_id: RefId) -> Vec<NodeId> {
        self.node_ids()
            .filter(|n| self.node(*n).reference() == Some(ref_id))
            .collect()
    }

    /// A topological order of the nodes.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle; graphs built by
    /// [`DataFlowGraph::from_kernel`] are always acyclic.
    pub fn topological_order(&self) -> Vec<NodeId> {
        let mut in_degree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready: Vec<NodeId> = self
            .node_ids()
            .filter(|n| in_degree[n.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = ready.pop() {
            order.push(n);
            for &s in &self.succs[n.index()] {
                in_degree[s.index()] -= 1;
                if in_degree[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(
            order.len(),
            self.nodes.len(),
            "data-flow graph contains a cycle"
        );
        order
    }

    /// Returns `true` when the graph contains no directed cycle.
    pub fn is_acyclic(&self) -> bool {
        let mut in_degree: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut ready: Vec<NodeId> = self
            .node_ids()
            .filter(|n| in_degree[n.index()] == 0)
            .collect();
        let mut seen = 0usize;
        while let Some(n) = ready.pop() {
            seen += 1;
            for &s in &self.succs[n.index()] {
                in_degree[s.index()] -= 1;
                if in_degree[s.index()] == 0 {
                    ready.push(s);
                }
            }
        }
        seen == self.nodes.len()
    }

    /// Returns `true` when `to` is reachable from `from` following edges forward.
    pub fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut visited = vec![false; self.nodes.len()];
        visited[from.index()] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.succs[n.index()] {
                if s == to {
                    return true;
                }
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DataFlowGraph, [NodeId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = DataFlowGraph::new();
        let a = g.add_node(NodeKind::Input, "a");
        let b = g.add_node(NodeKind::Input, "b");
        let c = g.add_node(NodeKind::Input, "c");
        let d = g.add_node(NodeKind::Input, "d");
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn construction_and_queries() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
        assert!(g.is_acyclic());
        assert_eq!(g.node(a).label(), "a");
        assert_eq!(a.to_string(), "n0");
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let (mut g, [a, b, _, _]) = diamond();
        g.add_edge(a, b);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, _) = diamond();
        let order = g.topological_order();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for from in g.node_ids() {
            for &to in g.successors(from) {
                assert!(pos(from) < pos(to));
            }
        }
    }

    #[test]
    fn reachability() {
        let (g, [a, b, c, d]) = diamond();
        assert!(g.reachable(a, d));
        assert!(g.reachable(a, a));
        assert!(!g.reachable(b, c));
        assert!(!g.reachable(d, a));
    }

    #[test]
    fn reference_and_operation_queries_on_empty_kinds() {
        let (g, _) = diamond();
        assert!(g.reference_nodes().is_empty());
        assert!(g.operation_nodes().is_empty());
        assert!(g.nodes_of_reference(RefId::new(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown sink node")]
    fn edge_to_unknown_node_panics() {
        let (mut g, [a, ..]) = diamond();
        g.add_edge(a, NodeId::new(99));
    }
}
