use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use srra_ir::{BinOp, RefId, UnOp};

use crate::graph::{Node, NodeKind};

/// Where the elements of a reference group live during execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Storage {
    /// The elements are held in discrete registers: accesses cost
    /// [`LatencyModel::register_latency`] cycles.
    Register,
    /// The elements stay in a RAM block: accesses cost [`LatencyModel::ram_latency`]
    /// cycles.
    Ram,
}

/// Assignment of a [`Storage`] class to each reference group of a kernel.
///
/// The default ([`StorageMap::all_ram`]) keeps every reference in RAM, which is the
/// state of the computation before any register allocation.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StorageMap {
    placements: HashMap<RefId, Storage>,
}

impl StorageMap {
    /// A map that keeps every reference in RAM (the `v0` baseline).
    pub fn all_ram() -> Self {
        Self::default()
    }

    /// Sets the storage class of a reference.
    pub fn set(&mut self, ref_id: RefId, storage: Storage) {
        self.placements.insert(ref_id, storage);
    }

    /// Returns a copy with the given reference placed in registers.
    #[must_use]
    pub fn with_register(mut self, ref_id: RefId) -> Self {
        self.set(ref_id, Storage::Register);
        self
    }

    /// The storage class of a reference ([`Storage::Ram`] when never set).
    pub fn storage(&self, ref_id: RefId) -> Storage {
        self.placements
            .get(&ref_id)
            .copied()
            .unwrap_or(Storage::Ram)
    }

    /// References currently placed in registers.
    pub fn register_refs(&self) -> Vec<RefId> {
        let mut refs: Vec<RefId> = self
            .placements
            .iter()
            .filter(|(_, s)| **s == Storage::Register)
            .map(|(r, _)| *r)
            .collect();
        refs.sort_unstable();
        refs
    }
}

/// Latencies (in clock cycles) of operations and memory accesses.
///
/// The defaults follow the paper's abstraction: numeric operation latencies are known
/// constants, register accesses are free (the value is already in a flip-flop next to
/// the datapath) and a RAM-block access costs one cycle.  The FPGA model in `srra-fpga`
/// uses the same table for its scheduler, with a configurable RAM latency to explore
/// the paper's "latency of a single access" concurrency argument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    add_like: u64,
    mul: u64,
    div: u64,
    compare: u64,
    logic: u64,
    unary: u64,
    register_latency: u64,
    ram_latency: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            add_like: 1,
            mul: 2,
            div: 8,
            compare: 1,
            logic: 1,
            unary: 1,
            register_latency: 0,
            ram_latency: 1,
        }
    }
}

impl LatencyModel {
    /// Creates the default model (see the type-level documentation).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with a different RAM access latency.
    #[must_use]
    pub fn with_ram_latency(mut self, cycles: u64) -> Self {
        self.ram_latency = cycles;
        self
    }

    /// Returns a copy with a different register access latency.
    #[must_use]
    pub fn with_register_latency(mut self, cycles: u64) -> Self {
        self.register_latency = cycles;
        self
    }

    /// Returns a copy with a different multiplier latency.
    #[must_use]
    pub fn with_mul_latency(mut self, cycles: u64) -> Self {
        self.mul = cycles;
        self
    }

    /// Latency of a RAM-block access.
    pub fn ram_latency(&self) -> u64 {
        self.ram_latency
    }

    /// Latency of a register access.
    pub fn register_latency(&self) -> u64 {
        self.register_latency
    }

    /// Latency of a binary operator.
    pub fn binary_latency(&self, op: BinOp) -> u64 {
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Min | BinOp::Max => self.add_like,
            BinOp::Mul => self.mul,
            BinOp::Div => self.div,
            BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpGt => self.compare,
            BinOp::And | BinOp::Or | BinOp::Xor => self.logic,
            _ => self.add_like,
        }
    }

    /// Latency of a unary operator.
    pub fn unary_latency(&self, _op: UnOp) -> u64 {
        self.unary
    }

    /// Latency of a memory access given the storage class of its reference.
    pub fn access_latency(&self, storage: Storage) -> u64 {
        match storage {
            Storage::Register => self.register_latency,
            Storage::Ram => self.ram_latency,
        }
    }

    /// Latency of an arbitrary DFG node under the given storage assignment.
    pub fn node_latency(&self, node: &Node, storage: &StorageMap) -> u64 {
        match node.kind() {
            NodeKind::Reference { ref_id, .. } => self.access_latency(storage.storage(*ref_id)),
            NodeKind::Binary { op, .. } => self.binary_latency(*op),
            NodeKind::Unary { op, .. } => self.unary_latency(*op),
            NodeKind::Input => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies() {
        let m = LatencyModel::default();
        assert_eq!(m.binary_latency(BinOp::Add), 1);
        assert_eq!(m.binary_latency(BinOp::Mul), 2);
        assert_eq!(m.binary_latency(BinOp::Div), 8);
        assert_eq!(m.binary_latency(BinOp::CmpLt), 1);
        assert_eq!(m.binary_latency(BinOp::Xor), 1);
        assert_eq!(m.unary_latency(UnOp::Neg), 1);
        assert_eq!(m.access_latency(Storage::Ram), 1);
        assert_eq!(m.access_latency(Storage::Register), 0);
    }

    #[test]
    fn builders_override_fields() {
        let m = LatencyModel::new()
            .with_ram_latency(3)
            .with_register_latency(1)
            .with_mul_latency(4);
        assert_eq!(m.ram_latency(), 3);
        assert_eq!(m.register_latency(), 1);
        assert_eq!(m.binary_latency(BinOp::Mul), 4);
    }

    #[test]
    fn storage_map_defaults_to_ram() {
        let map = StorageMap::all_ram();
        assert_eq!(map.storage(RefId::new(0)), Storage::Ram);
        let map = map.with_register(RefId::new(2));
        assert_eq!(map.storage(RefId::new(2)), Storage::Register);
        assert_eq!(map.storage(RefId::new(1)), Storage::Ram);
        assert_eq!(map.register_refs(), vec![RefId::new(2)]);
    }

    #[test]
    fn set_overwrites_previous_placement() {
        let mut map = StorageMap::all_ram();
        map.set(RefId::new(0), Storage::Register);
        map.set(RefId::new(0), Storage::Ram);
        assert_eq!(map.storage(RefId::new(0)), Storage::Ram);
        assert!(map.register_refs().is_empty());
    }
}
