//! Property-based tests for the data-flow graph, critical-path analysis and cut
//! enumeration.

use std::collections::BTreeSet;

use proptest::prelude::*;
use srra_dfg::{
    find_cuts, level_cuts, CriticalPathAnalysis, DataFlowGraph, LatencyModel, NodeId, Storage,
    StorageMap,
};
use srra_ir::{Kernel, KernelBuilder};

/// A family of two-statement kernels whose data-flow shape varies with the parameters.
fn generated_kernel(ni: u64, nj: u64, nk: u64, chain: bool) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let a = b.add_array("a", &[nk], 16);
    let bb = b.add_array("b", &[nk, nj], 16);
    let c = b.add_array("c", &[nj], 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);

    let op1 = b.mul(b.read(a, &[b.idx(k)]), b.read(bb, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    let second_operand = if chain {
        b.read(d, &[b.idx(i), b.idx(k)])
    } else {
        b.read(bb, &[b.idx(k), b.idx(j)])
    };
    let op2 = b.mul(b.read(c, &[b.idx(j)]), second_operand);
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);
    b.build().expect("generated kernel is valid")
}

fn storage_for(dfg: &DataFlowGraph, mask: u32) -> StorageMap {
    let mut storage = StorageMap::all_ram();
    for (bit, node) in dfg.reference_nodes().into_iter().enumerate() {
        if mask & (1 << (bit % 16)) != 0 {
            if let Some(ref_id) = dfg.node(node).reference() {
                storage.set(ref_id, Storage::Register);
            }
        }
    }
    storage
}

fn blocks_all_paths(analysis: &CriticalPathAnalysis, cut: &[NodeId]) -> bool {
    let blocked: BTreeSet<NodeId> = cut.iter().copied().collect();
    // Re-derive path blocking through the public API: every critical path enumerated
    // must contain at least one cut node.
    analysis
        .critical_paths(256)
        .iter()
        .all(|path| path.iter().any(|node| blocked.contains(node)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn graphs_are_acyclic_and_topologically_ordered(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        chain in any::<bool>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        prop_assert!(dfg.is_acyclic());
        let order = dfg.topological_order();
        prop_assert_eq!(order.len(), dfg.node_count());
        let position = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        for node in dfg.node_ids() {
            for &succ in dfg.successors(node) {
                prop_assert!(position(node) < position(succ));
            }
        }
    }

    #[test]
    fn critical_length_bounds_every_node_path(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        chain in any::<bool>(),
        mask in any::<u32>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let storage = storage_for(&dfg, mask);
        let analysis = CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &storage);
        for node in dfg.node_ids() {
            let through = analysis.longest_to(node) + analysis.longest_from(node)
                - analysis.latency(node);
            prop_assert!(through <= analysis.critical_length());
            prop_assert_eq!(analysis.slack(node) == 0, analysis.is_critical(node));
        }
        // Every sink of the critical graph realises the critical length.
        for &sink in analysis.critical_graph().sinks() {
            prop_assert_eq!(analysis.longest_to(sink), analysis.critical_length());
        }
    }

    #[test]
    fn promoting_references_never_lengthens_the_critical_path(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        chain in any::<bool>(),
        mask in any::<u32>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let model = LatencyModel::default();
        let baseline = CriticalPathAnalysis::new(&dfg, &model, &StorageMap::all_ram());
        let promoted = CriticalPathAnalysis::new(&dfg, &model, &storage_for(&dfg, mask));
        prop_assert!(promoted.critical_length() <= baseline.critical_length());
    }

    #[test]
    fn cuts_are_minimal_blockers_of_every_critical_path(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        chain in any::<bool>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let analysis =
            CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let cuts = find_cuts(&dfg, analysis.critical_graph());
        for cut in &cuts {
            prop_assert!(blocks_all_paths(&analysis, cut));
            // Every cut node is a reference node of the critical graph.
            for &node in cut {
                prop_assert!(dfg.node(node).reference().is_some());
                prop_assert!(analysis.critical_graph().contains(node));
            }
            // Minimality: removing any node re-opens some critical path.
            for drop in cut {
                let reduced: Vec<NodeId> =
                    cut.iter().copied().filter(|n| n != drop).collect();
                prop_assert!(!blocks_all_paths(&analysis, &reduced));
            }
        }
        // The level heuristic only ever returns cuts the exhaustive enumeration knows.
        for cut in level_cuts(&dfg, analysis.critical_graph()) {
            prop_assert!(cuts.contains(&cut));
        }
    }
}
