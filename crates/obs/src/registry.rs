//! The name → instrument map.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::MetricsSnapshot;
use crate::span::TraceBuffer;

/// A named set of instruments.
///
/// `counter` / `gauge` / `histogram` get-or-register by name and return an
/// `Arc` handle; callers keep the handle and record through it, so the
/// registry lock is taken only at registration and snapshot time — never on
/// a recording path.
///
/// Two registries matter in practice:
///
/// * [`Registry::global`] — one per process, used by library layers (the
///   explore engine, the sharded store, the wire clients) that outlive any
///   particular server.
/// * per-server registries — each `srra_serve::Server` owns one so per-node
///   request statistics stay per-node even when several servers share a
///   process (as the tests and the cluster bench do).
///
/// Metric names must be non-empty and match `[A-Za-z0-9_]+` (the common
/// subset of JSON-key-safe and Prometheus-safe); registration panics
/// otherwise, since a bad name is a programming error, not runtime input.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    traces: TraceBuffer,
}

fn assert_name(name: &str) {
    assert!(
        !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'),
        "metric names must be non-empty [A-Za-z0-9_]+, got {name:?}"
    );
}

fn get_or_register<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    assert_name(name);
    if let Some(found) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut map = map.write().expect("metrics registry poisoned");
    Arc::clone(map.entry(name.to_owned()).or_default())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_register(&self.counters, name)
    }

    /// Returns the gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_register(&self.gauges, name)
    }

    /// Returns the histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_register(&self.histograms, name)
    }

    /// This registry's span flight recorder (see [`TraceBuffer`]).
    pub fn traces(&self) -> &TraceBuffer {
        &self.traces
    }

    /// Point-in-time copy of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let registry = Registry::new();
        let first = registry.counter("hits_total");
        let second = registry.counter("hits_total");
        first.inc();
        second.add(2);
        assert_eq!(registry.counter("hits_total").get(), 3);
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let registry = Registry::new();
        registry.counter("zeta").inc();
        registry.counter("alpha").inc();
        registry.gauge("depth").set(4);
        registry.histogram("lat_us").record_micros(9);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snapshot.gauge("depth"), Some(4));
        assert_eq!(snapshot.histogram("lat_us").map(|h| h.count()), Some(1));
    }

    #[test]
    #[should_panic(expected = "metric names must be non-empty")]
    fn bad_names_are_rejected_at_registration() {
        Registry::new().counter("nope pas");
    }

    #[test]
    fn the_global_registry_is_one_instance() {
        assert!(std::ptr::eq(Registry::global(), Registry::global()));
    }
}
