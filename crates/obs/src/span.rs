//! Spans and the flight recorder.
//!
//! A [`Span`] is one named, timed slice of a traced request: the server
//! records a root span per traced request plus children for every stage the
//! request passed through (codec parse, in-flight claim/wait, shard lock
//! wait, engine stages, render).  Spans carry wall-clock offsets from a
//! process-wide epoch, so spans recorded by different workers of one process
//! order correctly against each other.
//!
//! The [`TraceBuffer`] is a fixed-capacity flight recorder: a sharded-mutex
//! ring that retains the most recent spans and overwrites the oldest when
//! full.  Traces at/over the slow-query threshold can additionally be
//! [pinned](TraceBuffer::pin) into a small retained set that survives ring
//! churn, so yesterday's p99 outlier is still answerable after a million
//! fast requests have rolled the ring over.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Ring shards of a [`TraceBuffer`]: recording locks one of these, so
/// concurrent workers contend only 1/8th of the time.
const RING_SHARDS: usize = 8;

/// Pinned traces retained per [`TraceBuffer`]; the oldest pin is evicted
/// when a new slow trace arrives at capacity.
const MAX_PINNED_TRACES: usize = 32;

/// Default total span capacity of [`TraceBuffer::default`].
const DEFAULT_CAPACITY: usize = 1024;

/// One named, timed slice of a traced request.
///
/// `start_us` is microseconds since this process's trace epoch (the first
/// observation of time by the tracing layer), so spans from different
/// threads of one process share a timeline; spans merged across *processes*
/// (the cluster waterfall) are comparable only within each node's subtree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// The trace this span belongs to (the wire-propagated trace id).
    pub trace_id: String,
    /// Unique id of this span (unique per process; distinct processes draw
    /// from pid-disjoint ranges so cluster-merged trees do not collide).
    pub span_id: u64,
    /// The parent span's id, or 0 for a root span.
    pub parent_id: u64,
    /// Stage name (`get`, `parse`, `shard_wait`, `cost_model`, ...).
    pub name: String,
    /// Start offset in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Free-form key/value context (`codec=binary`, `shard=3`, ...).
    pub annotations: Vec<(String, String)>,
}

impl Span {
    /// A span of `name` under `parent_id` (0 = root) for `trace_id`.
    pub fn new(trace_id: &str, parent_id: u64, name: &str) -> Self {
        Self {
            trace_id: trace_id.to_owned(),
            span_id: next_span_id(),
            parent_id,
            name: name.to_owned(),
            start_us: 0,
            dur_us: 0,
            annotations: Vec::new(),
        }
    }

    /// Adds one key/value annotation (builder style).
    #[must_use]
    pub fn annotate(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.annotations.push((key.to_owned(), value.to_string()));
        self
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds from the process trace epoch to `at` (0 if `at` precedes
/// the epoch, which only happens for instants captured before the first
/// tracing call).
pub fn epoch_us(at: Instant) -> u64 {
    at.saturating_duration_since(epoch())
        .as_micros()
        .min(u128::from(u64::MAX)) as u64
}

/// The current span-timeline offset in microseconds.
pub fn now_us() -> u64 {
    epoch_us(Instant::now())
}

/// Draws the next process-unique span id.
///
/// Ids start at `pid << 32` so spans recorded by different node *processes*
/// (each with its own counter) land in disjoint ranges and a cluster-merged
/// trace tree keeps every parent/child edge unambiguous.
pub fn next_span_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    NEXT.get_or_init(|| AtomicU64::new((u64::from(std::process::id()) << 32) | 1))
        .fetch_add(1, Ordering::Relaxed)
}

#[derive(Debug, Default)]
struct RingShard {
    /// Completed spans, oldest overwritten first once `slots` reaches the
    /// shard's capacity.
    slots: Vec<Span>,
    /// Next slot to overwrite once full.
    next: usize,
}

/// A fixed-capacity flight recorder of completed [`Span`]s.
///
/// Recording locks one of `RING_SHARDS` ring shards (round-robin, so
/// concurrent workers rarely contend); the ring retains the most recent
/// ~`capacity` spans overall and overwrites the oldest per shard.  A trace
/// worth keeping (a slow query) is [pinned](Self::pin): its spans are copied
/// into a separate retained set of at most `MAX_PINNED_TRACES` traces that
/// ring churn cannot evict.  [`snapshot`](Self::snapshot) answers everything
/// known about one trace id, deduplicated and in timeline order.
#[derive(Debug)]
pub struct TraceBuffer {
    shards: Vec<Mutex<RingShard>>,
    cursor: AtomicUsize,
    per_shard: usize,
    pinned: Mutex<Vec<(String, Vec<Span>)>>,
}

impl Default for TraceBuffer {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl TraceBuffer {
    /// A recorder retaining about `capacity` most-recent completed spans
    /// (rounded up to at least one span per internal shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(RING_SHARDS).max(1);
        Self {
            shards: (0..RING_SHARDS)
                .map(|_| Mutex::new(RingShard::default()))
                .collect(),
            cursor: AtomicUsize::new(0),
            per_shard,
            pinned: Mutex::new(Vec::new()),
        }
    }

    /// Total span capacity of the ring (excluding pinned traces).
    pub fn capacity(&self) -> usize {
        self.per_shard * RING_SHARDS
    }

    /// Records one completed span, overwriting the oldest span in its ring
    /// shard when full.
    pub fn record(&self, span: Span) {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed) % RING_SHARDS;
        let mut shard = self.shards[index].lock().expect("trace ring poisoned");
        if shard.slots.len() < self.per_shard {
            shard.slots.push(span);
        } else {
            let next = shard.next;
            shard.slots[next] = span;
            shard.next = (next + 1) % self.per_shard;
        }
    }

    /// Records a batch of completed spans (one traced request's tree).
    pub fn record_all(&self, spans: Vec<Span>) {
        for span in spans {
            self.record(span);
        }
    }

    /// Pins `trace_id`: copies every span of the trace currently in the ring
    /// into the retained set, merging with an existing pin of the same trace.
    /// At capacity the oldest pinned trace is evicted.  Returns how many
    /// spans the pin now holds.
    pub fn pin(&self, trace_id: &str) -> usize {
        let fresh = self.snapshot_ring(trace_id);
        let mut pinned = self.pinned.lock().expect("pinned traces poisoned");
        if let Some(position) = pinned.iter().position(|(id, _)| id == trace_id) {
            let (_, spans) = &mut pinned[position];
            for span in fresh {
                if !spans.iter().any(|kept| kept.span_id == span.span_id) {
                    spans.push(span);
                }
            }
            let held = spans.len();
            // Re-pinning marks the trace hot again: move it to the back so
            // eviction stays oldest-first.
            let entry = pinned.remove(position);
            pinned.push(entry);
            held
        } else {
            let held = fresh.len();
            pinned.push((trace_id.to_owned(), fresh));
            if pinned.len() > MAX_PINNED_TRACES {
                pinned.remove(0);
            }
            held
        }
    }

    /// Trace ids currently pinned, oldest first.
    pub fn pinned_traces(&self) -> Vec<String> {
        self.pinned
            .lock()
            .expect("pinned traces poisoned")
            .iter()
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Everything known about `trace_id` — ring plus pinned set —
    /// deduplicated by span id and sorted by `(start_us, span_id)`.
    pub fn snapshot(&self, trace_id: &str) -> Vec<Span> {
        let mut spans = self.snapshot_ring(trace_id);
        {
            let pinned = self.pinned.lock().expect("pinned traces poisoned");
            if let Some((_, kept)) = pinned.iter().find(|(id, _)| id == trace_id) {
                for span in kept {
                    if !spans.iter().any(|seen| seen.span_id == span.span_id) {
                        spans.push(span.clone());
                    }
                }
            }
        }
        spans.sort_by_key(|span| (span.start_us, span.span_id));
        spans
    }

    fn snapshot_ring(&self, trace_id: &str) -> Vec<Span> {
        let mut spans = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("trace ring poisoned");
            for span in &shard.slots {
                if span.trace_id == trace_id {
                    spans.push(span.clone());
                }
            }
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: &str, name: &str, start_us: u64) -> Span {
        let mut span = Span::new(trace, 0, name);
        span.start_us = start_us;
        span.dur_us = 5;
        span
    }

    #[test]
    fn span_ids_are_unique_and_epoch_is_monotonic() {
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, b);
        let t0 = now_us();
        let t1 = now_us();
        assert!(t1 >= t0);
        assert_eq!(
            epoch_us(Instant::now() - std::time::Duration::from_secs(3600)),
            0
        );
    }

    #[test]
    fn snapshots_filter_by_trace_and_sort_by_start() {
        let buffer = TraceBuffer::new(64);
        buffer.record(span("t-1", "late", 30));
        buffer.record(span("t-2", "other", 10));
        buffer.record(span("t-1", "early", 20));
        let spans = buffer.snapshot("t-1");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "early");
        assert_eq!(spans[1].name, "late");
        assert!(buffer.snapshot("t-3").is_empty());
    }

    #[test]
    fn the_ring_overwrites_oldest_spans_at_capacity() {
        let buffer = TraceBuffer::new(RING_SHARDS); // one slot per shard
        assert_eq!(buffer.capacity(), RING_SHARDS);
        for index in 0..RING_SHARDS * 3 {
            buffer.record(span("churn", &format!("s{index}"), index as u64));
        }
        let spans = buffer.snapshot("churn");
        assert_eq!(spans.len(), RING_SHARDS, "ring holds exactly its capacity");
        assert!(
            spans
                .iter()
                .all(|span| span.start_us >= (RING_SHARDS * 2) as u64),
            "only the most recent round survives: {spans:?}"
        );
    }

    #[test]
    fn pinned_traces_survive_ring_churn() {
        let buffer = TraceBuffer::new(RING_SHARDS);
        buffer.record(span("slow-1", "root", 1));
        assert_eq!(buffer.pin("slow-1"), 1);
        for index in 0..RING_SHARDS * 4 {
            buffer.record(span("churn", "noise", index as u64));
        }
        assert!(
            buffer.snapshot_ring("slow-1").is_empty(),
            "ring churned over"
        );
        let spans = buffer.snapshot("slow-1");
        assert_eq!(spans.len(), 1, "the pin retained the trace");
        assert_eq!(buffer.pinned_traces(), ["slow-1"]);
    }

    #[test]
    fn repinning_merges_and_eviction_is_oldest_first() {
        let buffer = TraceBuffer::new(64);
        buffer.record(span("twice", "first", 1));
        assert_eq!(buffer.pin("twice"), 1);
        buffer.record(span("twice", "second", 2));
        assert_eq!(buffer.pin("twice"), 2, "re-pin merges without duplicating");
        assert_eq!(buffer.snapshot("twice").len(), 2);

        for index in 0..MAX_PINNED_TRACES + 1 {
            let id = format!("evict-{index}");
            buffer.record(span(&id, "root", index as u64));
            buffer.pin(&id);
        }
        let pinned = buffer.pinned_traces();
        assert_eq!(pinned.len(), MAX_PINNED_TRACES);
        assert!(!pinned.contains(&"twice".to_owned()), "oldest pin evicted");
        assert!(pinned.contains(&format!("evict-{MAX_PINNED_TRACES}")));
    }
}
