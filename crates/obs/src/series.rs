//! The time dimension of the telemetry layer: sampled snapshot rings,
//! delta/rate math, rolling-window SLOs and the background sampler.
//!
//! Every instrument in this crate is *cumulative* — counters only go up,
//! histograms only accumulate — which answers "how many requests ever" but
//! not "how many requests per second right now" or "is p99 degrading".  The
//! types here add that dimension without touching the recording hot paths:
//!
//! * [`SeriesBuffer`] — a fixed-capacity ring of timestamped
//!   [`MetricsSnapshot`] samples.  Feeding it costs one registry snapshot
//!   per interval on a background thread; recorders never see it.
//! * [`SnapshotDelta`] — the difference between two samples: per-window
//!   counter increments (and [rates](SnapshotDelta::rate) per second),
//!   per-window histogram buckets (so `p99` is the window's p99, not the
//!   lifetime's), and last-value gauges.  Deltas merge across nodes exactly
//!   like snapshots do, so a fleet-wide rate is one fold.
//! * [`SloRule`] / [`SloEvaluator`] — rolling-window objectives declared as
//!   text (`serve_op_get_latency_us p99 < 500us over 60s`, or the error-
//!   ratio form `serve_misses_total / serve_requests_total < 1% over 60s`).
//!   Every evaluation of a breached rule increments `obs_slo_breaches_total`
//!   and a transition into breach logs one stderr line; current state is
//!   queryable via [`SloEvaluator::statuses`] and the `obs_slos_breached`
//!   gauge.
//! * [`Registry::start_sampler`] — a background thread sampling a `'static`
//!   registry (e.g. [`Registry::global`]) into a fresh ring; servers with
//!   scoped registries run the same loop inside their own thread scope.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::{Counter, Gauge, HistogramSnapshot};
use crate::registry::Registry;
use crate::snapshot::MetricsSnapshot;
use crate::span::now_us;

/// One timestamped registry sample.
///
/// `at_us` is microseconds since the process trace epoch (the same timeline
/// spans use — see [`crate::now_us`]), so samples and spans order against
/// each other.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesSample {
    /// Sample time in microseconds since the process trace epoch.
    pub at_us: u64,
    /// The cumulative instrument values at that instant.
    pub metrics: MetricsSnapshot,
}

/// A fixed-capacity ring of [`SeriesSample`]s, oldest evicted first.
///
/// Pushing and reading lock one mutex; both happen at sampler/scrape
/// cadence (tens of hertz at most), never on a recording path.
#[derive(Debug)]
pub struct SeriesBuffer {
    capacity: usize,
    samples: Mutex<VecDeque<SeriesSample>>,
}

impl Default for SeriesBuffer {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl SeriesBuffer {
    /// Default ring capacity: at the server's default 1 s interval this
    /// retains two minutes of history.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// Creates a ring retaining the most recent `capacity` samples (at
    /// least 2 — a single sample can answer no delta).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("series ring poisoned").len()
    }

    /// True while no sample has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends `sample`, evicting the oldest at capacity.
    pub fn push(&self, sample: SeriesSample) {
        let mut samples = self.samples.lock().expect("series ring poisoned");
        if samples.len() == self.capacity {
            samples.pop_front();
        }
        samples.push_back(sample);
    }

    /// Stamps `metrics` with the current timeline offset and appends it.
    pub fn record(&self, metrics: MetricsSnapshot) {
        self.push(SeriesSample {
            at_us: now_us(),
            metrics,
        });
    }

    /// The most recent `count` samples, oldest first.
    pub fn last(&self, count: usize) -> Vec<SeriesSample> {
        let samples = self.samples.lock().expect("series ring poisoned");
        let skip = samples.len().saturating_sub(count);
        samples.iter().skip(skip).cloned().collect()
    }

    /// The delta between the newest sample and the oldest sample still
    /// inside `window_us` of it.  `None` until two samples exist (the
    /// sampler is off, or has not ticked twice yet).
    pub fn window_delta(&self, window_us: u64) -> Option<SnapshotDelta> {
        let samples = self.samples.lock().expect("series ring poisoned");
        let newest = samples.back()?;
        let horizon = newest.at_us.saturating_sub(window_us);
        let oldest = samples
            .iter()
            .find(|sample| sample.at_us >= horizon && sample.at_us < newest.at_us)?;
        Some(SnapshotDelta::between(oldest, newest))
    }
}

/// The difference between two [`SeriesSample`]s of one registry.
///
/// `diff` reuses the [`MetricsSnapshot`] shape with window semantics:
/// counters hold the per-window *increment* (saturating, so a restarted
/// peer yields zero, never an underflow), histograms hold the per-window
/// bucket counts (their [`quantile`](HistogramSnapshot::quantile) is the
/// window's quantile), and gauges hold the newer sample's value (gauges
/// have no meaningful difference).  Reusing the shape means deltas merge,
/// render and travel exactly like snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// The older sample's timeline offset in microseconds.
    pub from_us: u64,
    /// The newer sample's timeline offset in microseconds.
    pub to_us: u64,
    /// Per-window increments (counters, histograms) and last values
    /// (gauges).
    pub diff: MetricsSnapshot,
}

impl SnapshotDelta {
    /// The delta from `older` to `newer`.
    ///
    /// Names only the newer sample knows appear with their full value (they
    /// were registered inside the window); names only the older sample
    /// knows are dropped (instruments never deregister in practice).
    pub fn between(older: &SeriesSample, newer: &SeriesSample) -> Self {
        let counters = newer
            .metrics
            .counters
            .iter()
            .map(|(name, value)| {
                let before = older.metrics.counter(name).unwrap_or(0);
                (name.clone(), value.saturating_sub(before))
            })
            .collect();
        let gauges = newer.metrics.gauges.clone();
        let histograms = newer
            .metrics
            .histograms
            .iter()
            .map(|(name, snapshot)| {
                (
                    name.clone(),
                    histogram_diff(older.metrics.histogram(name), snapshot),
                )
            })
            .collect();
        Self {
            from_us: older.at_us,
            to_us: newer.at_us,
            diff: MetricsSnapshot {
                counters,
                gauges,
                histograms,
            },
        }
    }

    /// The window length in microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.to_us.saturating_sub(self.from_us)
    }

    /// Events per second of the counter named `name` over this window;
    /// `None` when the counter is absent or the window is empty.
    pub fn rate(&self, name: &str) -> Option<f64> {
        let elapsed = self.elapsed_us();
        if elapsed == 0 {
            return None;
        }
        self.diff
            .counter(name)
            .map(|delta| (delta as f64) * 1_000_000.0 / (elapsed as f64))
    }

    /// The window's quantile of the histogram named `name`, in
    /// microseconds; `None` when the histogram is absent or recorded
    /// nothing inside the window.
    pub fn quantile(&self, name: &str, fraction: f64) -> Option<u64> {
        let histogram = self.diff.histogram(name)?;
        (histogram.count() > 0).then(|| histogram.quantile(fraction))
    }

    /// Folds another node's delta into this one: counter increments and
    /// gauges sum, histogram windows merge bucket-wise, and the window
    /// bounds widen to cover both.  Merging every node's delta equals the
    /// delta of the merged snapshots — the property the fleet dashboard
    /// depends on.
    pub fn merge(&mut self, other: &SnapshotDelta) {
        self.from_us = if self.elapsed_us() == 0 && self.to_us == 0 {
            other.from_us
        } else {
            self.from_us.min(other.from_us)
        };
        self.to_us = self.to_us.max(other.to_us);
        self.diff.merge(&other.diff);
    }
}

/// The per-window bucket counts: `newer - older`, bucket-wise saturating.
fn histogram_diff(
    older: Option<&HistogramSnapshot>,
    newer: &HistogramSnapshot,
) -> HistogramSnapshot {
    let Some(older) = older else {
        let mut fresh =
            HistogramSnapshot::from_buckets(newer.buckets()).expect("same bucket count");
        for (index, exemplar) in newer.exemplars().iter().enumerate() {
            if let Some(trace) = exemplar {
                fresh.set_exemplar(index, trace.clone());
            }
        }
        return fresh;
    };
    let buckets: Vec<u64> = newer
        .buckets()
        .iter()
        .zip(older.buckets())
        .map(|(now, before)| now.saturating_sub(*before))
        .collect();
    let mut diff = HistogramSnapshot::from_buckets(&buckets).expect("same bucket count");
    // A bucket that saw traffic inside the window keeps the newest exemplar;
    // untouched buckets carry none, so stale exemplars never outlive their
    // window.
    for (index, exemplar) in newer.exemplars().iter().enumerate() {
        if diff.buckets()[index] > 0 {
            if let Some(trace) = exemplar {
                diff.set_exemplar(index, trace.clone());
            }
        }
    }
    diff
}

/// What an [`SloRule`] bounds.
#[derive(Debug, Clone, PartialEq)]
enum SloObjective {
    /// `<histogram> p<NN> < <N>us` — a windowed latency quantile bound.
    Quantile {
        histogram: String,
        fraction: f64,
        max_us: u64,
    },
    /// `<counter> / <counter> < <N>%` — a windowed event-ratio bound.
    Ratio {
        numerator: String,
        denominator: String,
        max_ratio: f64,
    },
}

/// One rolling-window service-level objective, parsed from text.
///
/// Grammar (whitespace-separated):
///
/// ```text
/// <histogram> p<NN> < <bound>(us|ms|s) over <window>(s|ms)
/// <counter> / <counter> < <percent>% over <window>(s|ms)
/// ```
///
/// Examples: `serve_op_get_latency_us p99 < 500us over 60s`,
/// `serve_misses_total / serve_requests_total < 1% over 30s`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// The original spec text, echoed in statuses and log lines.
    text: String,
    objective: SloObjective,
    window_us: u64,
}

/// Parses `500us` / `5ms` / `1.5s` into microseconds.
fn parse_duration_us(raw: &str) -> Result<u64, String> {
    let (digits, scale) = if let Some(d) = raw.strip_suffix("us") {
        (d, 1.0)
    } else if let Some(d) = raw.strip_suffix("ms") {
        (d, 1_000.0)
    } else if let Some(d) = raw.strip_suffix('s') {
        (d, 1_000_000.0)
    } else {
        return Err(format!("`{raw}` needs a us/ms/s suffix"));
    };
    let value: f64 = digits
        .parse()
        .map_err(|_| format!("`{raw}` is not a number with a us/ms/s suffix"))?;
    if value.is_nan() || value < 0.0 {
        return Err(format!("`{raw}` must be non-negative"));
    }
    Ok((value * scale) as u64)
}

impl SloRule {
    /// Parses one SLO spec (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// A user-facing message naming the malformed part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let tokens: Vec<&str> = spec.split_whitespace().collect();
        let err = |what: &str| format!("bad SLO `{spec}`: {what}");
        match tokens.as_slice() {
            [histogram, quantile, lt, bound, over, window]
                if *lt == "<" && *over == "over" && quantile.starts_with('p') =>
            {
                // Digits past the second are precision: p50 is the median,
                // p99 the 99th percentile, p999 the 99.9th.
                let digits = &quantile[1..];
                let rank: u64 = digits
                    .parse()
                    .map_err(|_| err("the quantile must be p<digits>, e.g. p99"))?;
                let fraction = (rank as f64) / 10f64.powi(digits.len() as i32);
                let max_us = parse_duration_us(bound).map_err(|e| err(&e))?;
                let window_us = parse_duration_us(window).map_err(|e| err(&e))?;
                Ok(Self {
                    text: tokens.join(" "),
                    objective: SloObjective::Quantile {
                        histogram: (*histogram).to_owned(),
                        fraction,
                        max_us,
                    },
                    window_us,
                })
            }
            [numerator, slash, denominator, lt, percent, over, window]
                if *slash == "/" && *lt == "<" && *over == "over" =>
            {
                let digits = percent
                    .strip_suffix('%')
                    .ok_or_else(|| err("the ratio bound needs a % suffix"))?;
                let value: f64 = digits
                    .parse()
                    .map_err(|_| err("the ratio bound must be a number with a % suffix"))?;
                let window_us = parse_duration_us(window).map_err(|e| err(&e))?;
                Ok(Self {
                    text: tokens.join(" "),
                    objective: SloObjective::Ratio {
                        numerator: (*numerator).to_owned(),
                        denominator: (*denominator).to_owned(),
                        max_ratio: value / 100.0,
                    },
                    window_us,
                })
            }
            _ => Err(err(
                "want `<histogram> p<NN> < <N>us over <N>s` or `<counter> / <counter> < <N>% over <N>s`",
            )),
        }
    }

    /// The original spec text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The rolling window in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Evaluates this rule against `series`: `None` while the window holds
    /// too little data to judge (fewer than two samples, the histogram saw
    /// no traffic, or the denominator stayed zero), else the observed value
    /// (µs or ratio) and whether it breaches the bound.
    pub fn evaluate(&self, series: &SeriesBuffer) -> Option<(f64, bool)> {
        let delta = series.window_delta(self.window_us)?;
        match &self.objective {
            SloObjective::Quantile {
                histogram,
                fraction,
                max_us,
            } => {
                let value = delta.quantile(histogram, *fraction)? as f64;
                Some((value, value >= *max_us as f64))
            }
            SloObjective::Ratio {
                numerator,
                denominator,
                max_ratio,
            } => {
                let den = delta.diff.counter(denominator)?;
                if den == 0 {
                    return None;
                }
                let num = delta.diff.counter(numerator).unwrap_or(0);
                let ratio = (num as f64) / (den as f64);
                Some((ratio, ratio >= *max_ratio))
            }
        }
    }
}

/// One rule's most recent evaluation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The rule's spec text.
    pub rule: String,
    /// The observed value (µs for quantile rules, a 0–1 ratio for ratio
    /// rules); `None` while the window holds too little data to judge.
    pub value: Option<f64>,
    /// Whether the rule is currently in breach.
    pub breached: bool,
}

/// Evaluates a set of [`SloRule`]s against a [`SeriesBuffer`] and accounts
/// the outcomes.
///
/// Every evaluation tick of a breached rule increments
/// `obs_slo_breaches_total` (in the registry given at construction) and the
/// `obs_slos_breached` gauge tracks how many rules are currently breaching;
/// a transition into breach additionally logs one stderr line, so a
/// sustained breach costs one line, not one per tick.
#[derive(Debug)]
pub struct SloEvaluator {
    rules: Vec<SloRule>,
    breaches: Arc<Counter>,
    breached_now: Arc<Gauge>,
    /// Last evaluation per rule, for queries and transition detection.
    statuses: Mutex<Vec<SloStatus>>,
}

impl SloEvaluator {
    /// An evaluator over `rules`, accounting into `registry`.
    pub fn new(rules: Vec<SloRule>, registry: &Registry) -> Self {
        let statuses = rules
            .iter()
            .map(|rule| SloStatus {
                rule: rule.text().to_owned(),
                value: None,
                breached: false,
            })
            .collect();
        Self {
            rules,
            breaches: registry.counter("obs_slo_breaches_total"),
            breached_now: registry.gauge("obs_slos_breached"),
            statuses: Mutex::new(statuses),
        }
    }

    /// Whether any rules were declared.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against `series`, updating the breach counter,
    /// the breached gauge and the queryable statuses.
    pub fn evaluate(&self, series: &SeriesBuffer) {
        let mut statuses = self.statuses.lock().expect("slo statuses poisoned");
        let mut breached_count = 0i64;
        for (rule, status) in self.rules.iter().zip(statuses.iter_mut()) {
            let outcome = rule.evaluate(series);
            let breached = matches!(outcome, Some((_, true)));
            if breached {
                self.breaches.inc();
                breached_count += 1;
                if !status.breached {
                    let (value, _) = outcome.expect("breached implies evaluated");
                    eprintln!(
                        "srra-obs slo-breach: rule=\"{}\" observed={value:.3}",
                        rule.text()
                    );
                }
            }
            status.value = outcome.map(|(value, _)| value);
            status.breached = breached;
        }
        self.breached_now.set(breached_count);
    }

    /// The most recent evaluation of every rule, in declaration order.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.statuses.lock().expect("slo statuses poisoned").clone()
    }
}

/// Handle of a background sampler thread started by
/// [`Registry::start_sampler`]; dropping it stops and joins the thread.
#[derive(Debug)]
pub struct Sampler {
    series: Arc<SeriesBuffer>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sampler {
    /// The ring the sampler feeds.
    pub fn series(&self) -> &Arc<SeriesBuffer> {
        &self.series
    }

    /// Stops the sampler thread and waits for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.halt();
    }
}

impl Registry {
    /// Starts a background thread sampling this registry into a fresh
    /// [`SeriesBuffer`] of `capacity` every `interval` (one immediate
    /// sample, then one per tick).  Requires a `'static` registry —
    /// [`Registry::global`] or a leaked one; servers with scoped registries
    /// run the same loop inside their own thread scope instead.
    ///
    /// The sampler costs the recording hot paths nothing: it only takes
    /// read-locked snapshots, on its own thread.
    pub fn start_sampler(&'static self, interval: Duration, capacity: usize) -> Sampler {
        let series = Arc::new(SeriesBuffer::new(capacity));
        let stop = Arc::new(AtomicBool::new(false));
        let ring = Arc::clone(&series);
        let halt = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(1));
        let thread = std::thread::spawn(move || {
            ring.record(self.snapshot());
            let slice = interval.min(Duration::from_millis(50));
            let mut next = std::time::Instant::now() + interval;
            while !halt.load(Ordering::SeqCst) {
                std::thread::sleep(slice);
                if std::time::Instant::now() < next {
                    continue;
                }
                next += interval;
                ring.record(self.snapshot());
            }
        });
        Sampler {
            series,
            stop,
            thread: Some(thread),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_us: u64, build: impl FnOnce(&Registry)) -> SeriesSample {
        let registry = Registry::new();
        build(&registry);
        SeriesSample {
            at_us,
            metrics: registry.snapshot(),
        }
    }

    #[test]
    fn ring_evicts_oldest_and_answers_last_n() {
        let ring = SeriesBuffer::new(3);
        assert!(ring.is_empty());
        for at in 0..5u64 {
            ring.push(sample(at, |_| {}));
        }
        assert_eq!(ring.len(), 3);
        let last = ring.last(2);
        assert_eq!(
            last.iter().map(|s| s.at_us).collect::<Vec<_>>(),
            [3, 4],
            "oldest first among the newest two"
        );
        assert_eq!(ring.last(10).len(), 3);
    }

    #[test]
    fn deltas_compute_rates_window_quantiles_and_gauge_last_values() {
        let older = sample(1_000_000, |r| {
            r.counter("requests_total").add(100);
            r.gauge("open").set(3);
            r.histogram("lat_us").record_micros(40);
        });
        let newer = sample(3_000_000, |r| {
            r.counter("requests_total").add(160);
            r.gauge("open").set(7);
            let lat = r.histogram("lat_us");
            lat.record_micros(40);
            lat.record_micros(5_000);
            lat.record_micros(5_000);
        });
        let delta = SnapshotDelta::between(&older, &newer);
        assert_eq!(delta.elapsed_us(), 2_000_000);
        assert_eq!(delta.diff.counter("requests_total"), Some(60));
        assert_eq!(delta.rate("requests_total"), Some(30.0));
        assert_eq!(delta.diff.gauge("open"), Some(7), "gauges are last-value");
        // The window histogram holds only the two 5 ms samples: its p50 is
        // the 5 ms bucket, though the lifetime p50 would be the 40 µs one.
        assert_eq!(delta.quantile("lat_us", 0.5), Some(8_191));
        assert_eq!(delta.rate("nope"), None);
        assert_eq!(delta.quantile("nope", 0.5), None);
    }

    #[test]
    fn deltas_saturate_instead_of_underflowing_on_restart() {
        let older = sample(0, |r| {
            r.counter("requests_total").add(500);
            r.histogram("lat_us").record_micros(40);
            r.histogram("lat_us").record_micros(40);
        });
        let newer = sample(1_000_000, |r| {
            r.counter("requests_total").add(80);
            r.histogram("lat_us").record_micros(40);
        });
        let delta = SnapshotDelta::between(&older, &newer);
        assert_eq!(delta.diff.counter("requests_total"), Some(0));
        assert_eq!(delta.rate("requests_total"), Some(0.0));
        assert_eq!(delta.diff.histogram("lat_us").unwrap().count(), 0);
    }

    #[test]
    fn window_delta_picks_the_oldest_sample_inside_the_window() {
        let ring = SeriesBuffer::new(8);
        for at in 0..5u64 {
            let total = 10 * (at + 1);
            ring.push(sample(at * 1_000_000, move |r| {
                r.counter("requests_total").add(total);
            }));
        }
        // A 2 s window over samples at 0..4 s spans [2 s, 4 s]: 50 - 30.
        let delta = ring.window_delta(2_000_000).expect("enough samples");
        assert_eq!(delta.from_us, 2_000_000);
        assert_eq!(delta.to_us, 4_000_000);
        assert_eq!(delta.diff.counter("requests_total"), Some(20));
        // A huge window reaches back to the oldest retained sample.
        let all = ring.window_delta(u64::MAX).expect("enough samples");
        assert_eq!(all.diff.counter("requests_total"), Some(40));
        // One sample answers nothing.
        let lone = SeriesBuffer::new(4);
        lone.push(sample(0, |_| {}));
        assert!(lone.window_delta(u64::MAX).is_none());
    }

    #[test]
    fn merging_node_deltas_equals_delta_of_merged_snapshots() {
        let a_old = sample(1_000, |r| {
            r.counter("requests_total").add(10);
            r.histogram("lat_us").record_micros(40);
        });
        let a_new = sample(2_000, |r| {
            r.counter("requests_total").add(25);
            r.histogram("lat_us").record_micros(40);
            r.histogram("lat_us").record_micros(9_000);
        });
        let b_old = sample(1_000, |r| {
            r.counter("requests_total").add(4);
            r.gauge("open").set(1);
        });
        let b_new = sample(2_000, |r| {
            r.counter("requests_total").add(9);
            r.gauge("open").set(2);
        });
        let mut merged_deltas = SnapshotDelta::between(&a_old, &a_new);
        merged_deltas.merge(&SnapshotDelta::between(&b_old, &b_new));

        let mut old_merged = a_old.clone();
        old_merged.metrics.merge(&b_old.metrics);
        let mut new_merged = a_new.clone();
        new_merged.metrics.merge(&b_new.metrics);
        let delta_of_merged = SnapshotDelta::between(&old_merged, &new_merged);
        assert_eq!(merged_deltas, delta_of_merged);
        assert_eq!(merged_deltas.diff.counter("requests_total"), Some(20));
        assert_eq!(merged_deltas.diff.gauge("open"), Some(2));
    }

    #[test]
    fn slo_specs_parse_and_reject() {
        let rule = SloRule::parse("serve_op_get_latency_us p99 < 500us over 60s").unwrap();
        assert_eq!(rule.window_us(), 60_000_000);
        assert_eq!(rule.text(), "serve_op_get_latency_us p99 < 500us over 60s");
        let ratio =
            SloRule::parse("serve_misses_total / serve_requests_total < 1% over 500ms").unwrap();
        assert_eq!(ratio.window_us(), 500_000);
        assert!(SloRule::parse("p99 < 500us").is_err());
        assert!(SloRule::parse("lat_us q99 < 500us over 60s").is_err());
        assert!(
            SloRule::parse("lat_us p99 < 500 over 60s").is_err(),
            "bound needs a unit"
        );
        assert!(
            SloRule::parse("a / b < 1 over 60s").is_err(),
            "ratio needs a %"
        );
        assert!(SloRule::parse("lat_us pXX < 1ms over 60s").is_err());
        // Digits past the second are precision: p999 is the 99.9th percentile.
        assert!(SloRule::parse("lat_us p999 < 1ms over 60s").is_ok());
    }

    #[test]
    fn slo_evaluator_counts_breaches_and_reports_status() {
        let registry = Registry::new();
        let evaluator = SloEvaluator::new(
            vec![
                SloRule::parse("lat_us p50 < 100us over 60s").unwrap(),
                SloRule::parse("errors_total / requests_total < 10% over 60s").unwrap(),
            ],
            &registry,
        );
        let ring = SeriesBuffer::new(8);

        // Too little data: nothing breaches, nothing is judged.
        evaluator.evaluate(&ring);
        assert!(evaluator.statuses().iter().all(|s| s.value.is_none()));
        assert_eq!(registry.counter("obs_slo_breaches_total").get(), 0);

        ring.push(sample(0, |r| {
            r.counter("requests_total").add(0);
            r.counter("errors_total").add(0);
        }));
        ring.push(sample(1_000_000, |r| {
            r.histogram("lat_us").record_micros(5_000);
            r.counter("requests_total").add(100);
            r.counter("errors_total").add(25);
        }));
        evaluator.evaluate(&ring);
        let statuses = evaluator.statuses();
        assert!(statuses[0].breached, "{statuses:?}");
        assert!(statuses[1].breached, "{statuses:?}");
        assert_eq!(statuses[1].value, Some(0.25));
        assert_eq!(registry.counter("obs_slo_breaches_total").get(), 2);
        assert_eq!(registry.gauge("obs_slos_breached").get(), 2);

        // A healthy window clears the gauge but keeps the breach total.
        ring.push(sample(2_000_000, |r| {
            r.histogram("lat_us").record_micros(5_000);
            r.histogram("lat_us").record_micros(10);
            let lat = r.histogram("lat_us");
            for _ in 0..30 {
                lat.record_micros(10);
            }
            r.counter("requests_total").add(1_000);
            r.counter("errors_total").add(25);
        }));
        // Rebuild the ring so the window only sees the healthy tail.
        let healthy = SeriesBuffer::new(8);
        healthy.push(sample(1_000_000, |r| {
            r.counter("requests_total").add(100);
            r.counter("errors_total").add(25);
            r.histogram("lat_us").record_micros(5_000);
        }));
        healthy.push(sample(2_000_000, |r| {
            r.counter("requests_total").add(1_100);
            r.counter("errors_total").add(25);
            let lat = r.histogram("lat_us");
            lat.record_micros(5_000);
            for _ in 0..99 {
                lat.record_micros(10);
            }
        }));
        evaluator.evaluate(&healthy);
        let statuses = evaluator.statuses();
        assert!(!statuses[0].breached, "{statuses:?}");
        assert!(!statuses[1].breached, "{statuses:?}");
        assert_eq!(registry.gauge("obs_slos_breached").get(), 0);
        assert_eq!(
            registry.counter("obs_slo_breaches_total").get(),
            2,
            "the breach total is monotone"
        );
    }

    #[test]
    fn the_background_sampler_feeds_its_ring() {
        // `start_sampler` needs a 'static registry; leak a private one so
        // the test does not race other tests over `Registry::global`.
        let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
        registry.counter("ticks_total").add(5);
        let sampler = registry.start_sampler(Duration::from_millis(5), 16);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sampler.series().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sampler.series().len() >= 2, "sampler never ticked twice");
        let last = sampler.series().last(1).remove(0);
        assert_eq!(last.metrics.counter("ticks_total"), Some(5));
        sampler.stop();
    }
}
