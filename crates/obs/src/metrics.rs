//! The instruments: counters, gauges, latency histograms and span timers.
//!
//! Everything here is a plain atomic recorded with `Ordering::Relaxed` —
//! telemetry needs eventual visibility, not synchronisation, and the relaxed
//! loads/stores compile to single unlocked instructions on the hot path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of latency buckets: bucket 0 holds sub-microsecond samples, bucket
/// `i` (for `i >= 1`) holds samples in `[2^(i-1), 2^i)` microseconds, and the
/// last bucket saturates everything from ~17 seconds up.
pub const LATENCY_BUCKETS: usize = 26;

/// Bucket index for a sample of `micros` microseconds.
///
/// This is the exact bucketing the serve layer's `stats` op has always used:
/// the position of the highest set bit, saturated to the last bucket.
fn bucket_index(micros: u64) -> usize {
    (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
}

/// Inclusive upper bound, in microseconds, of bucket `index`.
fn bucket_bound(index: usize) -> u64 {
    (1u64 << index) - 1
}

/// A monotonically increasing event count.
///
/// Handles are shared via `Arc` (see [`crate::Registry`]); recording is a
/// single relaxed `fetch_add`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed value that can move in both directions (queue depths, open
/// connection counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value`.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket power-of-two-microsecond latency histogram.
///
/// Recording is one relaxed `fetch_add` into the bucket owning the sample's
/// highest set bit; quantiles are answered as the inclusive upper bound of
/// the bucket containing the requested rank, so `quantile(0.5)` of a
/// histogram full of 40 µs samples reports 63 µs — a deliberate trade of
/// resolution for a zero-contention hot path.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    /// Last trace id that landed in each bucket (exemplars).  Only traced
    /// recordings touch this mutex; the untraced hot path stays lock-free.
    exemplars: Mutex<[Option<String>; LATENCY_BUCKETS]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: Mutex::new(std::array::from_fn(|_| None)),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one elapsed duration.
    pub fn record(&self, elapsed: Duration) {
        self.record_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample of `micros` microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one elapsed duration attributed to `trace_id`: the sample's
    /// bucket remembers the id as its exemplar, so a quantile spike in a
    /// scrape links straight to a replayable trace.
    pub fn record_traced(&self, elapsed: Duration, trace_id: &str) {
        let micros = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let index = bucket_index(micros);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        let mut exemplars = self.exemplars.lock().expect("exemplars poisoned");
        exemplars[index] = Some(trace_id.to_owned());
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .sum()
    }

    /// Upper bound, in microseconds, of the bucket containing the sample at
    /// rank `fraction` (0.0 ..= 1.0).  Returns 0 for an empty histogram.
    pub fn quantile(&self, fraction: f64) -> u64 {
        self.snapshot().quantile(fraction)
    }

    /// Point-in-time copy of the bucket counts.
    ///
    /// Buckets are read individually (not atomically as a set); a snapshot
    /// taken concurrently with recorders may be mid-update by a sample or
    /// two, which is fine for telemetry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|index| self.buckets[index].load(Ordering::Relaxed)),
            exemplars: self.exemplars.lock().expect("exemplars poisoned").clone(),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s bucket counts.
///
/// Snapshots are what travel: over the wire in the `metrics` op, across
/// nodes when the cluster client aggregates a fleet-wide scrape (bucket-wise
/// [`merge`](Self::merge)), and into the exposition renderers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    buckets: [u64; LATENCY_BUCKETS],
    /// Last trace id per bucket; absent buckets carry `None`.
    exemplars: [Option<String>; LATENCY_BUCKETS],
}

impl HistogramSnapshot {
    /// Builds a snapshot from raw bucket counts as carried on the wire.
    ///
    /// Accepts up to [`LATENCY_BUCKETS`] counts (shorter slices are
    /// zero-padded, so older peers with fewer buckets still merge); returns
    /// `None` for longer slices, which cannot be represented.  The snapshot
    /// starts with no exemplars; wire decoders that carry them attach each
    /// via [`set_exemplar`](Self::set_exemplar).
    pub fn from_buckets(counts: &[u64]) -> Option<Self> {
        if counts.len() > LATENCY_BUCKETS {
            return None;
        }
        let mut buckets = [0u64; LATENCY_BUCKETS];
        buckets[..counts.len()].copy_from_slice(counts);
        Some(Self {
            buckets,
            exemplars: std::array::from_fn(|_| None),
        })
    }

    /// The raw per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The per-bucket exemplars (last trace id that landed in each bucket).
    pub fn exemplars(&self) -> &[Option<String>] {
        &self.exemplars
    }

    /// Attaches `trace_id` as bucket `index`'s exemplar.  Out-of-range
    /// indices are ignored (a newer peer may know more buckets).
    pub fn set_exemplar(&mut self, index: usize, trace_id: String) {
        if let Some(slot) = self.exemplars.get_mut(index) {
            *slot = Some(trace_id);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper bound, in microseconds, of the bucket containing the sample at
    /// rank `fraction` (0.0 ..= 1.0).  Returns 0 for an empty snapshot.
    pub fn quantile(&self, fraction: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * fraction).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return bucket_bound(index);
            }
        }
        bucket_bound(LATENCY_BUCKETS - 1)
    }

    /// Adds `other`'s samples bucket-wise (saturating).  A bucket keeps its
    /// own exemplar and adopts `other`'s only where it has none.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        for (mine, theirs) in self.exemplars.iter_mut().zip(other.exemplars.iter()) {
            if mine.is_none() {
                mine.clone_from(theirs);
            }
        }
    }
}

/// Scoped timer recording its lifetime into a [`Histogram`] on drop.
///
/// ```
/// # let histogram = srra_obs::Histogram::new();
/// {
///     let _span = srra_obs::SpanTimer::start(&histogram);
///     // ... timed work ...
/// }
/// assert_eq!(histogram.count(), 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a> {
    histogram: &'a Histogram,
    started: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing; the elapsed time is recorded when the timer drops.
    pub fn start(histogram: &'a Histogram) -> Self {
        Self {
            histogram,
            started: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_move_as_told() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);

        let gauge = Gauge::new();
        gauge.inc();
        gauge.inc();
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        gauge.set(-7);
        assert_eq!(gauge.get(), -7);
    }

    #[test]
    fn histogram_buckets_by_highest_set_bit() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let histogram = Histogram::new();
        assert_eq!(histogram.quantile(0.5), 0, "empty histogram answers zero");
        for _ in 0..90 {
            histogram.record_micros(40);
        }
        for _ in 0..10 {
            histogram.record_micros(5_000);
        }
        assert_eq!(histogram.count(), 100);
        assert_eq!(
            histogram.quantile(0.5),
            63,
            "40 µs lives in the [32, 64) bucket"
        );
        assert_eq!(
            histogram.quantile(0.99),
            8_191,
            "5 ms lives in the [4096, 8192) bucket"
        );
    }

    #[test]
    fn snapshots_merge_bucket_wise() {
        let a = Histogram::new();
        a.record_micros(10);
        let b = Histogram::new();
        b.record_micros(10);
        b.record_micros(100_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.buckets()[bucket_index(10)], 2);
        assert_eq!(merged.buckets()[bucket_index(100_000)], 1);
    }

    #[test]
    fn short_wire_bucket_arrays_zero_pad_and_long_ones_are_rejected() {
        let snapshot = HistogramSnapshot::from_buckets(&[3, 1]).expect("short is fine");
        assert_eq!(snapshot.count(), 4);
        assert_eq!(snapshot.buckets().len(), LATENCY_BUCKETS);
        assert!(HistogramSnapshot::from_buckets(&[0; LATENCY_BUCKETS + 1]).is_none());
    }

    #[test]
    fn traced_recordings_stamp_bucket_exemplars() {
        let histogram = Histogram::new();
        histogram.record_micros(40);
        histogram.record_traced(Duration::from_micros(40), "req-a");
        histogram.record_traced(Duration::from_micros(45), "req-b");
        histogram.record_traced(Duration::from_micros(5_000), "req-slow");
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.buckets()[bucket_index(40)], 3);
        assert_eq!(
            snapshot.exemplars()[bucket_index(40)].as_deref(),
            Some("req-b"),
            "the last trace to land in the bucket wins"
        );
        assert_eq!(
            snapshot.exemplars()[bucket_index(5_000)].as_deref(),
            Some("req-slow")
        );
        assert!(
            snapshot.exemplars()[0].is_none(),
            "untouched buckets stay bare"
        );

        // Merging keeps own exemplars, adopts the other's where absent.
        let other = Histogram::new();
        other.record_traced(Duration::from_micros(40), "req-other");
        other.record_traced(Duration::from_micros(2), "req-tiny");
        let mut merged = snapshot.clone();
        merged.merge(&other.snapshot());
        assert_eq!(
            merged.exemplars()[bucket_index(40)].as_deref(),
            Some("req-b")
        );
        assert_eq!(
            merged.exemplars()[bucket_index(2)].as_deref(),
            Some("req-tiny")
        );

        // Wire-side attachment round-trips; out-of-range indices are ignored.
        let mut wire = HistogramSnapshot::from_buckets(&[1]).expect("short is fine");
        wire.set_exemplar(0, "req-wire".to_owned());
        wire.set_exemplar(LATENCY_BUCKETS + 5, "nope".to_owned());
        assert_eq!(wire.exemplars()[0].as_deref(), Some("req-wire"));
    }

    #[test]
    fn span_timer_records_on_drop() {
        let histogram = Histogram::new();
        {
            let _span = SpanTimer::start(&histogram);
        }
        assert_eq!(histogram.count(), 1);
    }
}
