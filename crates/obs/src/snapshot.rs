//! Point-in-time metric sets: merging and exposition.

use std::collections::BTreeMap;

use crate::metrics::HistogramSnapshot;

/// Whether `name` is a legal metric name (`[A-Za-z0-9_]+`, non-empty).
///
/// [`crate::Registry`] enforces this at registration; wire decoders use it
/// to validate names arriving from peers before rendering them back out.
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// A point-in-time copy of a [`crate::Registry`], sorted by name.
///
/// Snapshots merge — across the per-server and global registries of one
/// process, and across nodes when the cluster client aggregates a
/// fleet-wide scrape — and render to one JSON object (the `metrics` op's
/// reply body) or a Prometheus-style text exposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram bucket sets, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Human description of a metric, emitted as its `# HELP` exposition line.
///
/// Load-bearing names get specific text; everything else falls back on its
/// naming-convention shape, so a freshly added instrument is never left
/// without a HELP line.
fn help_for(name: &str) -> &'static str {
    match name {
        "serve_connections_total" => return "Connections accepted by the serve listener.",
        "serve_requests_total" => return "Requests handled, across every op and codec.",
        "serve_hits_total" => return "Store lookups answered from a shard.",
        "serve_misses_total" => return "Store lookups that missed every shard.",
        "serve_evaluated_total" => return "Design points evaluated on demand.",
        "serve_traced_requests_total" => return "Requests carrying a trace id.",
        "serve_pinned_traces_total" => {
            return "Slow traces pinned into the flight recorder's retained set."
        }
        "serve_slow_queries_total" => return "Requests at or over the --slow-query-us threshold.",
        "serve_idle_reaped_total" => {
            return "Connections closed after exceeding the --idle-timeout-secs deadline."
        }
        "serve_open_connections" => return "Currently open client connections.",
        "serve_codec_binary_total" => return "Requests decoded from binary wire frames.",
        "serve_codec_json_total" => return "Requests decoded from JSON lines.",
        "serve_inflight_claims_total" => {
            return "In-flight table claims taken (first evaluator of a point)."
        }
        "serve_inflight_waits_total" => {
            return "Waits behind another request's in-flight evaluation of the same point."
        }
        "serve_codec_parse_us" => return "Request parse time in microseconds.",
        "serve_codec_render_us" => return "Reply render time in microseconds.",
        "explore_evaluations_total" => return "Design points evaluated by the explore engine.",
        "explore_infeasible_total" => return "Design points found infeasible by their allocator.",
        "explore_store_reads_total" => return "Result-store lookups by the explore engine.",
        "explore_store_writes_total" => return "Result-store write-backs by the explore engine.",
        "explore_reuse_analysis_us" => return "Reuse-analysis stage time in microseconds.",
        "explore_allocation_us" => return "Register-allocation stage time in microseconds.",
        "explore_cost_model_us" => return "Cost-model stage time in microseconds.",
        "store_shard_reads_total" => return "Shard read-lock acquisitions.",
        "store_shard_writes_total" => return "Shard write-lock acquisitions.",
        "store_shard_read_wait_us" => return "Shard read-lock wait in microseconds.",
        "store_shard_write_wait_us" => return "Shard write-lock wait in microseconds.",
        "store_rehydrate_us" => return "Startup shard re-hydration time in microseconds.",
        "store_torn_segments_total" => return "Torn segment tails truncated away at open.",
        "client_connects_total" => return "Sockets opened by the wire client.",
        "client_reconnect_retries_total" => return "Stale-socket reconnect-and-retry round trips.",
        "cluster_requests_routed_total" => {
            return "Node calls routed successfully by the cluster client."
        }
        "cluster_node_failures_total" => return "Nodes marked down after an I/O failure.",
        "cluster_node_recoveries_total" => return "Nodes recovered from a down mark.",
        "cluster_backoff_fastfails_total" => {
            return "Calls failed fast inside a reconnect back-off window."
        }
        "cluster_failover_requeues_total" => {
            return "Batch items re-queued to a replica successor."
        }
        "cluster_tee_stored_total" => return "Replica-tee records newly stored.",
        "cluster_tee_failures_total" => return "Replica-tee calls that failed.",
        "cluster_timeouts_total" => return "Node calls failed by an I/O deadline expiry.",
        "cluster_read_repairs_total" => {
            return "Replica-served reads teed back to their primary (read-repair)."
        }
        "cluster_repair_records_total" => return "Records copied by anti-entropy repair.",
        "cluster_nodes_down" => return "Nodes currently marked down by health tracking.",
        "obs_slo_breaches_total" => return "SLO rule evaluations that found the rule in breach.",
        "obs_slos_breached" => return "SLO rules currently in breach.",
        _ => {}
    }
    if name.starts_with("serve_op_") {
        if name.ends_with("_latency_us") {
            return "Per-op service time in microseconds.";
        }
        if name.ends_with("_total") {
            return "Per-op request count.";
        }
    }
    if name.ends_with("_us") {
        return "Latency histogram in microseconds.";
    }
    if name.ends_with("_total") {
        return "Monotone event count.";
    }
    "Instrument of the srra telemetry registry."
}

fn merge_sorted<T, F: Fn(&mut T, &T)>(mine: &mut Vec<(String, T)>, theirs: &[(String, T)], fold: F)
where
    T: Clone,
{
    let mut merged: BTreeMap<String, T> = mine.drain(..).collect();
    for (name, value) in theirs {
        match merged.get_mut(name) {
            Some(existing) => fold(existing, value),
            None => {
                merged.insert(name.clone(), value.clone());
            }
        }
    }
    mine.extend(merged);
}

impl MetricsSnapshot {
    /// True when no instrument was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, value)| *value)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, value)| *value)
    }

    /// Bucket set of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, snapshot)| snapshot)
    }

    /// Folds `other` into `self`: counters and gauges sum by name,
    /// histograms merge bucket-wise, names only one side knows are kept.
    /// The result stays sorted by name.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sorted(&mut self.counters, &other.counters, |mine, theirs| {
            *mine = mine.saturating_add(*theirs)
        });
        merge_sorted(&mut self.gauges, &other.gauges, |mine, theirs| {
            *mine = mine.saturating_add(*theirs)
        });
        merge_sorted(&mut self.histograms, &other.histograms, |mine, theirs| {
            mine.merge(theirs)
        });
    }

    /// Renders the snapshot as one JSON object.
    ///
    /// Shape: `{"counters":{..},"gauges":{..},"histograms":{"name":
    /// {"count":..,"p50_us":..,"p99_us":..,"buckets":[..]}}}` — `count` and
    /// the quantiles are derived from `buckets` for script convenience;
    /// `buckets` (trailing zeros trimmed) is the authoritative payload that
    /// decoders rebuild from.  Metric names satisfy
    /// [`valid_metric_name`], so they render without escaping.
    pub fn render_json_into(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (index, (name, snapshot)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":{\"count\":");
            out.push_str(&snapshot.count().to_string());
            out.push_str(",\"p50_us\":");
            out.push_str(&snapshot.quantile(0.5).to_string());
            out.push_str(",\"p99_us\":");
            out.push_str(&snapshot.quantile(0.99).to_string());
            out.push_str(",\"buckets\":[");
            let buckets = snapshot.buckets();
            let used = buckets
                .iter()
                .rposition(|&count| count > 0)
                .map_or(0, |last| last + 1);
            for (bucket, &count) in buckets[..used].iter().enumerate() {
                if bucket > 0 {
                    out.push(',');
                }
                out.push_str(&count.to_string());
            }
            out.push(']');
            // Exemplars render only when at least one bucket carries one, so
            // exemplar-free snapshots keep their historical byte shape.  Keys
            // are the buckets' inclusive upper bounds in microseconds (the
            // same `le` values the Prometheus exposition uses); values are
            // trace ids, which are `[A-Za-z0-9._-]` and need no escaping.
            if snapshot.exemplars().iter().any(Option::is_some) {
                out.push_str(",\"exemplars\":{");
                let mut first = true;
                for (bucket, exemplar) in snapshot.exemplars().iter().enumerate() {
                    if let Some(trace_id) = exemplar {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push('"');
                        out.push_str(&((1u64 << bucket) - 1).to_string());
                        out.push_str("\":\"");
                        out.push_str(trace_id);
                        out.push('"');
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("}}");
    }

    /// [`render_json_into`](Self::render_json_into) into a fresh string.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.render_json_into(&mut out);
        out
    }

    /// Renders a Prometheus-style text exposition.
    ///
    /// Every family gets a `# HELP` description and a `# TYPE` line;
    /// histograms render as cumulative `name_bucket{le="..."}` samples (the
    /// `le` bounds are the buckets' inclusive upper bounds in microseconds,
    /// then `+Inf`) plus `name_count`.  No `name_sum` is emitted — the
    /// fixed-bucket histograms do not track one.  A bucket carrying an
    /// exemplar appends it in OpenMetrics syntax:
    /// `... # {trace_id="req-1"} <le-bound>`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        let header = |out: &mut String, name: &str, kind: &str| {
            out.push_str("# HELP ");
            out.push_str(name);
            out.push(' ');
            out.push_str(help_for(name));
            out.push_str("\n# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
        };
        for (name, value) in &self.counters {
            header(&mut out, name, "counter");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            header(&mut out, name, "gauge");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, snapshot) in &self.histograms {
            header(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (index, &count) in snapshot.buckets().iter().enumerate() {
                cumulative += count;
                out.push_str(name);
                out.push_str("_bucket{le=\"");
                let bound = (1u64 << index) - 1;
                out.push_str(&bound.to_string());
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                if let Some(Some(trace_id)) = snapshot.exemplars().get(index) {
                    out.push_str(" # {trace_id=\"");
                    out.push_str(trace_id);
                    out.push_str("\"} ");
                    out.push_str(&bound.to_string());
                }
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, LATENCY_BUCKETS};

    fn sample() -> MetricsSnapshot {
        let registry = Registry::new();
        registry.counter("requests_total").add(7);
        registry.gauge("open_connections").set(-2);
        let latency = registry.histogram("get_latency_us");
        latency.record_micros(40);
        latency.record_micros(40);
        latency.record_micros(5_000);
        registry.snapshot()
    }

    #[test]
    fn json_rendering_carries_buckets_and_derived_quantiles() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"counters\":{\"requests_total\":7}"));
        assert!(json.contains("\"gauges\":{\"open_connections\":-2}"));
        assert!(json.contains(
            "\"get_latency_us\":{\"count\":3,\"p50_us\":63,\"p99_us\":8191,\"buckets\":["
        ));
        assert!(json.ends_with("]}}}"));
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\nrequests_total 7\n"));
        assert!(text.contains("# TYPE open_connections gauge\nopen_connections -2\n"));
        assert!(text.contains("# TYPE get_latency_us histogram\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"63\"} 2\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"8191\"} 3\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("get_latency_us_count 3\n"));
        assert_eq!(
            text.lines()
                .filter(|line| line.starts_with("get_latency_us_bucket"))
                .count(),
            LATENCY_BUCKETS + 1
        );
    }

    #[test]
    fn prometheus_rendering_carries_help_lines() {
        let text = sample().render_prometheus();
        assert!(
            text.contains(
                "# HELP requests_total Monotone event count.\n# TYPE requests_total counter\n"
            ),
            "{text}"
        );
        assert!(
            text.contains("# HELP open_connections Instrument of the srra telemetry registry.\n")
        );
        assert!(text.contains("# HELP get_latency_us Latency histogram in microseconds.\n"));
        // Known names get their specific descriptions.
        let registry = Registry::new();
        registry.counter("serve_requests_total").inc();
        registry.counter("serve_op_get_total").inc();
        registry
            .histogram("serve_op_get_latency_us")
            .record_micros(3);
        let text = registry.snapshot().render_prometheus();
        assert!(text.contains(
            "# HELP serve_requests_total Requests handled, across every op and codec.\n"
        ));
        assert!(text.contains("# HELP serve_op_get_total Per-op request count.\n"));
        assert!(
            text.contains("# HELP serve_op_get_latency_us Per-op service time in microseconds.\n")
        );
    }

    #[test]
    fn exemplars_render_in_json_and_openmetrics_syntax() {
        let registry = Registry::new();
        let latency = registry.histogram("get_latency_us");
        latency.record_micros(40);
        latency.record_traced(std::time::Duration::from_micros(40), "req-warm");
        latency.record_traced(std::time::Duration::from_micros(5_000), "req-slow");
        let snapshot = registry.snapshot();

        let json = snapshot.render_json();
        assert!(
            json.contains("\"exemplars\":{\"63\":\"req-warm\",\"8191\":\"req-slow\"}"),
            "{json}"
        );

        let text = snapshot.render_prometheus();
        assert!(
            text.contains("get_latency_us_bucket{le=\"63\"} 2 # {trace_id=\"req-warm\"} 63\n"),
            "{text}"
        );
        assert!(
            text.contains("get_latency_us_bucket{le=\"8191\"} 3 # {trace_id=\"req-slow\"} 8191\n"),
            "{text}"
        );
        assert!(
            text.contains("get_latency_us_bucket{le=\"+Inf\"} 3\n"),
            "the +Inf bucket never carries an exemplar: {text}"
        );

        // An exemplar-free snapshot keeps the historical JSON byte shape.
        let bare = sample().render_json();
        assert!(!bare.contains("exemplars"), "{bare}");
    }

    #[test]
    fn merging_sums_counters_and_buckets_and_keeps_unshared_names() {
        let mut mine = sample();
        let other = Registry::new();
        other.counter("requests_total").add(3);
        other.counter("evictions_total").inc();
        other.histogram("get_latency_us").record_micros(40);
        mine.merge(&other.snapshot());
        assert_eq!(mine.counter("requests_total"), Some(10));
        assert_eq!(mine.counter("evictions_total"), Some(1));
        assert_eq!(mine.histogram("get_latency_us").map(|h| h.count()), Some(4));
        assert_eq!(mine.gauge("open_connections"), Some(-2));
        let names: Vec<&str> = mine.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["evictions_total", "requests_total"], "still sorted");
    }

    #[test]
    fn metric_name_validity() {
        assert!(valid_metric_name("serve_op_get_total"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("bad name"));
        assert!(!valid_metric_name("bad-name"));
    }
}
