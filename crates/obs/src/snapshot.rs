//! Point-in-time metric sets: merging and exposition.

use std::collections::BTreeMap;

use crate::metrics::HistogramSnapshot;

/// Whether `name` is a legal metric name (`[A-Za-z0-9_]+`, non-empty).
///
/// [`crate::Registry`] enforces this at registration; wire decoders use it
/// to validate names arriving from peers before rendering them back out.
pub fn valid_metric_name(name: &str) -> bool {
    !name.is_empty() && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// A point-in-time copy of a [`crate::Registry`], sorted by name.
///
/// Snapshots merge — across the per-server and global registries of one
/// process, and across nodes when the cluster client aggregates a
/// fleet-wide scrape — and render to one JSON object (the `metrics` op's
/// reply body) or a Prometheus-style text exposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram bucket sets, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn merge_sorted<T, F: Fn(&mut T, &T)>(mine: &mut Vec<(String, T)>, theirs: &[(String, T)], fold: F)
where
    T: Clone,
{
    let mut merged: BTreeMap<String, T> = mine.drain(..).collect();
    for (name, value) in theirs {
        match merged.get_mut(name) {
            Some(existing) => fold(existing, value),
            None => {
                merged.insert(name.clone(), value.clone());
            }
        }
    }
    mine.extend(merged);
}

impl MetricsSnapshot {
    /// True when no instrument was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, value)| *value)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, value)| *value)
    }

    /// Bucket set of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, snapshot)| snapshot)
    }

    /// Folds `other` into `self`: counters and gauges sum by name,
    /// histograms merge bucket-wise, names only one side knows are kept.
    /// The result stays sorted by name.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        merge_sorted(&mut self.counters, &other.counters, |mine, theirs| {
            *mine = mine.saturating_add(*theirs)
        });
        merge_sorted(&mut self.gauges, &other.gauges, |mine, theirs| {
            *mine = mine.saturating_add(*theirs)
        });
        merge_sorted(&mut self.histograms, &other.histograms, |mine, theirs| {
            mine.merge(theirs)
        });
    }

    /// Renders the snapshot as one JSON object.
    ///
    /// Shape: `{"counters":{..},"gauges":{..},"histograms":{"name":
    /// {"count":..,"p50_us":..,"p99_us":..,"buckets":[..]}}}` — `count` and
    /// the quantiles are derived from `buckets` for script convenience;
    /// `buckets` (trailing zeros trimmed) is the authoritative payload that
    /// decoders rebuild from.  Metric names satisfy
    /// [`valid_metric_name`], so they render without escaping.
    pub fn render_json_into(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (index, (name, value)) in self.counters.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (index, (name, value)) in self.gauges.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (index, (name, snapshot)) in self.histograms.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":{\"count\":");
            out.push_str(&snapshot.count().to_string());
            out.push_str(",\"p50_us\":");
            out.push_str(&snapshot.quantile(0.5).to_string());
            out.push_str(",\"p99_us\":");
            out.push_str(&snapshot.quantile(0.99).to_string());
            out.push_str(",\"buckets\":[");
            let buckets = snapshot.buckets();
            let used = buckets
                .iter()
                .rposition(|&count| count > 0)
                .map_or(0, |last| last + 1);
            for (bucket, &count) in buckets[..used].iter().enumerate() {
                if bucket > 0 {
                    out.push(',');
                }
                out.push_str(&count.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("}}");
    }

    /// [`render_json_into`](Self::render_json_into) into a fresh string.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.render_json_into(&mut out);
        out
    }

    /// Renders a Prometheus-style text exposition.
    ///
    /// Counters and gauges are one `# TYPE` line plus one sample each;
    /// histograms render as cumulative `name_bucket{le="..."}` samples (the
    /// `le` bounds are the buckets' inclusive upper bounds in microseconds,
    /// then `+Inf`) plus `name_count`.  No `name_sum` is emitted — the
    /// fixed-bucket histograms do not track one.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, value) in &self.counters {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in &self.gauges {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" gauge\n");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, snapshot) in &self.histograms {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" histogram\n");
            let mut cumulative = 0u64;
            for (index, &count) in snapshot.buckets().iter().enumerate() {
                cumulative += count;
                out.push_str(name);
                out.push_str("_bucket{le=\"");
                out.push_str(&((1u64 << index) - 1).to_string());
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count ");
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, LATENCY_BUCKETS};

    fn sample() -> MetricsSnapshot {
        let registry = Registry::new();
        registry.counter("requests_total").add(7);
        registry.gauge("open_connections").set(-2);
        let latency = registry.histogram("get_latency_us");
        latency.record_micros(40);
        latency.record_micros(40);
        latency.record_micros(5_000);
        registry.snapshot()
    }

    #[test]
    fn json_rendering_carries_buckets_and_derived_quantiles() {
        let json = sample().render_json();
        assert!(json.starts_with("{\"counters\":{\"requests_total\":7}"));
        assert!(json.contains("\"gauges\":{\"open_connections\":-2}"));
        assert!(json.contains(
            "\"get_latency_us\":{\"count\":3,\"p50_us\":63,\"p99_us\":8191,\"buckets\":["
        ));
        assert!(json.ends_with("]}}}"));
    }

    #[test]
    fn prometheus_rendering_is_cumulative() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE requests_total counter\nrequests_total 7\n"));
        assert!(text.contains("# TYPE open_connections gauge\nopen_connections -2\n"));
        assert!(text.contains("# TYPE get_latency_us histogram\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"63\"} 2\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"8191\"} 3\n"));
        assert!(text.contains("get_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("get_latency_us_count 3\n"));
        assert_eq!(
            text.lines()
                .filter(|line| line.starts_with("get_latency_us_bucket"))
                .count(),
            LATENCY_BUCKETS + 1
        );
    }

    #[test]
    fn merging_sums_counters_and_buckets_and_keeps_unshared_names() {
        let mut mine = sample();
        let other = Registry::new();
        other.counter("requests_total").add(3);
        other.counter("evictions_total").inc();
        other.histogram("get_latency_us").record_micros(40);
        mine.merge(&other.snapshot());
        assert_eq!(mine.counter("requests_total"), Some(10));
        assert_eq!(mine.counter("evictions_total"), Some(1));
        assert_eq!(mine.histogram("get_latency_us").map(|h| h.count()), Some(4));
        assert_eq!(mine.gauge("open_connections"), Some(-2));
        let names: Vec<&str> = mine.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["evictions_total", "requests_total"], "still sorted");
    }

    #[test]
    fn metric_name_validity() {
        assert!(valid_metric_name("serve_op_get_total"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("bad name"));
        assert!(!valid_metric_name("bad-name"));
    }
}
