//! Process-wide telemetry substrate for the `srra` workspace.
//!
//! Every layer of the system — the parallel explore engine, the sharded TCP
//! serving front end, and the consistent-hash cluster client — records into
//! the same small vocabulary of instruments:
//!
//! * [`Counter`] — a monotonically increasing `u64` (events, totals),
//! * [`Gauge`] — a signed value that can move both ways (open connections),
//! * [`Histogram`] — a fixed 26-bucket power-of-two-microsecond latency
//!   histogram (the same bucketing the serve layer's `stats` op has exposed
//!   since it existed, lifted here so every crate shares one implementation),
//! * [`SpanTimer`] — a scoped guard that records its lifetime into a
//!   [`Histogram`] on drop.
//!
//! Instruments are owned by a [`Registry`]: a name → handle map that hands
//! out `Arc` handles.  Registration (first lookup of a name) takes a lock;
//! *recording* never does — every instrument is a plain atomic, so hot paths
//! (the serve layer's warm `get`, the explore engine's inner loop) pay a few
//! `fetch_add`s and nothing else.  [`Registry::global`] is the process-wide
//! registry used by library layers that have no server to hang state off;
//! servers own a private `Registry` per instance so per-node statistics stay
//! per-node.
//!
//! A [`MetricsSnapshot`] is a point-in-time copy of a registry, mergeable
//! across registries and across nodes (histograms merge bucket-wise), and
//! renders to both a line of JSON and a Prometheus-style text exposition.
//! The wire semantics of the `metrics` op that serves those renderings are
//! documented in `docs/observability.md`.
//!
//! # Example
//!
//! ```
//! use srra_obs::{Registry, SpanTimer};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("request_latency_us");
//!
//! requests.inc();
//! {
//!     let _span = SpanTimer::start(&latency);
//!     // ... handle the request ...
//! } // drop records the elapsed time
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("requests_total"), Some(1));
//! assert!(snapshot.render_prometheus().contains("# TYPE requests_total counter"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod registry;
mod series;
mod snapshot;
mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, SpanTimer, LATENCY_BUCKETS};
pub use registry::Registry;
pub use series::{
    Sampler, SeriesBuffer, SeriesSample, SloEvaluator, SloRule, SloStatus, SnapshotDelta,
};
pub use snapshot::{valid_metric_name, MetricsSnapshot};
pub use span::{epoch_us, next_span_id, now_us, Span, TraceBuffer};
