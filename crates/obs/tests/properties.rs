//! Property tests for the telemetry instruments: histogram record/merge
//! monotonicity, quantile ordering, bucket-boundary placement,
//! concurrent-recorder consistency, and the series delta/rate math.

use proptest::prelude::*;
use srra_obs::{
    Histogram, HistogramSnapshot, Registry, SeriesSample, SnapshotDelta, LATENCY_BUCKETS,
};

/// Records every sample into a fresh histogram.
fn filled(samples: &[u64]) -> Histogram {
    let histogram = Histogram::new();
    for &micros in samples {
        histogram.record_micros(micros);
    }
    histogram
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Counts are conserved: a histogram holds exactly as many samples as
    /// were recorded, and merging two snapshots sums their counts bucket by
    /// bucket.
    #[test]
    fn record_and_merge_conserve_counts(
        a in prop::collection::vec(any::<u64>(), 1..256),
        b in prop::collection::vec(any::<u64>(), 1..256),
    ) {
        let left = filled(&a).snapshot();
        let right = filled(&b).snapshot();
        prop_assert_eq!(left.count(), a.len() as u64);
        prop_assert_eq!(right.count(), b.len() as u64);
        let mut merged = left.clone();
        merged.merge(&right);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        for index in 0..LATENCY_BUCKETS {
            prop_assert_eq!(
                merged.buckets()[index],
                left.buckets()[index] + right.buckets()[index]
            );
        }
        let both = filled(&a);
        for &micros in &b {
            both.record_micros(micros);
        }
        prop_assert_eq!(both.snapshot(), merged, "merge equals recording the union");
    }

    /// Quantiles are monotone in the requested rank (p50 <= p90 <= p99 <=
    /// max) and never shrink when more samples arrive.
    #[test]
    fn quantiles_are_monotone(samples in prop::collection::vec(any::<u64>(), 1..512)) {
        let histogram = filled(&samples);
        let p50 = histogram.quantile(0.5);
        let p90 = histogram.quantile(0.9);
        let p99 = histogram.quantile(0.99);
        let max = histogram.quantile(1.0);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= max);
        let largest = samples.iter().copied().max().unwrap_or(0);
        prop_assert!(max >= largest.min((1u64 << (LATENCY_BUCKETS - 1)) - 1),
            "the top quantile covers the largest sample (modulo saturation)");
        histogram.record_micros(u64::MAX);
        prop_assert!(histogram.quantile(0.99) >= p99, "new slow samples never lower a tail quantile");
    }

    /// Bucket boundaries: 0 µs is its own bucket, each power of two starts
    /// the next bucket (2^k lands one bucket above 2^k - 1), and huge
    /// samples saturate into the last bucket.
    #[test]
    fn power_of_two_edges_split_buckets(shift in 1usize..=24) {
        let edge = 1u64 << shift;
        let histogram = filled(&[0, 1, edge - 1, edge, u64::MAX]);
        let buckets = histogram.snapshot();
        let position = |micros: u64| {
            (0..LATENCY_BUCKETS).find(|&index| {
                let fresh = filled(&[micros]).snapshot();
                fresh.buckets()[index] == 1
            }).expect("each sample lands in exactly one bucket")
        };
        prop_assert_eq!(position(0), 0);
        prop_assert_eq!(position(1), 1);
        prop_assert_eq!(position(edge), position(edge - 1) + 1, "2^k opens the next bucket");
        prop_assert_eq!(position(u64::MAX), LATENCY_BUCKETS - 1, "saturating max");
        prop_assert_eq!(buckets.count(), 5);
        // A single-sample histogram's quantile is that sample's bucket upper
        // bound, which is never below the sample itself (unless saturated).
        let single = filled(&[edge]);
        prop_assert!(single.quantile(0.5) >= edge.min((1u64 << (LATENCY_BUCKETS - 1)) - 1));
        prop_assert!(filled(&[1]).quantile(1.0) >= 1);
    }

    /// Concurrent recorders through shared registry handles lose nothing:
    /// the final snapshot holds every thread's every sample.
    #[test]
    fn concurrent_recorders_are_consistent(
        threads in 2usize..=4,
        per_thread in prop::collection::vec(any::<u64>(), 64),
    ) {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = registry.counter("events_total");
                let latency = registry.histogram("latency_us");
                let samples = per_thread.clone();
                scope.spawn(move || {
                    for micros in samples {
                        counter.inc();
                        latency.record_micros(micros);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        let expected = (threads * per_thread.len()) as u64;
        prop_assert_eq!(snapshot.counter("events_total"), Some(expected));
        prop_assert_eq!(snapshot.histogram("latency_us").map(HistogramSnapshot::count), Some(expected));
    }

    /// The wire round trip of a bucket array (trailing zeros trimmed, as the
    /// JSON rendering does) rebuilds an identical snapshot.
    #[test]
    fn trimmed_bucket_arrays_round_trip(samples in prop::collection::vec(any::<u64>(), 0..128)) {
        let snapshot = filled(&samples).snapshot();
        let used = snapshot.buckets().iter().rposition(|&c| c > 0).map_or(0, |last| last + 1);
        let rebuilt = HistogramSnapshot::from_buckets(&snapshot.buckets()[..used])
            .expect("trimmed arrays always fit");
        prop_assert_eq!(rebuilt, snapshot);
    }

    /// Deltas never go negative: whichever way two samples are ordered (a
    /// counter reset looks like the newer value being smaller), every
    /// counter increment and therefore every rate is non-negative.
    #[test]
    fn delta_rates_are_non_negative(
        before in prop::collection::vec(any::<u64>(), 1..8),
        after in prop::collection::vec(any::<u64>(), 1..8),
    ) {
        let build = |at_us: u64, values: &[u64]| {
            let registry = Registry::new();
            for (index, &value) in values.iter().enumerate() {
                registry.counter(&format!("c{index}_total")).add(value);
            }
            SeriesSample { at_us, metrics: registry.snapshot() }
        };
        // Either value set may play the newer sample: a peer restarting
        // mid-window makes "newer" counters smaller than "older" ones.
        for (older, newer) in [
            (build(1_000_000, &before), build(2_000_000, &after)),
            (build(1_000_000, &after), build(2_000_000, &before)),
        ] {
            let delta = SnapshotDelta::between(&older, &newer);
            for (name, _) in &delta.diff.counters {
                let rate = delta.rate(name).expect("window is non-empty");
                prop_assert!(rate >= 0.0, "{name} rate {rate}");
            }
        }
    }

    /// A window delta's histogram equals recording only the window's
    /// samples directly: subtracting the older sample's buckets exactly
    /// removes the pre-window traffic, so windowed quantiles match a fresh
    /// histogram of the same samples.
    #[test]
    fn windowed_histogram_quantiles_match_direct_recording(
        warmup in prop::collection::vec(any::<u64>(), 0..128),
        window in prop::collection::vec(any::<u64>(), 1..128),
    ) {
        let registry = Registry::new();
        let latency = registry.histogram("lat_us");
        for &micros in &warmup {
            latency.record_micros(micros);
        }
        let older = SeriesSample { at_us: 0, metrics: registry.snapshot() };
        for &micros in &window {
            latency.record_micros(micros);
        }
        let newer = SeriesSample { at_us: 1_000_000, metrics: registry.snapshot() };
        let delta = SnapshotDelta::between(&older, &newer);
        let direct = filled(&window).snapshot();
        let windowed = delta.diff.histogram("lat_us").expect("histogram present");
        prop_assert_eq!(windowed.buckets(), direct.buckets());
        for fraction in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(delta.quantile("lat_us", fraction), Some(direct.quantile(fraction)));
        }
    }

    /// Merging per-node deltas equals the delta of merged snapshots — the
    /// property that makes the fleet row of `srra cluster top` honest.
    #[test]
    fn merged_deltas_equal_delta_of_merged_snapshots(
        counts in prop::collection::vec(any::<u32>(), 2..6),
        extra in prop::collection::vec(any::<u32>(), 2..6),
        latencies in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let nodes = counts.len().min(extra.len());
        let mut node_samples = Vec::new();
        for node in 0..nodes {
            let registry = Registry::new();
            // Shared names accumulate across nodes; u32 values keep the
            // sums far from u64 saturation.
            registry.counter("requests_total").add(counts[node] as u64);
            registry.gauge("open").set(counts[node] as i64);
            let latency = registry.histogram("lat_us");
            for &micros in &latencies {
                latency.record_micros(micros.rotate_left(node as u32));
            }
            let older = SeriesSample { at_us: 1_000, metrics: registry.snapshot() };
            registry.counter("requests_total").add(extra[node] as u64);
            registry.gauge("open").set(extra[node] as i64);
            registry.histogram("lat_us").record_micros(latencies[0]);
            let newer = SeriesSample { at_us: 2_000, metrics: registry.snapshot() };
            node_samples.push((older, newer));
        }

        let mut merged_deltas = SnapshotDelta::between(&node_samples[0].0, &node_samples[0].1);
        for (older, newer) in &node_samples[1..] {
            merged_deltas.merge(&SnapshotDelta::between(older, newer));
        }

        let (mut older_fleet, mut newer_fleet) = node_samples[0].clone();
        for (older, newer) in &node_samples[1..] {
            older_fleet.metrics.merge(&older.metrics);
            newer_fleet.metrics.merge(&newer.metrics);
        }
        let delta_of_merged = SnapshotDelta::between(&older_fleet, &newer_fleet);
        prop_assert_eq!(merged_deltas, delta_of_merged);
    }
}
