//! Offline stand-in for the parts of `serde` the workspace touches.
//!
//! The srra crates derive `Serialize` / `Deserialize` on their value types so
//! downstream users with the real `serde` get wire formats for free, but the
//! offline build environment has no registry access.  This shim keeps those
//! derives compiling: the derive macros (re-exported from the `serde_derive`
//! shim) expand to nothing and these marker traits carry no methods.
//!
//! Nothing in the workspace performs serde-based serialization — the
//! `srra-explore` persistent result store writes its own line-oriented JSON —
//! so swapping this shim for the real `serde` is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (method-free).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (method-free, lifetime kept for
/// signature compatibility).
pub trait Deserialize<'de>: Sized {}

/// Stand-ins for the `serde::de` module.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}
