//! Offline mini property-testing stand-in for the `proptest` crate.
//!
//! The build environment has no crate-registry access, so this shim implements
//! the subset of the `proptest` API the srra test suites use, with the same
//! names and shapes:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer ranges
//!   and tuples of strategies,
//! * [`any`] for the primitive types, `prop::collection::vec` and
//!   `prop::sample::select`,
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike the real crate there is no shrinking and no failure persistence:
//! inputs are drawn from a deterministic xorshift generator seeded from the
//! test's module path, so every run of a given test binary explores the same
//! cases and failures reproduce exactly.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic xorshift64* generator used to draw test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from an explicit non-zero seed.
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Creates the generator for a named test; the name is FNV-hashed so each
    /// test walks its own (but stable) sequence of cases.
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(hash)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }
}

/// A recoverable test-case failure, produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values of one type — the shim's counterpart of
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F, O>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            _out: PhantomData,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F, O> {
    inner: S,
    f: F,
    _out: PhantomData<fn() -> O>,
}

impl<S, F, O> Strategy for Map<S, F, O>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.below(span as u64) as i128;
                (self.start as i128 + offset) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = rng.below(span as u64) as i128;
                (*self.start() as i128 + offset) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy, built by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Combinator modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A length specification for [`vec()`]: an exact length or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(len: usize) -> Self {
                Self {
                    min: len,
                    max: len + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(range: Range<usize>) -> Self {
                Self {
                    min: range.start,
                    max: range.end,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(range: RangeInclusive<usize>) -> Self {
                Self {
                    min: *range.start(),
                    max: range.end() + 1,
                }
            }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.size.min < self.size.max, "empty size range");
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for vectors whose elements come from `element` and whose
        /// length lies in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// The strategy returned by [`select`].
        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }

        /// A strategy choosing uniformly among the given items.
        ///
        /// # Panics
        ///
        /// Sampling panics if `items` is empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            Select { items }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just, Map,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that checks the body against `config.cases` sampled
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn range_strategies_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..256 {
            let v = (-4i64..=4).sample(&mut rng);
            assert!((-4..=4).contains(&v));
            let u = (1u64..5).sample(&mut rng);
            assert!((1..5).contains(&u));
            let s = (0usize..4).sample(&mut rng);
            assert!(s < 4);
        }
    }

    #[test]
    fn collection_and_sample_strategies_work() {
        let mut rng = TestRng::new(11);
        for _ in 0..64 {
            let v = prop::collection::vec((-4i64..=4, 0usize..4), 0..4).sample(&mut rng);
            assert!(v.len() < 4);
            let chosen = prop::sample::select(vec![1u32, 8, 16, 32]).sample(&mut rng);
            assert!([1, 8, 16, 32].contains(&chosen));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn mapped_strategies_and_asserts_run(
            a in (0u64..100).prop_map(|x| x * 2),
            flag in any::<bool>(),
        ) {
            prop_assert!(a % 2 == 0, "doubled value {} must be even", a);
            prop_assert_eq!(a % 2, 0);
            if flag {
                return Ok(());
            }
            prop_assert_ne!(a + 1, a);
        }
    }
}
