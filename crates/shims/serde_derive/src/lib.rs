//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to a crate registry, so the workspace
//! ships this no-op replacement: `#[derive(Serialize, Deserialize)]` parses and
//! expands to nothing.  The marker traits live in the sibling `serde` shim; no
//! actual serialization code is generated.  Code that needs real persistence
//! (the `srra-explore` JSONL result store) hand-rolls its encoding instead of
//! relying on these derives.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
///
/// Accepts (and ignores) `#[serde(...)]` helper attributes so annotated types
/// keep compiling if they ever gain them.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
