//! The `srra` command-line binary; see [`srra_cli::usage`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match srra_cli::run(&args) {
        Ok(text) => println!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
