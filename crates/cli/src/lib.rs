//! Command-line front end for the `srra` workspace.
//!
//! The `srra` binary exposes the analysis and reproduction pipeline without writing any
//! Rust code:
//!
//! ```text
//! srra kernels                      # list the built-in kernels
//! srra analyze mat                  # reuse analysis of a kernel
//! srra allocate fir cpa 32          # run one allocator and print the design point
//! srra dot example                  # Graphviz dump of the DFG + critical graph
//! srra figure2                      # reproduce Figure 2(c)
//! srra table1                       # reproduce Table 1
//! ```
//!
//! The argument handling lives in this library crate (so it is unit-testable); the
//! `main` binary only forwards `std::env::args` and prints the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use srra_bench::{evaluate_kernel, figure2, render_figure2, render_table1, table1};
use srra_core::AllocatorKind;
use srra_dfg::{to_dot, CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
use srra_ir::{examples::paper_example, Kernel};
use srra_kernels::paper_suite;
use srra_reuse::ReuseAnalysis;

/// Usage text printed for `srra help` and on argument errors.
pub const USAGE: &str = "usage: srra <command> [args]\n\
  kernels                        list built-in kernels\n\
  analyze  <kernel>              print the data-reuse analysis\n\
  allocate <kernel> <algo> <N>   allocate N registers (algo: fr | pr | cpa | ks | none)\n\
  dot      <kernel>              print the DFG + critical graph in Graphviz format\n\
  figure2                        reproduce the paper's Figure 2(c)\n\
  table1                         reproduce the paper's Table 1\n\
  help                           show this text";

/// Errors reported to the user as text plus a non-zero exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn kernel_by_name(name: &str) -> Result<Kernel, CliError> {
    if name == "example" {
        return Ok(paper_example());
    }
    paper_suite()
        .into_iter()
        .find(|spec| spec.kernel.name() == name)
        .map(|spec| spec.kernel)
        .ok_or_else(|| {
            CliError(format!(
                "unknown kernel `{name}`; expected example, fir, dec_fir, mat, imi, pat or bic"
            ))
        })
}

fn algorithm_by_name(name: &str) -> Result<AllocatorKind, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "fr" | "fr-ra" | "v1" => Ok(AllocatorKind::FullReuse),
        "pr" | "pr-ra" | "v2" => Ok(AllocatorKind::PartialReuse),
        "cpa" | "cpa-ra" | "v3" => Ok(AllocatorKind::CriticalPathAware),
        "ks" | "knapsack" => Ok(AllocatorKind::KnapsackOptimal),
        "none" | "base" => Ok(AllocatorKind::NoReplacement),
        other => Err(CliError(format!(
            "unknown algorithm `{other}`; expected fr, pr, cpa, ks or none"
        ))),
    }
}

fn cmd_kernels() -> String {
    let mut out = String::from("built-in kernels:\n  example  (the paper's Figure 1 running example)\n");
    for spec in paper_suite() {
        out.push_str(&format!("  {:<8} {}\n", spec.kernel.name(), spec.description));
    }
    out
}

fn cmd_analyze(name: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    let analysis = ReuseAnalysis::of(&kernel);
    let mut out = format!("{kernel}\n");
    out.push_str(&format!(
        "{:<20} {:>10} {:>12} {:>12} {:>10}\n",
        "reference", "R_full", "accesses", "eliminable", "gamma"
    ));
    for summary in &analysis {
        out.push_str(&format!(
            "{:<20} {:>10} {:>12} {:>12} {:>10.1}\n",
            summary.rendered(),
            summary.registers_full(),
            summary.access_counts().total,
            summary.saved_full(),
            summary.benefit_cost()
        ));
    }
    out.push_str(&format!(
        "total registers for full replacement: {}\n",
        analysis.total_registers_full()
    ));
    Ok(out)
}

fn cmd_allocate(name: &str, algo: &str, budget: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    let kind = algorithm_by_name(algo)?;
    let budget: u64 = budget
        .parse()
        .map_err(|_| CliError(format!("invalid register budget `{budget}`")))?;
    let outcome = evaluate_kernel(&kernel, kind, budget)
        .map_err(|e| CliError(format!("allocation failed: {e}")))?;
    let mut out = format!(
        "{} on {} with {budget} registers\n",
        kind.label(),
        kernel.name()
    );
    out.push_str(&format!(
        "  distribution : {}\n  registers    : {}\n  memory cycles: {}\n  total cycles : {}\n  clock        : {:.1} ns\n  exec time    : {:.1} us\n  slices       : {}  ({:.1}% of the XCV1000)\n  BlockRAMs    : {}\n",
        outcome.allocation.distribution(),
        outcome.allocation.total_registers(),
        outcome.cost.memory_cycles,
        outcome.design.total_cycles,
        outcome.design.clock_period_ns,
        outcome.design.execution_time_us,
        outcome.design.slices,
        outcome.design.slice_occupancy * 100.0,
        outcome.design.block_rams
    ));
    Ok(out)
}

fn cmd_dot(name: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    let dfg = DataFlowGraph::from_kernel(&kernel);
    let analysis =
        CriticalPathAnalysis::new(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
    Ok(to_dot(&dfg, Some(&analysis)))
}

/// Runs one CLI invocation and returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for unknown commands, unknown
/// kernels/algorithms or malformed numbers.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args {
        [] => Ok(USAGE.to_owned()),
        [cmd] if cmd == "help" || cmd == "--help" || cmd == "-h" => Ok(USAGE.to_owned()),
        [cmd] if cmd == "kernels" => Ok(cmd_kernels()),
        [cmd] if cmd == "figure2" => Ok(render_figure2(&figure2())),
        [cmd] if cmd == "table1" => Ok(render_table1(&table1())),
        [cmd, kernel] if cmd == "analyze" => cmd_analyze(kernel),
        [cmd, kernel] if cmd == "dot" => cmd_dot(kernel),
        [cmd, kernel, algo, budget] if cmd == "allocate" => cmd_allocate(kernel, algo, budget),
        _ => Err(CliError(format!(
            "unrecognised arguments: {}\n{USAGE}",
            args.join(" ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_and_empty_invocations_print_usage() {
        assert_eq!(run(&args(&[])).unwrap(), USAGE);
        assert_eq!(run(&args(&["help"])).unwrap(), USAGE);
        assert_eq!(run(&args(&["--help"])).unwrap(), USAGE);
    }

    #[test]
    fn kernels_lists_all_seven_entries() {
        let out = run(&args(&["kernels"])).unwrap();
        for name in ["example", "fir", "dec_fir", "mat", "imi", "pat", "bic"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn analyze_prints_requirements() {
        let out = run(&args(&["analyze", "example"])).unwrap();
        assert!(out.contains("b[k][j]"));
        assert!(out.contains("600"));
        assert!(out.contains("total registers for full replacement: 681"));
    }

    #[test]
    fn allocate_runs_every_algorithm_alias() {
        for algo in ["fr", "pr", "cpa", "ks", "none", "v3", "CPA-RA"] {
            let out = run(&args(&["allocate", "example", algo, "64"])).unwrap();
            assert!(out.contains("distribution"), "algo {algo}");
        }
    }

    #[test]
    fn figure2_and_dot_commands_work() {
        assert!(run(&args(&["figure2"])).unwrap().contains("1184"));
        let dot = run(&args(&["dot", "example"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn errors_are_reported_with_usage_hints() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["analyze", "nope"])).is_err());
        assert!(run(&args(&["allocate", "fir", "zzz", "32"])).is_err());
        assert!(run(&args(&["allocate", "fir", "cpa", "many"])).is_err());
        let err = run(&args(&["allocate", "fir", "cpa", "1"])).unwrap_err();
        assert!(err.to_string().contains("allocation failed"));
    }
}
