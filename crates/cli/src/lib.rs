//! Command-line front end for the `srra` workspace.
//!
//! The `srra` binary exposes the analysis and reproduction pipeline without writing any
//! Rust code:
//!
//! ```text
//! srra kernels                      # list the built-in kernels
//! srra analyze mat                  # reuse analysis of a kernel
//! srra allocate fir cpa 32          # run one allocator and print the design point
//! srra dot example                  # Graphviz dump of the DFG + critical graph
//! srra figure2                      # reproduce Figure 2(c)
//! srra table1                       # reproduce Table 1
//! srra explore --kernel fir --budgets 8,16,32,64 --jobs 4 --cache /tmp/srra.jsonl
//!                                   # parallel design-space sweep + Pareto table
//! srra serve --cache-dir /tmp/srra-cache --shards 4 --addr 127.0.0.1:0
//!                                   # sharded result store + TCP query server
//! srra query --addr 127.0.0.1:PORT get fir cpa 32
//!                                   # one query against a running server
//! ```
//!
//! The argument handling lives in this library crate (so it is unit-testable); the
//! `main` binary only forwards `std::env::args` and prints the result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use srra_bench::{evaluate_compiled, figure2, render_figure2, render_table1, table1};
use srra_cluster::{ClusterClient, ClusterConfig};
use srra_core::{AllocatorRef, AllocatorRegistry, CompiledKernel};
use srra_explore::{
    exploration_csv, render_exploration, DesignSpace, Exploration, Explorer, JsonlStore,
    MemoryStore, ResultStore,
};
use srra_fpga::DeviceModel;
use srra_ir::examples::paper_example;
use srra_kernels::paper_suite;
use srra_serve::{
    ClientError, Connection, QueryPoint, Request, Response, Server, ServerConfig, ShardedStore,
    SnapshotDelta, Span,
};

/// Usage text printed for `srra help` and on argument errors.
///
/// The algorithm lists are generated from the [`AllocatorRegistry`], so a new
/// registered strategy shows up here without touching the CLI.
pub fn usage() -> &'static str {
    static USAGE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    USAGE.get_or_init(|| {
        let algos = AllocatorRegistry::global()
            .names()
            .collect::<Vec<_>>()
            .join(" | ");
        format!(
            "usage: srra <command> [args]\n\
  kernels                        list built-in kernels\n\
  analyze  <kernel>              print the data-reuse analysis\n\
  allocate <kernel> <algo> <N>   allocate N registers (algo: {algos})\n\
  dot      <kernel>              print the DFG + critical graph in Graphviz format\n\
  figure2                        reproduce the paper's Figure 2(c)\n\
  table1                         reproduce the paper's Table 1\n\
  explore [options]              parallel design-space sweep with Pareto output\n\
    --kernel  <k[,k...]|all>     kernels to sweep (default: all six paper kernels)\n\
    --algos   <a[,a...]>         algorithms (default: fr,pr,cpa; available: {algos})\n\
    --budgets <n[,n...]>         register budgets (default: 32)\n\
    --latencies <n[,n...]>       RAM latencies in cycles (default: 2)\n\
    --devices <d[,d...]>         xcv1000 and/or xcv300 (default: xcv1000)\n\
    --jobs    <n>                worker threads (default: all CPUs)\n\
    --cache   <path>             persistent single-file JSONL result cache\n\
    --cache-dir <dir>            persistent *sharded* JSONL result cache\n\
    --shards  <n>                shard count for --cache-dir (default 4)\n\
    --csv                        emit every design point as CSV instead of tables\n\
    --stats-json <path>          write cache statistics as JSON to a file\n\
    (cache statistics go to stderr so stdout is identical across cached re-runs)\n\
  serve [options]                sharded result store + TCP query server\n\
    --cache-dir <dir>            shard directory (required)\n\
    --addr    <host:port>        bind address (default 127.0.0.1:0 = ephemeral port)\n\
    --shards  <n>                shard files (default 4)\n\
    --workers <n>                serving threads (default: all CPUs)\n\
    --slow-query-us <n>          log requests slower than n µs to stderr (default: off)\n\
    --report-interval <secs>     periodic stats report to stderr (default: off)\n\
    --idle-timeout-secs <n>      reap client connections idle for n secs\n\
                                 (default: off; counted by serve_idle_reaped_total)\n\
    --sample-interval-ms <n>     metrics sampler: push one timestamped telemetry\n\
                                 snapshot every n ms into the ring the `series`\n\
                                 op answers from (default: off)\n\
    --slo <rule>                 SLO rule evaluated every sampler tick; repeatable;\n\
                                 e.g. 'serve_op_get_latency_us p99 < 500us over 60s'\n\
                                 or 'serve_misses_total / serve_requests_total < 1%\n\
                                 over 60s' (breaches count obs_slo_breaches_total)\n\
  query --addr <host:port> [--binary] [--timeout-ms <n>] <op>\n\
                                 queries against a running server; prints\n\
                                 the raw JSON response line(s) (see docs/serving.md)\n\
    --binary                     speak the length-prefixed binary wire codec\n\
                                 instead of JSON lines (same output; the server\n\
                                 auto-detects the codec per frame)\n\
    --trace <id>                 stamp every request with a trace id: the server\n\
                                 records a span tree for it, readable afterwards\n\
                                 via `trace <id>` (see docs/observability.md)\n\
    --timeout-ms <n>             I/O deadline on the dial and every read/write\n\
                                 (default: none; 0 also means none)\n\
    get <kernel> <algo> <N> [--latency <n>] [--device <d>]\n\
    explore [axis flags as for explore]     (--batch uses one mexplore line)\n\
    stats | shutdown\n\
    metrics [--prom]             full telemetry snapshot (JSON, or Prometheus\n\
                                 text exposition with --prom; see docs/observability.md)\n\
    trace <id>                   span waterfall the server's flight recorder\n\
                                 retains for a trace id\n\
    series (--last <n> | --window-us <n>)\n\
                                 raw time-series op: the last n sampler snapshots,\n\
                                 or the counter/histogram delta over a trailing\n\
                                 window (needs --sample-interval-ms on the server)\n\
    top [--interval-ms <n>] [--once]\n\
                                 refreshing req/s + hit% + p50/p99 dashboard over\n\
                                 the `series` op (default interval 2000 ms;\n\
                                 --once prints a single frame for scripts)\n\
    pipe                         read raw request lines from stdin, pipeline\n\
                                 them over ONE keep-alive connection, print\n\
                                 the reply lines in request order\n\
  cluster --nodes <a:p,b:p,...> [--replicas <R>] [--vnodes <V>] [--binary] <op>\n\
                                 consistent-hash routed queries over several\n\
                                 serve nodes (see docs/cluster.md); --binary\n\
                                 uses the binary codec on every node connection\n\
    get <kernel> <algo> <N> [--latency <n>] [--device <d>]\n\
    mget [axis flags as for explore]        routed batched lookups\n\
    explore [axis flags as for explore]     routed batched explore (+tee to\n\
                                            replicas when --replicas > 1)\n\
    stats                        one JSON line per node plus a totals line\n\
    ping                         probe every node's liveness\n\
    metrics                      scrape every node, print the merged telemetry\n\
    trace <id>                   scrape every node's flight recorder, print the\n\
                                 merged cluster-wide span waterfall\n\
    repair                       anti-entropy pass: compare per-node digests and\n\
                                 copy records to the replica owners lacking them\n\
    rebalance --to <a:p,...>     move every record to its owners under a new\n\
                                 node list (client-side add/remove of nodes)\n\
    top [--interval-ms <n>] [--once]\n\
                                 fleet dashboard over the `series` op: per-node\n\
                                 and fleet-merged req/s, hit%, p50/p99, open\n\
                                 connections, up/down and SLO state\n\
    --trace <id>                 stamp every routed request with one trace id\n\
                                 across all per-node sub-batches\n\
    --timeout-ms <n>             per-node I/O deadline in ms (default 2000;\n\
                                 0 disables — a hung node then blocks forever)\n\
  help                           show this text"
        )
    })
}

/// Errors reported to the user as text plus a non-zero exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn kernel_by_name(name: &str) -> Result<CompiledKernel, CliError> {
    if name == "example" {
        return Ok(CompiledKernel::new(paper_example()));
    }
    paper_suite()
        .into_iter()
        .find(|spec| spec.kernel.name() == name)
        .map(|spec| spec.compiled())
        .ok_or_else(|| {
            CliError(format!(
                "unknown kernel `{name}`; expected example, fir, dec_fir, mat, imi, pat or bic"
            ))
        })
}

fn algorithm_by_name(name: &str) -> Result<AllocatorRef, CliError> {
    AllocatorRegistry::global().get(name).ok_or_else(|| {
        let known = AllocatorRegistry::global()
            .names()
            .collect::<Vec<_>>()
            .join(", ");
        CliError(format!(
            "unknown algorithm `{name}`; expected one of: {known}"
        ))
    })
}

fn cmd_kernels() -> String {
    let mut out =
        String::from("built-in kernels:\n  example  (the paper's Figure 1 running example)\n");
    for spec in paper_suite() {
        out.push_str(&format!(
            "  {:<8} {}\n",
            spec.kernel.name(),
            spec.description
        ));
    }
    out
}

fn cmd_analyze(name: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    let analysis = kernel.analysis();
    let mut out = format!("{}\n", kernel.kernel());
    out.push_str(&format!(
        "{:<20} {:>10} {:>12} {:>12} {:>10}\n",
        "reference", "R_full", "accesses", "eliminable", "gamma"
    ));
    for summary in analysis {
        out.push_str(&format!(
            "{:<20} {:>10} {:>12} {:>12} {:>10.1}\n",
            summary.rendered(),
            summary.registers_full(),
            summary.access_counts().total,
            summary.saved_full(),
            summary.benefit_cost()
        ));
    }
    out.push_str(&format!(
        "total registers for full replacement: {}\n",
        analysis.total_registers_full()
    ));
    Ok(out)
}

fn cmd_allocate(name: &str, algo: &str, budget: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    let allocator = algorithm_by_name(algo)?;
    let budget: u64 = budget
        .parse()
        .map_err(|_| CliError(format!("invalid register budget `{budget}`")))?;
    let outcome = evaluate_compiled(&kernel, allocator, budget)
        .map_err(|e| CliError(format!("allocation failed: {e}")))?;
    let mut out = format!(
        "{} on {} with {budget} registers\n",
        allocator.label(),
        kernel.name()
    );
    out.push_str(&format!(
        "  distribution : {}\n  registers    : {}\n  memory cycles: {}\n  total cycles : {}\n  clock        : {:.1} ns\n  exec time    : {:.1} us\n  slices       : {}  ({:.1}% of the XCV1000)\n  BlockRAMs    : {}\n",
        outcome.allocation.distribution(),
        outcome.allocation.total_registers(),
        outcome.cost.memory_cycles,
        outcome.design.total_cycles,
        outcome.design.clock_period_ns,
        outcome.design.execution_time_us,
        outcome.design.slices,
        outcome.design.slice_occupancy * 100.0,
        outcome.design.block_rams
    ));
    Ok(out)
}

/// Parsed form of the `explore` subcommand's flags.
struct ExploreArgs {
    kernels: Vec<CompiledKernel>,
    allocators: Vec<AllocatorRef>,
    budgets: Vec<u64>,
    latencies: Vec<u64>,
    devices: Vec<DeviceModel>,
    jobs: usize,
    cache: Option<String>,
    cache_dir: Option<String>,
    shards: Option<usize>,
    csv: bool,
    stats_json: Option<String>,
}

fn parse_u64_list(flag: &str, value: &str) -> Result<Vec<u64>, CliError> {
    value
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            part.trim()
                .parse::<u64>()
                .map_err(|_| CliError(format!("invalid {flag} value `{part}`")))
        })
        .collect()
}

fn device_by_name(name: &str) -> Result<DeviceModel, CliError> {
    // One resolver for both the local explore path and the serve protocol,
    // so `--devices` accepts the same spellings everywhere.
    srra_serve::device_by_name(name).map_err(CliError)
}

fn parse_explore_args(args: &[String]) -> Result<ExploreArgs, CliError> {
    let mut parsed = ExploreArgs {
        kernels: Vec::new(),
        allocators: AllocatorRegistry::paper_versions().to_vec(),
        budgets: vec![32],
        latencies: vec![2],
        devices: vec![DeviceModel::xcv1000()],
        jobs: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        cache: None,
        cache_dir: None,
        shards: None,
        csv: false,
        stats_json: None,
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--kernel" | "--kernels" => {
                for name in value("--kernel")?.split(',') {
                    let name = name.trim();
                    if name.is_empty() {
                        continue;
                    }
                    if name == "all" {
                        parsed
                            .kernels
                            .extend(paper_suite().iter().map(|spec| spec.compiled()));
                    } else {
                        parsed.kernels.push(kernel_by_name(name)?);
                    }
                }
            }
            "--algos" | "--algo" => {
                let list = value("--algos")?;
                parsed.allocators = list
                    .split(',')
                    .filter(|n| !n.is_empty())
                    .map(|name| algorithm_by_name(name.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--budgets" => parsed.budgets = parse_u64_list("--budgets", &value("--budgets")?)?,
            "--latencies" => {
                parsed.latencies = parse_u64_list("--latencies", &value("--latencies")?)?;
            }
            "--devices" => {
                let list = value("--devices")?;
                parsed.devices = list
                    .split(',')
                    .filter(|n| !n.is_empty())
                    .map(|name| device_by_name(name.trim()))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--jobs" => {
                let raw = value("--jobs")?;
                parsed.jobs = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&jobs| jobs >= 1)
                    .ok_or_else(|| CliError(format!("invalid --jobs value `{raw}`")))?;
            }
            "--cache" => parsed.cache = Some(value("--cache")?),
            "--cache-dir" => parsed.cache_dir = Some(value("--cache-dir")?),
            "--shards" => {
                let raw = value("--shards")?;
                parsed.shards = Some(
                    raw.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| CliError(format!("invalid --shards value `{raw}`")))?,
                );
            }
            "--csv" => parsed.csv = true,
            "--stats-json" => parsed.stats_json = Some(value("--stats-json")?),
            other => {
                return Err(CliError(format!(
                    "unknown explore flag `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    if parsed.kernels.is_empty() {
        parsed.kernels = paper_suite().iter().map(|spec| spec.compiled()).collect();
    }
    if parsed.budgets.is_empty()
        || parsed.latencies.is_empty()
        || parsed.allocators.is_empty()
        || parsed.devices.is_empty()
    {
        return Err(CliError(
            "explore: every axis needs at least one value".into(),
        ));
    }
    if parsed.cache.is_some() && parsed.cache_dir.is_some() {
        return Err(CliError(
            "explore: --cache and --cache-dir are mutually exclusive".into(),
        ));
    }
    if parsed.shards.is_some() && parsed.cache_dir.is_none() {
        return Err(CliError("explore: --shards needs --cache-dir".into()));
    }
    Ok(parsed)
}

/// Machine-readable summary of one exploration's cache behaviour.
struct ExploreStats {
    points: usize,
    cache_hits: usize,
    evaluated: usize,
    jobs: usize,
    store_records: usize,
    /// Store backend the run used: `memory`, `jsonl` or `sharded`.
    backend: &'static str,
    /// Per-shard record counts, present only for the sharded backend.
    shard_records: Option<Vec<usize>>,
}

impl ExploreStats {
    /// Hand-rolled JSON (the workspace's serde is an offline no-op shim).
    fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"points\":{},\"cache_hits\":{},\"evaluated\":{},\"jobs\":{},\"store_records\":{},\"backend\":\"{}\"",
            self.points, self.cache_hits, self.evaluated, self.jobs, self.store_records, self.backend
        );
        if let Some(shards) = &self.shard_records {
            out.push_str(",\"shards\":[");
            for (index, count) in shards.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push_str(&count.to_string());
            }
            out.push(']');
        }
        out.push_str("}\n");
        out
    }
}

fn explore_with_store<S>(
    space: &DesignSpace,
    jobs: usize,
    store: &mut S,
    backend: &'static str,
) -> Result<(Exploration, ExploreStats), CliError>
where
    S: ResultStore,
    S::Error: std::fmt::Display,
{
    let run = Explorer::new(jobs)
        .explore(space, store)
        .map_err(|err| CliError(format!("exploration failed: {err}")))?;
    let stored = store
        .len()
        .map_err(|err| CliError(format!("exploration failed: {err}")))?;
    let stats = ExploreStats {
        points: run.records.len(),
        cache_hits: run.cache_hits,
        evaluated: run.evaluated,
        jobs,
        store_records: stored,
        backend,
        shard_records: None,
    };
    // Stats go to stderr so stdout stays byte-identical between a cold run and
    // a fully cached re-run.
    eprintln!(
        "explore: {} points, {} cache hits, {} evaluated with {} jobs (store holds {} records)",
        stats.points, stats.cache_hits, stats.evaluated, stats.jobs, stats.store_records
    );
    Ok((run, stats))
}

fn cmd_explore(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_explore_args(args)?;
    let space = DesignSpace::new()
        .with_kernels(parsed.kernels)
        .with_allocators(&parsed.allocators)
        .with_budgets(&parsed.budgets)
        .with_ram_latencies(&parsed.latencies)
        .with_devices(parsed.devices);
    let (run, stats) = match (&parsed.cache, &parsed.cache_dir) {
        (Some(path), None) => {
            let mut store = JsonlStore::open(path)
                .map_err(|err| CliError(format!("cannot open cache `{path}`: {err}")))?;
            explore_with_store(&space, parsed.jobs, &mut store, "jsonl")?
        }
        (None, Some(dir)) => {
            let shards = parsed.shards.unwrap_or(4);
            let mut store = ShardedStore::open(dir, shards)
                .map_err(|err| CliError(format!("cannot open cache dir `{dir}`: {err}")))?;
            let (run, mut stats) = explore_with_store(&space, parsed.jobs, &mut store, "sharded")?;
            stats.shard_records = Some(
                store
                    .shard_sizes()
                    .map_err(|err| CliError(format!("cannot read shard sizes: {err}")))?,
            );
            (run, stats)
        }
        _ => explore_with_store(&space, parsed.jobs, &mut MemoryStore::new(), "memory")?,
    };
    if let Some(path) = &parsed.stats_json {
        std::fs::write(path, stats.to_json())
            .map_err(|err| CliError(format!("cannot write stats to `{path}`: {err}")))?;
    }
    Ok(if parsed.csv {
        exploration_csv(&run)
    } else {
        render_exploration(&run)
    })
}

/// Parsed form of the `serve` subcommand's flags.
struct ServeArgs {
    addr: String,
    cache_dir: String,
    shards: usize,
    workers: usize,
    slow_query_us: u64,
    report_interval_secs: u64,
    idle_timeout_secs: u64,
    sample_interval_ms: u64,
    slos: Vec<String>,
}

fn parse_serve_args(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut cache_dir: Option<String> = None;
    let mut shards = 4usize;
    let mut workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut slow_query_us = 0u64;
    let mut report_interval_secs = 0u64;
    let mut idle_timeout_secs = 0u64;
    let mut sample_interval_ms = 0u64;
    let mut slos: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        let positive = |name: &str, raw: String| {
            raw.parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or_else(|| CliError(format!("invalid {name} value `{raw}`")))
        };
        let threshold = |name: &str, raw: String| {
            raw.parse::<u64>()
                .map_err(|_| CliError(format!("invalid {name} value `{raw}`")))
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--cache-dir" => cache_dir = Some(value("--cache-dir")?),
            "--shards" => shards = positive("--shards", value("--shards")?)?,
            "--workers" => workers = positive("--workers", value("--workers")?)?,
            "--slow-query-us" => {
                slow_query_us = threshold("--slow-query-us", value("--slow-query-us")?)?;
            }
            "--report-interval" => {
                report_interval_secs = threshold("--report-interval", value("--report-interval")?)?;
            }
            "--idle-timeout-secs" => {
                idle_timeout_secs =
                    threshold("--idle-timeout-secs", value("--idle-timeout-secs")?)?;
            }
            "--sample-interval-ms" => {
                sample_interval_ms =
                    threshold("--sample-interval-ms", value("--sample-interval-ms")?)?;
            }
            "--slo" => slos.push(value("--slo")?),
            other => {
                return Err(CliError(format!(
                    "unknown serve flag `{other}`\n{}",
                    usage()
                )))
            }
        }
    }
    let cache_dir = cache_dir.ok_or_else(|| CliError("serve needs --cache-dir".into()))?;
    Ok(ServeArgs {
        addr,
        cache_dir,
        shards,
        workers,
        slow_query_us,
        report_interval_secs,
        idle_timeout_secs,
        sample_interval_ms,
        slos,
    })
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let parsed = parse_serve_args(args)?;
    let config = ServerConfig {
        addr: parsed.addr,
        cache_dir: parsed.cache_dir.clone().into(),
        shards: parsed.shards,
        workers: parsed.workers,
        slow_query_us: parsed.slow_query_us,
        report_interval_secs: parsed.report_interval_secs,
        idle_timeout_secs: parsed.idle_timeout_secs,
        sample_interval_ms: parsed.sample_interval_ms,
        slos: parsed.slos,
    };
    let server = Server::bind(&config).map_err(|err| CliError(format!("serve: {err}")))?;
    // Announce the bound address immediately (the config may have asked for
    // an ephemeral port); scripts and ci.sh scrape this line.
    println!(
        "srra-serve listening on {} ({} shards under {}, {} workers)",
        server.local_addr(),
        parsed.shards,
        parsed.cache_dir,
        parsed.workers
    );
    let report = server
        .run()
        .map_err(|err| CliError(format!("serve: {err}")))?;
    let stats = report.stats;
    Ok(format!(
        "srra-serve stopped after {} connections, {} requests ({} hits, {} misses, {} evaluated; {} records across {} shards)",
        stats.connections,
        stats.requests,
        stats.hits,
        stats.misses,
        stats.evaluated,
        stats.records(),
        stats.shard_records.len()
    ))
}

/// Builds the `explore` request points for `srra query explore` from the same
/// axis flags the local `explore` command takes — but resolved server-side,
/// so only names travel over the wire.
fn parse_query_points(args: &[String]) -> Result<Vec<QueryPoint>, CliError> {
    let mut kernels: Vec<String> = Vec::new();
    let mut algos: Vec<String> = vec!["fr".into(), "pr".into(), "cpa".into()];
    let mut budgets: Vec<u64> = vec![32];
    let mut latencies: Vec<u64> = vec![2];
    let mut devices: Vec<String> = vec!["xcv1000".into()];
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        let names = |raw: String| -> Vec<String> {
            raw.split(',')
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .map(str::to_owned)
                .collect()
        };
        match flag.as_str() {
            "--kernel" | "--kernels" => {
                for name in names(value("--kernel")?) {
                    if name == "all" {
                        kernels.extend(paper_suite().iter().map(|s| s.kernel.name().to_owned()));
                    } else {
                        kernels.push(name);
                    }
                }
            }
            "--algos" | "--algo" => algos = names(value("--algos")?),
            "--budgets" => budgets = parse_u64_list("--budgets", &value("--budgets")?)?,
            "--latencies" => latencies = parse_u64_list("--latencies", &value("--latencies")?)?,
            "--devices" => devices = names(value("--devices")?),
            other => {
                return Err(CliError(format!("unknown query explore flag `{other}`")));
            }
        }
    }
    if kernels.is_empty() {
        kernels = paper_suite()
            .iter()
            .map(|s| s.kernel.name().to_owned())
            .collect();
    }
    if algos.is_empty() || budgets.is_empty() || latencies.is_empty() || devices.is_empty() {
        return Err(CliError(
            "query explore: every axis needs at least one value".into(),
        ));
    }
    let mut points = Vec::new();
    for kernel in &kernels {
        for algo in &algos {
            for &budget in &budgets {
                for &ram_latency in &latencies {
                    for device in &devices {
                        points.push(QueryPoint {
                            kernel: kernel.clone(),
                            algorithm: algo.clone(),
                            budget,
                            ram_latency,
                            device: device.clone(),
                        });
                    }
                }
            }
        }
    }
    Ok(points)
}

/// Dials `addr` with the codec the user picked (`--binary` or JSON lines)
/// and the `--timeout-ms` I/O deadline, if any.
fn query_connect(
    addr: &str,
    binary: bool,
    timeout: Option<std::time::Duration>,
) -> Result<Connection, ClientError> {
    if binary {
        Connection::connect_binary_with_timeout(addr, timeout)
    } else {
        Connection::connect_with_timeout(addr, timeout)
    }
}

/// Splits an optional `--timeout-ms <n>` pair out of `args`, mapping `0` to
/// "no deadline" (`std` rejects zero-duration socket timeouts); the
/// remaining arguments come back in order.
fn take_timeout_flag(
    args: &[String],
) -> Result<(Option<std::time::Duration>, Vec<String>), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut timeout = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--timeout-ms" {
            let raw = iter
                .next()
                .ok_or_else(|| CliError("--timeout-ms needs a value".into()))?;
            let ms = raw
                .parse::<u64>()
                .map_err(|_| CliError(format!("invalid --timeout-ms value `{raw}`")))?;
            timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((timeout, rest))
}

/// Splits an optional `--trace <id>` pair out of `args`; the remaining
/// arguments come back in order.  Shared by `srra query` and `srra cluster`.
fn take_trace_flag(args: &[String]) -> Result<(Option<String>, Vec<String>), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut trace = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--trace" {
            let id = iter
                .next()
                .ok_or_else(|| CliError("--trace needs a value".into()))?;
            trace = Some(id.clone());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((trace, rest))
}

/// Renders a span list as an indented waterfall: one line per span with its
/// offset from the trace's earliest span, its duration and its annotations,
/// children nested under their parents in start order.  A span whose parent
/// is absent (evicted from the ring, or held by an unreachable node) prints
/// at the root level rather than disappearing.
fn render_waterfall(spans: &[Span]) -> String {
    use std::collections::{BTreeMap, BTreeSet};
    let ids: BTreeSet<u64> = spans.iter().map(|span| span.span_id).collect();
    let base = spans.iter().map(|span| span.start_us).min().unwrap_or(0);
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for span in spans {
        if span.parent_id != 0 && ids.contains(&span.parent_id) {
            children.entry(span.parent_id).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    roots.sort_by_key(|span| (span.start_us, span.span_id));
    for list in children.values_mut() {
        list.sort_by_key(|span| (span.start_us, span.span_id));
    }
    let mut out = String::new();
    let mut stack: Vec<(&Span, usize)> = roots.iter().rev().map(|span| (*span, 0)).collect();
    while let Some((span, depth)) = stack.pop() {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} +{}us {}us",
            span.name,
            span.start_us.saturating_sub(base),
            span.dur_us
        ));
        for (key, value) in &span.annotations {
            out.push_str(&format!(" {key}={value}"));
        }
        out.push('\n');
        if let Some(kids) = children.get(&span.span_id) {
            stack.extend(kids.iter().rev().map(|span| (*span, depth + 1)));
        }
    }
    out
}

/// The text of one `trace <id>` reply: a headline plus the waterfall, or a
/// clear "nothing retained" line for unknown/evicted ids.
fn render_trace_output(id: &str, spans: &[Span]) -> String {
    if spans.is_empty() {
        return format!("trace {id}: no spans retained");
    }
    let mut out = format!("trace {id}: {} span(s)\n", spans.len());
    out.push_str(&render_waterfall(spans));
    out.trim_end().to_owned()
}

fn cmd_query(args: &[String]) -> Result<String, CliError> {
    // `--binary`, `--trace <id>` and `--timeout-ms <n>` are positionally
    // free: they select the wire codec / stamp a trace id / set the I/O
    // deadline and every other argument keeps its meaning.
    let binary = args.iter().any(|flag| flag == "--binary");
    let args: Vec<String> = args
        .iter()
        .filter(|flag| *flag != "--binary")
        .cloned()
        .collect();
    let (trace, args) = take_trace_flag(&args)?;
    let (timeout, args) = take_timeout_flag(&args)?;
    let connect = |addr: &str| -> Result<Connection, CliError> {
        let mut connection = query_connect(addr, binary, timeout)
            .map_err(|err| CliError(format!("query: {err}")))?;
        connection
            .set_trace(trace.as_deref())
            .map_err(|err| CliError(format!("query: {err}")))?;
        Ok(connection)
    };
    let (addr, rest) = match &args[..] {
        [flag, addr, rest @ ..] if flag == "--addr" => (addr.clone(), rest),
        _ => {
            return Err(CliError(format!(
                "query needs --addr <host:port>\n{}",
                usage()
            )))
        }
    };
    if let [op] = rest {
        if op == "pipe" {
            return cmd_query_pipe(connect(&addr)?, std::io::stdin().lock());
        }
    }
    let request = match rest {
        [op, kernel, algo, budget, opts @ ..] if op == "get" => {
            let point = parse_get_point(kernel, algo, budget, opts)?;
            let canonical = srra_serve::canonical_for(&point).map_err(CliError)?;
            Request::Get { canonical }
        }
        [op, rest @ ..] if op == "explore" => {
            // `--batch` switches to the batched `mexplore` op: same points,
            // one line each way, per-point outcomes instead of all-or-nothing.
            let batch = rest.iter().any(|flag| flag == "--batch");
            let axes: Vec<String> = rest.iter().filter(|f| *f != "--batch").cloned().collect();
            let points = parse_query_points(&axes)?;
            if batch {
                Request::MultiExplore { points }
            } else {
                Request::Explore { points }
            }
        }
        [op] if op == "stats" => Request::Stats,
        [op] if op == "shutdown" => Request::Shutdown,
        [op, flags @ ..] if op == "metrics" => {
            // The Prometheus exposition is multi-line text: print it raw
            // rather than wrapped in the single-line JSON reply envelope.
            let prom = match flags {
                [] => false,
                [flag] if flag == "--prom" => true,
                _ => {
                    return Err(CliError(format!(
                        "query metrics takes only --prom, got `{}`",
                        flags.join(" ")
                    )))
                }
            };
            let mut connection = connect(&addr)?;
            return if prom {
                connection.metrics_text()
            } else {
                connection.metrics().map(|snapshot| snapshot.render_json())
            }
            .map(|text| text.trim_end().to_owned())
            .map_err(|err| CliError(format!("query: {err}")));
        }
        [op, id] if op == "trace" => {
            // The waterfall is multi-line text, like the Prometheus path:
            // print it directly instead of the single-line JSON envelope.
            let spans = connect(&addr)?
                .trace_spans(id)
                .map_err(|err| CliError(format!("query: {err}")))?;
            return Ok(render_trace_output(id, &spans));
        }
        [op, flags @ ..] if op == "series" => {
            let mut last = 0u64;
            let mut window_us = 0u64;
            let mut iter = flags.iter();
            while let Some(flag) = iter.next() {
                let mut value = |name: &str| -> Result<u64, CliError> {
                    let raw = iter
                        .next()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))?;
                    raw.parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| CliError(format!("invalid {name} value `{raw}`")))
                };
                match flag.as_str() {
                    "--last" => last = value("--last")?,
                    "--window-us" => window_us = value("--window-us")?,
                    other => return Err(CliError(format!("unknown series flag `{other}`"))),
                }
            }
            if (last == 0) == (window_us == 0) {
                return Err(CliError(
                    "query series needs exactly one of --last <n> or --window-us <n>".into(),
                ));
            }
            Request::Series { last, window_us }
        }
        [op, flags @ ..] if op == "top" => {
            let (interval_ms, once) = parse_top_flags(flags)?;
            // The delta window trails two refresh intervals, so every frame
            // overlaps the previous one and a single missed sample cannot
            // blank a column.
            let window_us = interval_ms.saturating_mul(2_000);
            let mut connection = connect(&addr)?;
            let label = addr.clone();
            return run_top(interval_ms, once, window_us, move || {
                vec![(label.clone(), connection.series_delta(window_us).ok())]
            });
        }
        _ => {
            return Err(CliError(format!(
            "query expects get/explore/stats/metrics/trace/series/top/shutdown/pipe, got `{}`\n{}",
            rest.join(" "),
            usage()
        )))
        }
    };
    let response = connect(&addr)?
        .roundtrip(&request)
        .map_err(|err| CliError(format!("query: {err}")))?;
    Ok(response.render())
}

/// Pipelined requests in flight per window of `srra query pipe`, bounded by
/// line count *and* request bytes so a window cannot fill both sockets'
/// buffers while neither side reads (the classic pipelining deadlock);
/// within a window all request lines go out before any reply is read.  The
/// byte bound keeps even reply-heavy windows (an explore line's reply is an
/// order of magnitude larger than its request) well inside default socket
/// buffer sizes.
const PIPE_WINDOW: usize = 256;

/// Request bytes per pipelined window of `srra query pipe`.
const PIPE_WINDOW_BYTES: usize = 8 * 1024;

/// `srra query ... pipe`: reads raw request lines from `input`, validates
/// them, pipelines them over one keep-alive connection in windows of
/// [`PIPE_WINDOW`] (each window fully written *before any of its replies are
/// read*), and returns the reply lines in request order.
///
/// Windows are dispatched *while stdin is still being read*, so a slow or
/// endless producer sees its earlier requests answered and the in-memory
/// request backlog never exceeds one window.  (The reply text itself is
/// accumulated — the CLI contract returns one string — so output stays
/// proportional to the replies.)
fn cmd_query_pipe(
    mut connection: Connection,
    input: impl std::io::BufRead,
) -> Result<String, CliError> {
    let mut window: Vec<Request> = Vec::with_capacity(PIPE_WINDOW);
    let mut out = String::new();
    let mut flush_window = |window: &mut Vec<Request>, out: &mut String| -> Result<(), CliError> {
        if window.is_empty() {
            return Ok(());
        }
        let responses = connection
            .pipeline(window)
            .map_err(|err| CliError(format!("query: {err}")))?;
        window.clear();
        for response in &responses {
            if !out.is_empty() {
                out.push('\n');
            }
            response.render_into(out);
        }
        Ok(())
    };
    let mut any = false;
    let mut window_bytes = 0usize;
    for (number, line) in input.lines().enumerate() {
        let line = line.map_err(|err| CliError(format!("query pipe: stdin: {err}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(err) => {
                // Earlier windows already executed server-side: surface their
                // replies before failing rather than discarding served work.
                if !out.is_empty() {
                    println!("{out}");
                }
                return Err(CliError(format!(
                    "query pipe: line {}: {err}{}",
                    number + 1,
                    if out.is_empty() {
                        ""
                    } else {
                        " (replies to the already-dispatched requests are printed above; \
                         the remaining lines were not sent)"
                    }
                )));
            }
        };
        any = true;
        window.push(request);
        window_bytes += line.len();
        if window.len() == PIPE_WINDOW || window_bytes >= PIPE_WINDOW_BYTES {
            flush_window(&mut window, &mut out)?;
            window_bytes = 0;
        }
    }
    if !any {
        return Err(CliError("query pipe: no request lines on stdin".into()));
    }
    flush_window(&mut window, &mut out)?;
    Ok(out)
}

/// Parses the `get <kernel> <algo> <budget> [--latency <n>] [--device <d>]`
/// positional shape shared by `srra query get` and `srra cluster get`.
fn parse_get_point(
    kernel: &str,
    algo: &str,
    budget: &str,
    opts: &[String],
) -> Result<QueryPoint, CliError> {
    let mut point = QueryPoint::new(kernel, algo, 0);
    point.budget = budget
        .parse()
        .map_err(|_| CliError(format!("invalid register budget `{budget}`")))?;
    let mut iter = opts.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--latency" => {
                let raw = value("--latency")?;
                point.ram_latency = raw
                    .parse()
                    .map_err(|_| CliError(format!("invalid --latency value `{raw}`")))?;
            }
            "--device" => point.device = value("--device")?,
            other => return Err(CliError(format!("unknown get flag `{other}`"))),
        }
    }
    Ok(point)
}

/// Renders one cluster stats node entry as a flat JSON line, greppable by
/// scripts (`ci.sh` asserts every node saw traffic through these lines).
/// Parses the shared flags of `srra query top` / `srra cluster top`:
/// `(interval_ms, once)`, defaulting to a 2-second refresh.
fn parse_top_flags(flags: &[String]) -> Result<(u64, bool), CliError> {
    let mut interval_ms = 2_000u64;
    let mut once = false;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let raw = iter
                    .next()
                    .ok_or_else(|| CliError("--interval-ms needs a value".into()))?;
                interval_ms = raw
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError(format!("invalid --interval-ms value `{raw}`")))?;
            }
            other => return Err(CliError(format!("unknown top flag `{other}`"))),
        }
    }
    Ok((interval_ms, once))
}

/// One dashboard row of a `top` frame, computed from one node's window
/// delta; `None` (node unreachable, or its sampler off / too fresh) renders
/// as dashes so the fleet table keeps its shape.
fn render_top_row(label: &str, state: &str, delta: Option<&SnapshotDelta>) -> String {
    let columns =
        |req_s: String, hit: String, p50: String, p99: String, conns: String, slo: String| {
            format!(
                "{label:<24} {state:<5} {req_s:>9} {hit:>6} {p50:>7} {p99:>7} {conns:>6}  {slo}"
            )
        };
    let dash = || "-".to_owned();
    let Some(delta) = delta else {
        return columns(dash(), dash(), dash(), dash(), dash(), dash());
    };
    let req_s = delta
        .rate("serve_requests_total")
        .map_or_else(dash, |rate| format!("{rate:.1}"));
    let hits = delta.diff.counter("serve_hits_total").unwrap_or(0);
    let misses = delta.diff.counter("serve_misses_total").unwrap_or(0);
    let hit = if hits + misses == 0 {
        dash()
    } else {
        format!("{:.1}", hits as f64 * 100.0 / (hits + misses) as f64)
    };
    // Overall request latency: every per-op histogram of the window folded
    // into one, so the quantiles cover the node's whole mix of ops.
    let mut overall = None;
    for (name, histogram) in &delta.diff.histograms {
        if name.starts_with("serve_op_") && name.ends_with("_latency_us") {
            match overall.as_mut() {
                None => overall = Some(histogram.clone()),
                Some(merged) => merged.merge(histogram),
            }
        }
    }
    let busy = overall.filter(|histogram| histogram.count() > 0);
    let p50 = busy
        .as_ref()
        .map_or_else(dash, |histogram| histogram.quantile(0.50).to_string());
    let p99 = busy
        .as_ref()
        .map_or_else(dash, |histogram| histogram.quantile(0.99).to_string());
    let conns = delta
        .diff
        .gauge("serve_open_connections")
        .map_or_else(dash, |open| open.to_string());
    let slo = match delta.diff.gauge("obs_slos_breached") {
        None => dash(),
        Some(0) => "ok".to_owned(),
        Some(breached) => format!("BREACH:{breached}"),
    };
    columns(req_s, hit, p50, p99, conns, slo)
}

/// One full `top` frame: the column header, one row per node, and (for more
/// than one node) a fleet row merging every answering node's delta — sound
/// because merging per-node deltas equals the delta of merged snapshots.
fn render_top_frame(rows: &[(String, Option<SnapshotDelta>)], window_us: u64) -> String {
    let mut out = format!(
        "srra top: {} node(s), {:.1}s window\n{:<24} {:<5} {:>9} {:>6} {:>7} {:>7} {:>6}  {}\n",
        rows.len(),
        window_us as f64 / 1e6,
        "NODE",
        "STATE",
        "REQ/S",
        "HIT%",
        "P50_US",
        "P99_US",
        "CONNS",
        "SLO"
    );
    let mut fleet: Option<SnapshotDelta> = None;
    let mut up = 0usize;
    for (addr, delta) in rows {
        let state = if delta.is_some() { "up" } else { "DOWN" };
        out.push_str(&render_top_row(addr, state, delta.as_ref()));
        out.push('\n');
        if let Some(delta) = delta {
            up += 1;
            match fleet.as_mut() {
                None => fleet = Some(delta.clone()),
                Some(merged) => merged.merge(delta),
            }
        }
    }
    if rows.len() > 1 {
        let label = format!("fleet ({up}/{} up)", rows.len());
        out.push_str(&render_top_row(&label, "-", fleet.as_ref()));
        out.push('\n');
    }
    out.trim_end().to_owned()
}

/// The shared refresh loop of `srra query top` / `srra cluster top`.  With
/// `once` the first frame is returned for scripts and CI; otherwise each
/// tick repaints the terminal (ANSI clear + home) until interrupted.
fn run_top(
    interval_ms: u64,
    once: bool,
    window_us: u64,
    mut poll: impl FnMut() -> Vec<(String, Option<SnapshotDelta>)>,
) -> Result<String, CliError> {
    if once {
        return Ok(render_top_frame(&poll(), window_us));
    }
    loop {
        println!("\x1b[2J\x1b[H{}", render_top_frame(&poll(), window_us));
        let _ = std::io::Write::flush(&mut std::io::stdout());
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn render_node_stats_line(node: &srra_cluster::NodeStats) -> String {
    let mut line = format!(
        "{{\"addr\":\"{}\",\"up\":{},\"routed\":{}",
        node.addr, node.up, node.routed
    );
    if let Some(stats) = &node.stats {
        line.push_str(&format!(
            ",\"requests\":{},\"hits\":{},\"misses\":{},\"evaluated\":{},\"records\":{}",
            stats.requests,
            stats.hits,
            stats.misses,
            stats.evaluated,
            stats.records()
        ));
    }
    line.push('}');
    line
}

fn cmd_cluster(args: &[String]) -> Result<String, CliError> {
    let mut nodes: Option<Vec<String>> = None;
    let mut replicas = 1usize;
    let mut vnodes = srra_cluster::Ring::DEFAULT_VNODES;
    let mut binary = false;
    let mut trace: Option<String> = None;
    let mut timeout: Option<Option<std::time::Duration>> = None;
    let mut rest: &[String] = &[];
    let mut iter_index = 0;
    while iter_index < args.len() {
        let flag = &args[iter_index];
        let value = |name: &str| {
            args.get(iter_index + 1)
                .cloned()
                .ok_or_else(|| CliError(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--nodes" => {
                let list = value("--nodes")?;
                nodes = Some(
                    list.split(',')
                        .map(str::trim)
                        .filter(|node| !node.is_empty())
                        .map(str::to_owned)
                        .collect(),
                );
                iter_index += 2;
            }
            "--replicas" => {
                let raw = value("--replicas")?;
                replicas = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError(format!("invalid --replicas value `{raw}`")))?;
                iter_index += 2;
            }
            "--vnodes" => {
                let raw = value("--vnodes")?;
                vnodes = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| CliError(format!("invalid --vnodes value `{raw}`")))?;
                iter_index += 2;
            }
            "--binary" => {
                binary = true;
                iter_index += 1;
            }
            "--trace" => {
                trace = Some(value("--trace")?);
                iter_index += 2;
            }
            "--timeout-ms" => {
                let raw = value("--timeout-ms")?;
                let ms = raw
                    .parse::<u64>()
                    .map_err(|_| CliError(format!("invalid --timeout-ms value `{raw}`")))?;
                timeout = Some((ms > 0).then(|| std::time::Duration::from_millis(ms)));
                iter_index += 2;
            }
            _ => {
                rest = &args[iter_index..];
                break;
            }
        }
    }
    let nodes = nodes
        .filter(|nodes| !nodes.is_empty())
        .ok_or_else(|| CliError(format!("cluster needs --nodes <a:p,b:p,...>\n{}", usage())))?;
    let mut config = ClusterConfig::new(nodes)
        .with_replicas(replicas)
        .with_vnodes(vnodes)
        .with_binary(binary);
    if let Some(timeout) = timeout {
        config = config.with_timeout(timeout);
    }
    let mut cluster =
        ClusterClient::connect(&config).map_err(|err| CliError(format!("cluster: {err}")))?;
    cluster
        .set_trace(trace.as_deref())
        .map_err(|err| CliError(format!("cluster: {err}")))?;
    match rest {
        [op, kernel, algo, budget, opts @ ..] if op == "get" => {
            let point = parse_get_point(kernel, algo, budget, opts)?;
            let canonical = srra_serve::canonical_for(&point).map_err(CliError)?;
            let record = cluster
                .get(&canonical)
                .map_err(|err| CliError(format!("cluster: {err}")))?;
            Ok(match record {
                Some(record) => {
                    let mut line = String::new();
                    record.write_json_line(&mut line);
                    line
                }
                None => "null".to_owned(),
            })
        }
        [op, axes @ ..] if op == "mget" => {
            let points = parse_query_points(axes)?;
            let canonicals = points
                .iter()
                .map(|point| srra_serve::canonical_for(point).map_err(CliError))
                .collect::<Result<Vec<_>, _>>()?;
            let records = cluster
                .mget(&canonicals)
                .map_err(|err| CliError(format!("cluster: {err}")))?;
            Ok(Response::MultiGot { records }.render())
        }
        [op, axes @ ..] if op == "explore" => {
            let points = parse_query_points(axes)?;
            let reply = cluster
                .explore(&points)
                .map_err(|err| CliError(format!("cluster: {err}")))?;
            // Routing/replication summary to stderr, the outcomes to stdout —
            // stdout stays byte-identical between a cold and a warm run.
            eprintln!(
                "cluster explore: {} points over {} nodes, {} hits, {} evaluated, {} replicated",
                reply.outcomes.len(),
                cluster.ring().len(),
                reply.hits,
                reply.evaluated,
                reply.replicated
            );
            Ok(Response::MultiExplored {
                outcomes: reply.outcomes,
                hits: reply.hits,
                evaluated: reply.evaluated,
            }
            .render())
        }
        [op] if op == "stats" => {
            let stats = cluster.stats();
            let mut out = String::new();
            for node in &stats.nodes {
                out.push_str(&render_node_stats_line(node));
                out.push('\n');
            }
            out.push_str(&format!(
                "{{\"nodes_up\":{},\"replicas\":{},\"total_requests\":{},\"total_evaluated\":{},\"total_records\":{}}}",
                stats.nodes_up(),
                stats.replicas,
                stats.total_requests(),
                stats.total_evaluated(),
                stats.total_records()
            ));
            Ok(out)
        }
        [op] if op == "ping" => {
            let mut out = String::new();
            for (addr, up) in cluster.ping_all() {
                out.push_str(&format!("{{\"addr\":\"{addr}\",\"up\":{up}}}\n"));
            }
            Ok(out.trim_end().to_owned())
        }
        [op] if op == "metrics" => {
            let metrics = cluster.metrics();
            let mut out = String::new();
            for (addr, snapshot) in &metrics.nodes {
                out.push_str(&format!(
                    "{{\"addr\":\"{addr}\",\"scraped\":{}}}\n",
                    snapshot.is_some()
                ));
            }
            // One merged line: every reachable node's telemetry plus this
            // process's own client_*/cluster_* instruments.
            let mut combined = metrics.aggregate.clone();
            combined.merge(&metrics.client);
            out.push_str(&combined.render_json());
            Ok(out)
        }
        [op, id] if op == "trace" => {
            let scraped = cluster.trace(id);
            let mut out = String::new();
            for (addr, spans) in &scraped.nodes {
                out.push_str(&format!(
                    "{{\"addr\":\"{addr}\",\"scraped\":{},\"spans\":{}}}\n",
                    spans.is_some(),
                    spans.as_ref().map_or(0, Vec::len)
                ));
            }
            out.push_str(&render_trace_output(id, &scraped.merged));
            Ok(out)
        }
        [op] if op == "repair" => {
            let report = cluster
                .repair()
                .map_err(|err| CliError(format!("cluster: {err}")))?;
            Ok(format!(
                "{{\"digests_equal\":{},\"records_seen\":{},\"records_copied\":{}}}",
                report.digests_equal, report.records_seen, report.records_copied
            ))
        }
        [op, to_flag, list] if op == "rebalance" && to_flag == "--to" => {
            let to: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|node| !node.is_empty())
                .map(str::to_owned)
                .collect();
            let report = cluster
                .rebalance(&to)
                .map_err(|err| CliError(format!("cluster: {err}")))?;
            Ok(format!(
                "{{\"records_walked\":{},\"records_stored\":{}}}",
                report.records_walked, report.records_stored
            ))
        }
        [op, flags @ ..] if op == "top" => {
            let (interval_ms, once) = parse_top_flags(flags)?;
            let window_us = interval_ms.saturating_mul(2_000);
            run_top(interval_ms, once, window_us, || {
                cluster.series_delta(window_us)
            })
        }
        _ => Err(CliError(format!(
            "cluster expects get/mget/explore/stats/ping/metrics/trace/repair/rebalance --to/top, got `{}`\n{}",
            rest.join(" "),
            usage()
        ))),
    }
}

fn cmd_dot(name: &str) -> Result<String, CliError> {
    let kernel = kernel_by_name(name)?;
    Ok(srra_dfg::to_dot(kernel.dfg(), Some(kernel.critical_path())))
}

/// Runs one CLI invocation and returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for unknown commands, unknown
/// kernels/algorithms or malformed numbers.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args {
        [] => Ok(usage().to_owned()),
        [cmd] if cmd == "help" || cmd == "--help" || cmd == "-h" => Ok(usage().to_owned()),
        [cmd] if cmd == "kernels" => Ok(cmd_kernels()),
        [cmd] if cmd == "figure2" => Ok(render_figure2(&figure2())),
        [cmd] if cmd == "table1" => Ok(render_table1(&table1())),
        [cmd, kernel] if cmd == "analyze" => cmd_analyze(kernel),
        [cmd, kernel] if cmd == "dot" => cmd_dot(kernel),
        [cmd, kernel, algo, budget] if cmd == "allocate" => cmd_allocate(kernel, algo, budget),
        [cmd, rest @ ..] if cmd == "explore" => cmd_explore(rest),
        [cmd, rest @ ..] if cmd == "serve" => cmd_serve(rest),
        [cmd, rest @ ..] if cmd == "query" => cmd_query(rest),
        [cmd, rest @ ..] if cmd == "cluster" => cmd_cluster(rest),
        _ => Err(CliError(format!(
            "unrecognised arguments: {}\n{}",
            args.join(" "),
            usage()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn help_and_empty_invocations_print_usage() {
        assert_eq!(run(&args(&[])).unwrap(), usage());
        assert_eq!(run(&args(&["help"])).unwrap(), usage());
        assert_eq!(run(&args(&["--help"])).unwrap(), usage());
    }

    #[test]
    fn usage_lists_every_registered_algorithm() {
        // The algo lists are generated from the registry: a strategy that only
        // exists as a registry entry (greedy) still shows up.
        for name in AllocatorRegistry::global().names() {
            assert!(usage().contains(name), "usage misses {name}");
        }
        assert!(usage().contains("greedy"));
        assert!(usage().contains("--stats-json"));
        assert!(usage().contains("serve"));
        assert!(usage().contains("query"));
        assert!(usage().contains("--cache-dir"));
    }

    #[test]
    fn kernels_lists_all_seven_entries() {
        let out = run(&args(&["kernels"])).unwrap();
        for name in ["example", "fir", "dec_fir", "mat", "imi", "pat", "bic"] {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn analyze_prints_requirements() {
        let out = run(&args(&["analyze", "example"])).unwrap();
        assert!(out.contains("b[k][j]"));
        assert!(out.contains("600"));
        assert!(out.contains("total registers for full replacement: 681"));
    }

    #[test]
    fn allocate_runs_every_algorithm_alias() {
        for algo in [
            "fr", "pr", "cpa", "ks", "none", "v3", "CPA-RA", "greedy", "GR-RA",
        ] {
            let out = run(&args(&["allocate", "example", algo, "64"])).unwrap();
            assert!(out.contains("distribution"), "algo {algo}");
        }
    }

    #[test]
    fn registry_only_strategies_flow_through_explore_untouched() {
        // `greedy` has no AllocatorKind variant and is never named by the
        // explore/bench/cli layers; resolving it here proves a new allocator
        // needs only its impl + registry entry.
        let out = run(&args(&[
            "explore",
            "--kernel",
            "fir",
            "--algos",
            "greedy,cpa",
            "--budgets",
            "8,32",
            "--jobs",
            "1",
        ]))
        .unwrap();
        assert!(out.contains("GR-RA"));
        assert!(out.contains("CPA-RA"));
    }

    #[test]
    fn explore_stats_json_writes_machine_readable_stats() {
        // Per-process dir: concurrent test runs must not share cache files.
        let dir = std::env::temp_dir().join(format!("srra-cli-stats-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let stats_path = dir.join("stats.json");
        let cache_path = dir.join("cache.jsonl");
        let _ = std::fs::remove_file(&stats_path);
        let _ = std::fs::remove_file(&cache_path);
        let explore_args = |stats: &std::path::Path| {
            args(&[
                "explore",
                "--kernel",
                "fir",
                "--budgets",
                "8,16",
                "--jobs",
                "1",
                "--cache",
                cache_path.to_str().unwrap(),
                "--stats-json",
                stats.to_str().unwrap(),
            ])
        };
        let cold_out = run(&explore_args(&stats_path)).unwrap();
        let cold_stats = std::fs::read_to_string(&stats_path).unwrap();
        assert_eq!(
            cold_stats.trim(),
            "{\"points\":6,\"cache_hits\":0,\"evaluated\":6,\"jobs\":1,\"store_records\":6,\"backend\":\"jsonl\"}"
        );
        // Warm re-run: stdout stays byte-identical, the stats file tells the
        // two runs apart.
        let warm_out = run(&explore_args(&stats_path)).unwrap();
        let warm_stats = std::fs::read_to_string(&stats_path).unwrap();
        assert_eq!(warm_out, cold_out);
        assert_eq!(
            warm_stats.trim(),
            "{\"points\":6,\"cache_hits\":6,\"evaluated\":0,\"jobs\":1,\"store_records\":6,\"backend\":\"jsonl\"}"
        );
        let _ = std::fs::remove_file(&stats_path);
        let _ = std::fs::remove_file(&cache_path);
    }

    #[test]
    fn explore_stats_json_requires_a_value() {
        assert!(run(&args(&["explore", "--stats-json"])).is_err());
    }

    #[test]
    fn explore_with_a_sharded_cache_reports_per_shard_statistics() {
        let dir = std::env::temp_dir().join(format!("srra-cli-shards-test-{}", std::process::id()));
        let cache_dir = dir.join("cache");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stats_path = dir.join("stats.json");
        let explore_args = || {
            args(&[
                "explore",
                "--kernel",
                "fir",
                "--budgets",
                "8,16",
                "--jobs",
                "1",
                "--cache-dir",
                cache_dir.to_str().unwrap(),
                "--shards",
                "3",
                "--stats-json",
                stats_path.to_str().unwrap(),
            ])
        };
        let cold_out = run(&explore_args()).unwrap();
        let cold_stats = std::fs::read_to_string(&stats_path).unwrap();
        assert!(
            cold_stats.contains("\"backend\":\"sharded\""),
            "{cold_stats}"
        );
        assert!(cold_stats.contains("\"evaluated\":6"), "{cold_stats}");
        assert!(cold_stats.contains(",\"shards\":["), "{cold_stats}");
        // The shard list has exactly three entries summing to the store size.
        let shards: Vec<usize> = cold_stats
            .split("\"shards\":[")
            .nth(1)
            .unwrap()
            .split(']')
            .next()
            .unwrap()
            .split(',')
            .map(|n| n.parse().unwrap())
            .collect();
        assert_eq!(shards.len(), 3);
        assert_eq!(shards.iter().sum::<usize>(), 6);
        // Warm re-run: stdout byte-identical, everything a cache hit.
        let warm_out = run(&explore_args()).unwrap();
        let warm_stats = std::fs::read_to_string(&stats_path).unwrap();
        assert_eq!(warm_out, cold_out);
        assert!(warm_stats.contains("\"cache_hits\":6"), "{warm_stats}");
        assert!(
            warm_stats.contains("\"backend\":\"sharded\""),
            "{warm_stats}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn explore_rejects_conflicting_cache_flags() {
        assert!(run(&args(&[
            "explore",
            "--kernel",
            "fir",
            "--cache",
            "/tmp/x.jsonl",
            "--cache-dir",
            "/tmp/xdir"
        ]))
        .is_err());
        assert!(run(&args(&["explore", "--kernel", "fir", "--shards", "4"])).is_err());
        assert!(run(&args(&[
            "explore",
            "--shards",
            "0",
            "--cache-dir",
            "/tmp/y"
        ]))
        .is_err());
    }

    #[test]
    fn serve_and_query_round_trip_over_a_live_socket() {
        let dir = std::env::temp_dir().join(format!("srra-cli-serve-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");

        // Bind directly (not via `run`) so the test learns the port without
        // scraping stdout, then exercise the `query` command end to end.
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::ephemeral(cache_dir.clone())
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let query = |rest: &[&str]| {
            let mut full = vec!["query", "--addr", addr.as_str()];
            full.extend_from_slice(rest);
            run(&args(&full))
        };
        let miss = query(&["get", "fir", "cpa", "32"]).unwrap();
        assert_eq!(miss, "{\"ok\":true,\"found\":false}");
        let explored = query(&["explore", "--kernel", "fir", "--algos", "cpa"]).unwrap();
        assert!(explored.contains("\"evaluated\":1"), "{explored}");
        let hit = query(&["get", "fir", "cpa", "32"]).unwrap();
        assert!(hit.contains("\"found\":true"), "{hit}");
        assert!(hit.contains("\"kernel\":\"fir\""), "{hit}");
        let stats = query(&["stats"]).unwrap();
        assert!(stats.contains("\"evaluated\":1"), "{stats}");
        assert_eq!(
            query(&["shutdown"]).unwrap(),
            "{\"ok\":true,\"shutting_down\":true}"
        );
        handle.join().unwrap();

        // Bad query invocations fail client-side with usage hints.
        assert!(run(&args(&["query", "get", "fir", "cpa", "32"])).is_err());
        assert!(query(&["get", "fir", "cpa", "many"]).is_err());
        assert!(query(&["frobnicate"]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_pipe_and_batch_drive_one_keepalive_connection() {
        let dir = std::env::temp_dir().join(format!("srra-cli-pipe-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::ephemeral(dir.join("cache"))
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        // `explore --batch` switches to one mexplore line with per-point
        // outcomes.
        let batched = run(&args(&[
            "query", "--addr", &addr, "explore", "--kernel", "fir", "--algos", "cpa", "--batch",
        ]))
        .unwrap();
        assert!(
            batched.contains("\"outcomes\":[{\"hit\":false"),
            "{batched}"
        );

        // `pipe`: several ops pipelined over ONE connection, replies in
        // request order, one line each.
        let input = concat!(
            "{\"op\":\"explore\",\"points\":[{\"kernel\":\"fir\",\"algo\":\"cpa\",\"budget\":32}]}\n",
            "\n",
            "{\"op\":\"mget\",\"canonicals\":[\"kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560\",\"nope\"]}\n",
            "{\"op\":\"stats\"}\n",
        );
        let out =
            cmd_query_pipe(query_connect(&addr, false, None).unwrap(), input.as_bytes()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert!(lines[0].starts_with("{\"ok\":true,\"records\":["), "{out}");
        assert!(
            lines[1].starts_with("{\"ok\":true,\"got\":[{") && lines[1].ends_with(",null]}"),
            "{out}"
        );
        assert!(lines[2].contains("\"ops\":{"), "{out}");

        // The same pipe over the binary codec: stdin stays JSON lines, only
        // the wire format changes, and the data-bearing replies (not the
        // stats line, whose latency digests move between runs) come back
        // byte-identical to the JSON-codec run.
        let binary_out =
            cmd_query_pipe(query_connect(&addr, true, None).unwrap(), input.as_bytes()).unwrap();
        let binary_lines: Vec<&str> = binary_out.lines().collect();
        assert_eq!(binary_lines.len(), 3, "{binary_out}");
        assert_eq!(binary_lines[..2], lines[..2], "{binary_out}");
        assert!(binary_lines[2].contains("\"ops\":{"), "{binary_out}");

        // `--binary get` speaks the binary codec and prints the same JSON.
        let hit = run(&args(&[
            "query", "--addr", &addr, "--binary", "get", "fir", "cpa", "32",
        ]))
        .unwrap();
        assert!(hit.contains("\"found\":true"), "{hit}");
        assert!(hit.contains("\"kernel\":\"fir\""), "{hit}");

        // Malformed or empty stdin fails client-side, before any bytes move.
        assert!(cmd_query_pipe(
            query_connect(&addr, false, None).unwrap(),
            "not json\n".as_bytes()
        )
        .is_err());
        assert!(cmd_query_pipe(query_connect(&addr, false, None).unwrap(), "".as_bytes()).is_err());

        let down = run(&args(&["query", "--addr", &addr, "shutdown"])).unwrap();
        assert!(down.contains("shutting_down"));
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_trace_records_and_prints_span_waterfalls() {
        let dir = std::env::temp_dir().join(format!("srra-cli-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let server = Server::bind(&ServerConfig {
            shards: 2,
            workers: 2,
            ..ServerConfig::ephemeral(dir.join("cache"))
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());
        let query = |rest: &[&str]| {
            let mut full = vec!["query", "--addr", addr.as_str()];
            full.extend_from_slice(rest);
            run(&args(&full))
        };

        // A traced cold explore leaves a span tree in the flight recorder;
        // `trace <id>` prints it as a waterfall with the engine stages as
        // children of the root request span.
        let explored = query(&[
            "--trace", "cli.q.t1", "explore", "--kernel", "fir", "--algos", "cpa",
        ])
        .unwrap();
        assert!(explored.contains("\"evaluated\":1"), "{explored}");
        let waterfall = query(&["trace", "cli.q.t1"]).unwrap();
        assert!(waterfall.starts_with("trace cli.q.t1:"), "{waterfall}");
        assert!(waterfall.contains("\nexplore +0us "), "{waterfall}");
        assert!(waterfall.contains("codec=json"), "{waterfall}");
        assert!(waterfall.contains("  engine.allocation +"), "{waterfall}");
        assert!(waterfall.contains("  render +"), "{waterfall}");

        // An unknown id answers cleanly, and a malformed one fails
        // client-side before any bytes move.
        assert_eq!(
            query(&["trace", "nope"]).unwrap(),
            "trace nope: no spans retained"
        );
        assert!(query(&["--trace", "bad id", "stats"]).is_err());

        query(&["shutdown"]).unwrap();
        handle.join().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cluster_routes_queries_over_two_nodes() {
        let dir =
            std::env::temp_dir().join(format!("srra-cli-cluster-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for index in 0..2 {
            let server = Server::bind(&ServerConfig {
                shards: 2,
                workers: 2,
                ..ServerConfig::ephemeral(dir.join(format!("node-{index}")))
            })
            .unwrap();
            addrs.push(server.local_addr().to_string());
            handles.push(std::thread::spawn(move || server.run().unwrap()));
        }
        let nodes = addrs.join(",");
        let cluster = |rest: &[&str]| {
            let mut full = vec!["cluster", "--nodes", nodes.as_str(), "--replicas", "2"];
            full.extend_from_slice(rest);
            run(&args(&full))
        };

        let ping = cluster(&["ping"]).unwrap();
        assert_eq!(ping.matches("\"up\":true").count(), 2, "{ping}");

        // 36 points: even at the worst tested balance bound (a 2/3 key
        // share) the chance of one node owning all of them is < 1e-6, so
        // the per-node traffic assertions below cannot realistically flake.
        let axes = [
            "--kernel",
            "fir,mat,pat",
            "--algos",
            "fr,pr,cpa",
            "--budgets",
            "8,16,32,64",
        ];
        let explored = cluster(&[&["explore"], &axes[..]].concat()).unwrap();
        assert!(explored.contains("\"outcomes\":["), "{explored}");
        assert!(explored.contains("\"evaluated\":36"), "{explored}");

        // Warm mget: every record answered, none null.
        let got = cluster(&[&["mget"], &axes[..]].concat()).unwrap();
        assert!(got.starts_with("{\"ok\":true,\"got\":["), "{got}");
        assert!(!got.contains("null"), "{got}");

        // The same warm mget over the binary codec routes identically and
        // prints byte-identical output.
        let binary_got = cluster(&[&["--binary", "mget"], &axes[..]].concat()).unwrap();
        assert_eq!(binary_got, got);

        // Single get against a replicated record.
        let hit = cluster(&["get", "fir", "cpa", "8"]).unwrap();
        assert!(hit.contains("\"kernel\":\"fir\""), "{hit}");
        let miss = cluster(&["get", "fir", "cpa", "127"]).unwrap();
        assert_eq!(miss, "null");

        // Stats: one line per node plus the totals line; both nodes saw
        // evaluations (the ring split the grid) and replication doubled the
        // stored records.
        let stats = cluster(&["stats"]).unwrap();
        let lines: Vec<&str> = stats.lines().collect();
        assert_eq!(lines.len(), 3, "{stats}");
        for line in &lines[..2] {
            assert!(line.contains("\"up\":true"), "{stats}");
            assert!(!line.contains("\"evaluated\":0,"), "{stats}");
        }
        assert!(lines[2].contains("\"nodes_up\":2"), "{stats}");
        assert!(lines[2].contains("\"total_evaluated\":36"), "{stats}");
        assert!(lines[2].contains("\"total_records\":72"), "{stats}");

        // A traced explore stamps one id across every node's sub-batch;
        // `cluster trace` scrapes both flight recorders and merges the spans
        // into one cluster-wide waterfall.
        let traced = cluster(&[
            "--trace",
            "cli.c.t1",
            "explore",
            "--kernel",
            "imi",
            "--algos",
            "cpa",
            "--budgets",
            "8,16,32,64",
        ])
        .unwrap();
        assert!(traced.contains("\"outcomes\":["), "{traced}");
        let waterfall = cluster(&["trace", "cli.c.t1"]).unwrap();
        assert_eq!(
            waterfall.matches("\"scraped\":true").count(),
            2,
            "{waterfall}"
        );
        assert!(waterfall.contains("trace cli.c.t1:"), "{waterfall}");
        assert!(waterfall.contains("mexplore +"), "{waterfall}");
        assert!(waterfall.contains("  engine.allocation +"), "{waterfall}");

        // Config errors fail before any traffic.
        assert!(run(&args(&["cluster", "stats"])).is_err(), "needs --nodes");
        assert!(cluster(&["frobnicate"]).is_err());
        assert!(run(&args(&[
            "cluster",
            "--nodes",
            nodes.as_str(),
            "--replicas",
            "3",
            "stats"
        ]))
        .is_err());

        for addr in &addrs {
            run(&args(&["query", "--addr", addr, "shutdown"])).unwrap();
        }
        for handle in handles {
            handle.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_rejects_missing_or_malformed_flags() {
        assert!(run(&args(&["serve"])).is_err(), "serve needs --cache-dir");
        assert!(run(&args(&["serve", "--cache-dir"])).is_err());
        assert!(run(&args(&["serve", "--cache-dir", "/tmp/x", "--shards", "0"])).is_err());
        assert!(run(&args(&["serve", "--cache-dir", "/tmp/x", "--frobnicate"])).is_err());
    }

    #[test]
    fn figure2_and_dot_commands_work() {
        assert!(run(&args(&["figure2"])).unwrap().contains("1184"));
        let dot = run(&args(&["dot", "example"])).unwrap();
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn explore_prints_pareto_tables_and_summary() {
        let out = run(&args(&[
            "explore",
            "--kernel",
            "fir",
            "--budgets",
            "8,16,32",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("Pareto frontier for fir"));
        assert!(out.contains("best allocator per kernel:"));
        assert!(out.contains("CPA-RA"));
    }

    #[test]
    fn explore_csv_covers_every_design_point() {
        let out = run(&args(&[
            "explore",
            "--kernel",
            "fir",
            "--budgets",
            "8,32",
            "--algos",
            "fr,cpa",
            "--latencies",
            "1,2",
            "--csv",
            "--jobs",
            "1",
        ]))
        .unwrap();
        // header + 1 kernel x 2 algorithms x 2 budgets x 2 latencies
        assert_eq!(out.lines().count(), 1 + 8);
        assert!(out.starts_with("kernel,algorithm,"));
    }

    #[test]
    fn explore_is_deterministic_across_job_counts() {
        let serial = run(&args(&[
            "explore",
            "--kernel",
            "mat",
            "--budgets",
            "16,32",
            "--jobs",
            "1",
        ]));
        let parallel = run(&args(&[
            "explore",
            "--kernel",
            "mat",
            "--budgets",
            "16,32",
            "--jobs",
            "8",
        ]));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn explore_rejects_bad_flags_and_values() {
        assert!(run(&args(&["explore", "--frobnicate"])).is_err());
        assert!(run(&args(&["explore", "--kernel", "nope"])).is_err());
        assert!(run(&args(&["explore", "--budgets", "abc"])).is_err());
        assert!(run(&args(&["explore", "--budgets"])).is_err());
        assert!(run(&args(&["explore", "--jobs", "0"])).is_err());
        assert!(run(&args(&["explore", "--devices", "xcv9000"])).is_err());
        assert!(run(&args(&["explore", "--algos", ","])).is_err());
    }

    #[test]
    fn errors_are_reported_with_usage_hints() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&args(&["analyze", "nope"])).is_err());
        assert!(run(&args(&["allocate", "fir", "zzz", "32"])).is_err());
        assert!(run(&args(&["allocate", "fir", "cpa", "many"])).is_err());
        let err = run(&args(&["allocate", "fir", "cpa", "1"])).unwrap_err();
        assert!(err.to_string().contains("allocation failed"));
    }

    #[test]
    fn series_and_top_render_the_sampled_time_dimension() {
        let dir = std::env::temp_dir().join(format!("srra-cli-top-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A malformed SLO rule is rejected at bind time, before serving.
        let bad = run(&args(&[
            "serve",
            "--cache-dir",
            dir.join("bad").to_str().unwrap(),
            "--sample-interval-ms",
            "10",
            "--slo",
            "nonsense",
        ]));
        assert!(bad.is_err(), "{bad:?}");

        // Two sampled nodes; node traffic below arms the deliberately
        // impossible latency SLO, so `top` shows a breach.
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for index in 0..2 {
            let server = Server::bind(&ServerConfig {
                shards: 2,
                workers: 2,
                sample_interval_ms: 10,
                slos: vec!["serve_op_explore_latency_us p99 < 1us over 30s".to_owned()],
                ..ServerConfig::ephemeral(dir.join(format!("node-{index}")))
            })
            .unwrap();
            addrs.push(server.local_addr().to_string());
            handles.push(std::thread::spawn(move || server.run().unwrap()));
        }
        let query = |addr: &str, rest: &[&str]| {
            let mut full = vec!["query", "--addr", addr];
            full.extend_from_slice(rest);
            run(&args(&full))
        };
        let explored = query(&addrs[0], &["explore", "--kernel", "fir", "--algos", "cpa"]).unwrap();
        assert!(explored.contains("\"evaluated\":1"), "{explored}");
        std::thread::sleep(std::time::Duration::from_millis(60));

        // Raw sample mode: at least two timestamped snapshots by now.
        let series = query(&addrs[0], &["series", "--last", "16"]).unwrap();
        assert!(series.contains("\"series\":["), "{series}");
        assert!(series.matches("\"at_us\":").count() >= 2, "{series}");

        // Raw window mode: the delta envelope with the window bounds.
        let delta = query(&addrs[0], &["series", "--window-us", "30000000"]).unwrap();
        assert!(delta.contains("\"delta\":{"), "{delta}");
        assert!(delta.contains("\"from_us\":"), "{delta}");

        // Exactly one of --last / --window-us, and only known flags.
        assert!(query(&addrs[0], &["series"]).is_err());
        assert!(query(&addrs[0], &["series", "--last", "4", "--window-us", "1000"]).is_err());
        assert!(query(&addrs[0], &["series", "--last", "0"]).is_err());
        assert!(query(&addrs[0], &["top", "--frobnicate"]).is_err());

        // Single-node dashboard frame: header, the node row, the breach.
        let frame = query(&addrs[0], &["top", "--once"]).unwrap();
        assert!(frame.contains("NODE"), "{frame}");
        assert!(frame.contains(&addrs[0]), "{frame}");
        assert!(frame.contains(" up "), "{frame}");
        assert!(frame.contains("BREACH:1"), "{frame}");

        // Fleet dashboard: both node rows plus the merged fleet row; the
        // idle node is up but SLO-clean, so the fleet inherits one breach.
        let nodes = addrs.join(",");
        let top = run(&args(&["cluster", "--nodes", &nodes, "top", "--once"])).unwrap();
        for addr in &addrs {
            assert!(top.contains(addr.as_str()), "{top}");
        }
        assert!(top.contains("fleet (2/2 up)"), "{top}");
        assert!(top.contains("BREACH:1"), "{top}");

        for addr in &addrs {
            query(addr, &["shutdown"]).unwrap();
        }
        for handle in handles {
            handle.join().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
