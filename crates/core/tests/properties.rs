//! Property-based tests for the allocation algorithms and the memory cost model.

use proptest::prelude::*;
use srra_core::{
    allocate, critical_path_aware_with, memory_cost, AllocatorKind, CpaOptions, CutSelectionPolicy,
    MemoryCostModel, ReplacementMode, ReplacementPlan,
};
use srra_ir::{Kernel, KernelBuilder};
use srra_reuse::ReuseAnalysis;

/// Two-statement kernels shaped like the paper's running example, parameterised by the
/// loop bounds and by whether the second statement consumes the first one's result.
fn generated_kernel(ni: u64, nj: u64, nk: u64, chain: bool) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let a = b.add_array("a", &[nk], 16);
    let bb = b.add_array("b", &[nk, nj], 16);
    let c = b.add_array("c", &[nj], 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);

    let op1 = b.mul(b.read(a, &[b.idx(k)]), b.read(bb, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    let rhs = if chain {
        b.read(d, &[b.idx(i), b.idx(k)])
    } else {
        b.read(a, &[b.idx(k)])
    };
    let op2 = b.mul(b.read(c, &[b.idx(j)]), rhs);
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);
    b.build().expect("generated kernel is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn modes_are_consistent_with_the_assigned_registers(
        ni in 1u64..5,
        nj in 2u64..14,
        nk in 2u64..14,
        chain in any::<bool>(),
        budget in 5u64..150,
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let analysis = ReuseAnalysis::of(&kernel);
        for kind in AllocatorKind::all() {
            let Ok(allocation) = allocate(kind, &kernel, &analysis, budget) else {
                prop_assert!(budget < analysis.len() as u64);
                continue;
            };
            for decision in &allocation {
                let summary = analysis.get(decision.ref_id()).unwrap();
                match decision.mode() {
                    ReplacementMode::Full => {
                        prop_assert!(summary.has_reuse());
                        prop_assert!(decision.beta() >= summary.registers_full());
                    }
                    ReplacementMode::Partial => {
                        prop_assert!(summary.has_reuse());
                        prop_assert!(decision.beta() >= 1);
                        prop_assert!(decision.beta() < summary.registers_full());
                    }
                    ReplacementMode::None => {
                        prop_assert!(
                            !summary.has_reuse() || decision.beta() <= 1,
                            "a None-mode reference never holds more than its staging register"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn storage_map_promotes_exactly_the_fully_replaced_references(
        ni in 1u64..5,
        nj in 2u64..14,
        nk in 2u64..14,
        budget in 5u64..150,
    ) {
        let kernel = generated_kernel(ni, nj, nk, true);
        let analysis = ReuseAnalysis::of(&kernel);
        let Ok(allocation) =
            allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, budget)
        else {
            return Ok(());
        };
        let storage = allocation.storage_map();
        for decision in &allocation {
            let expected = decision.mode() == ReplacementMode::Full;
            let is_register = storage.storage(decision.ref_id()) == srra_dfg::Storage::Register;
            prop_assert_eq!(expected, is_register);
        }
    }

    #[test]
    fn memory_cost_is_monotone_in_the_register_budget(
        ni in 1u64..5,
        nj in 2u64..14,
        nk in 2u64..14,
        chain in any::<bool>(),
        budget in 6u64..120,
        extra in 1u64..80,
    ) {
        let kernel = generated_kernel(ni, nj, nk, chain);
        let analysis = ReuseAnalysis::of(&kernel);
        let model = MemoryCostModel::default();
        for kind in [AllocatorKind::PartialReuse, AllocatorKind::CriticalPathAware] {
            let Ok(small) = allocate(kind, &kernel, &analysis, budget) else {
                return Ok(());
            };
            let large = allocate(kind, &kernel, &analysis, budget + extra).unwrap();
            let small_cost = memory_cost(&kernel, &analysis, &small, &model);
            let large_cost = memory_cost(&kernel, &analysis, &large, &model);
            prop_assert!(
                large_cost.memory_cycles <= small_cost.memory_cycles,
                "{kind:?}: more registers must not cost more memory cycles"
            );
        }
    }

    #[test]
    fn replacement_plans_account_for_every_register(
        ni in 1u64..5,
        nj in 2u64..14,
        nk in 2u64..14,
        budget in 5u64..150,
    ) {
        let kernel = generated_kernel(ni, nj, nk, true);
        let analysis = ReuseAnalysis::of(&kernel);
        for kind in AllocatorKind::all() {
            let Ok(allocation) = allocate(kind, &kernel, &analysis, budget) else {
                continue;
            };
            let plan = ReplacementPlan::new(&kernel, &analysis, &allocation);
            prop_assert_eq!(plan.total_registers(), allocation.total_registers());
            for ref_plan in plan.refs() {
                prop_assert!(ref_plan.steady_miss >= 0.0 && ref_plan.steady_miss <= 1.0);
                prop_assert!(
                    ref_plan.prologue_loads + ref_plan.epilogue_stores
                        <= analysis.get(ref_plan.ref_id).unwrap().access_counts().total
                );
            }
        }
    }

    #[test]
    fn cut_selection_policies_stay_within_budget_and_cover_the_min_policy_cut(
        ni in 1u64..5,
        nj in 2u64..14,
        nk in 2u64..14,
        budget in 6u64..120,
    ) {
        let kernel = generated_kernel(ni, nj, nk, true);
        let analysis = ReuseAnalysis::of(&kernel);
        for policy in [CutSelectionPolicy::MinRegisters, CutSelectionPolicy::MaxBenefitPerRegister] {
            let options = CpaOptions { policy, ..CpaOptions::default() };
            let Ok(allocation) =
                critical_path_aware_with(&kernel, &analysis, budget, &options)
            else {
                return Ok(());
            };
            prop_assert!(allocation.total_registers() <= budget);
        }
        let level = CpaOptions { level_cuts_only: true, ..CpaOptions::default() };
        if let Ok(allocation) = critical_path_aware_with(&kernel, &analysis, budget, &level) {
            prop_assert!(allocation.total_registers() <= budget);
        }
    }
}
