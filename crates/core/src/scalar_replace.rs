//! Scalar-replacement planning: turning a register allocation into the quantities a
//! code generator (or, here, the FPGA design model) needs.
//!
//! The paper deliberately leaves the concrete code-generation scheme (loop peeling or
//! predication) out of scope and keeps the control structure identical across its
//! design versions.  We mirror that decision: instead of emitting transformed C, the
//! [`ReplacementPlan`] records, per reference,
//!
//! * how many rotation registers hold its working set (`β`),
//! * how many **prologue loads** fill those registers before the steady state,
//! * how many **epilogue stores** drain register-resident results back to RAM, and
//! * the steady-state **miss fraction** (the share of accesses that still reach RAM).
//!
//! `srra-fpga` consumes these numbers to account for peeled iterations, register area
//! and RAM traffic without simulating the transformed source text.

use serde::{Deserialize, Serialize};
use srra_ir::{Kernel, RefId};
use srra_reuse::ReuseAnalysis;

use crate::allocation::{RegisterAllocation, ReplacementMode};
use crate::cost::miss_fraction;

/// Per-reference slice of a [`ReplacementPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefPlan {
    /// The reference group.
    pub ref_id: RefId,
    /// Name of the referenced array.
    pub array_name: String,
    /// The reference rendered with loop names.
    pub rendered: String,
    /// Registers assigned (`β`).
    pub beta: u64,
    /// Registers a full replacement would need (`R`).
    pub registers_full: u64,
    /// How the reference is implemented.
    pub mode: ReplacementMode,
    /// Width of one element in bits.
    pub elem_bits: u32,
    /// RAM loads required to warm the registers up before the steady state (whole
    /// execution, i.e. once per traversal of the reuse loop).
    pub prologue_loads: u64,
    /// RAM stores required to drain register-resident results after the steady state.
    pub epilogue_stores: u64,
    /// Fraction of steady-state accesses that still go to RAM.
    pub steady_miss: f64,
}

impl RefPlan {
    /// Total register bits this reference occupies (`β × element width`).
    pub fn register_bits(&self) -> u64 {
        self.beta * u64::from(self.elem_bits)
    }
}

/// A complete scalar-replacement plan for one kernel and allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplacementPlan {
    kernel_name: String,
    refs: Vec<RefPlan>,
}

impl ReplacementPlan {
    /// Builds the plan for an allocation.
    pub fn new(kernel: &Kernel, analysis: &ReuseAnalysis, allocation: &RegisterAllocation) -> Self {
        let refs = analysis
            .iter()
            .map(|summary| {
                let beta = allocation.beta(summary.ref_id());
                let mode = allocation
                    .get(summary.ref_id())
                    .map(|d| d.mode())
                    .unwrap_or(ReplacementMode::None);
                let table = kernel.reference_table();
                let info = table.get(summary.ref_id());
                let has_read = info.map(|i| i.has_read()).unwrap_or(false);
                let has_write = info.map(|i| i.has_write()).unwrap_or(false);
                // Essential transfers are charged to the prologue (loads) for read
                // references and to the epilogue (stores) for written references; a
                // reference that is only read never needs an epilogue and vice versa.
                let essential = match mode {
                    ReplacementMode::None => 0,
                    ReplacementMode::Full => summary.access_counts().essential,
                    ReplacementMode::Partial => {
                        // Only the register-resident share is warmed up / drained.
                        let frac = beta as f64 / summary.registers_full().max(1) as f64;
                        (summary.access_counts().essential as f64 * frac.clamp(0.0, 1.0)).round()
                            as u64
                    }
                };
                let (prologue_loads, epilogue_stores) = if has_write {
                    (0, essential)
                } else if has_read {
                    (essential, 0)
                } else {
                    (0, 0)
                };
                RefPlan {
                    ref_id: summary.ref_id(),
                    array_name: summary.array_name().to_owned(),
                    rendered: summary.rendered().to_owned(),
                    beta,
                    registers_full: summary.registers_full(),
                    mode,
                    elem_bits: summary.elem_bits(),
                    prologue_loads,
                    epilogue_stores,
                    steady_miss: miss_fraction(analysis, allocation, summary.ref_id()),
                }
            })
            .collect();
        Self {
            kernel_name: kernel.name().to_owned(),
            refs,
        }
    }

    /// Name of the kernel the plan was computed for.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Per-reference plans in reference-table order.
    pub fn refs(&self) -> &[RefPlan] {
        &self.refs
    }

    /// The plan for one reference group.
    pub fn get(&self, ref_id: RefId) -> Option<&RefPlan> {
        self.refs.iter().find(|r| r.ref_id == ref_id)
    }

    /// Total registers used by the plan.
    pub fn total_registers(&self) -> u64 {
        self.refs.iter().map(|r| r.beta).sum()
    }

    /// Total register bits (flip-flops) used by the plan; drives the area model.
    pub fn total_register_bits(&self) -> u64 {
        self.refs.iter().map(RefPlan::register_bits).sum()
    }

    /// Total prologue loads across all references.
    pub fn total_prologue_loads(&self) -> u64 {
        self.refs.iter().map(|r| r.prologue_loads).sum()
    }

    /// Total epilogue stores across all references.
    pub fn total_epilogue_stores(&self) -> u64 {
        self.refs.iter().map(|r| r.epilogue_stores).sum()
    }

    /// Number of references that keep using their RAM block in steady state.
    pub fn ram_resident_refs(&self) -> usize {
        self.refs.iter().filter(|r| r.steady_miss > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocatorKind};
    use srra_ir::examples::paper_example;

    fn plan(kind: AllocatorKind, budget: u64) -> ReplacementPlan {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        ReplacementPlan::new(&kernel, &analysis, &allocation)
    }

    #[test]
    fn plan_totals_match_the_allocation() {
        let p = plan(AllocatorKind::CriticalPathAware, 64);
        assert_eq!(p.kernel_name(), "paper_example");
        assert_eq!(p.total_registers(), 64);
        assert_eq!(p.total_register_bits(), 64 * 16);
        assert_eq!(p.refs().len(), 5);
    }

    #[test]
    fn read_only_references_warm_up_and_written_references_drain() {
        let p = plan(AllocatorKind::FullReuse, 64);
        // a is read-only and fully replaced: 30 essential loads, no stores.
        let a = p.refs().iter().find(|r| r.array_name == "a").unwrap();
        assert_eq!(a.prologue_loads, 30);
        assert_eq!(a.epilogue_stores, 0);
        assert_eq!(a.steady_miss, 0.0);
        // d is written: with FR-RA it is not replaced, so no prologue/epilogue at all.
        let d = p.refs().iter().find(|r| r.array_name == "d").unwrap();
        assert_eq!(d.prologue_loads + d.epilogue_stores, 0);
        assert_eq!(d.steady_miss, 1.0);
    }

    #[test]
    fn partial_replacement_scales_the_prologue() {
        let p = plan(AllocatorKind::PartialReuse, 64);
        let d = p.refs().iter().find(|r| r.array_name == "d").unwrap();
        assert_eq!(d.beta, 12);
        assert!(d.epilogue_stores > 0);
        assert!(d.epilogue_stores < 60);
        assert!((d.steady_miss - 0.6).abs() < 1e-9);
    }

    #[test]
    fn ram_resident_count_reflects_steady_misses() {
        let base = plan(AllocatorKind::NoReplacement, 0);
        assert_eq!(base.ram_resident_refs(), 5);
        let cpa = plan(AllocatorKind::CriticalPathAware, 64);
        // d is fully register resident; a, b partial; c, e still RAM resident.
        assert_eq!(cpa.ram_resident_refs(), 4);
        assert!(cpa.get(cpa.refs()[0].ref_id).is_some());
    }
}
