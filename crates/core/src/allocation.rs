use serde::{Deserialize, Serialize};
use srra_dfg::{Storage, StorageMap};
use srra_ir::RefId;
use srra_reuse::{ReuseAnalysis, ReuseSummary};

use crate::registry::AllocatorRef;

/// The five register-allocation strategies that predate the open registry.
///
/// This enum is kept as a stable, matchable handle for the built-in
/// strategies; each variant maps to a [`crate::AllocatorRegistry`] entry via
/// `AllocatorRef::from(kind)`.  New strategies are registry entries only and
/// have no variant here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AllocatorKind {
    /// The untransformed code: every access goes to a RAM block.
    NoReplacement,
    /// FR-RA — greedy full-reuse allocation by benefit/cost ratio.
    FullReuse,
    /// PR-RA — FR-RA plus partial reuse for the next reference in the greedy order.
    PartialReuse,
    /// CPA-RA — the paper's critical-path-aware allocation over cuts of the Critical
    /// Graph.
    CriticalPathAware,
    /// Exact 0/1-knapsack maximisation of eliminated memory accesses.
    KnapsackOptimal,
}

impl AllocatorKind {
    /// All algorithm kinds, in presentation order.
    pub fn all() -> [AllocatorKind; 5] {
        [
            AllocatorKind::NoReplacement,
            AllocatorKind::FullReuse,
            AllocatorKind::PartialReuse,
            AllocatorKind::CriticalPathAware,
            AllocatorKind::KnapsackOptimal,
        ]
    }

    /// The three kinds evaluated in the paper's Table 1, in `v1`, `v2`, `v3` order.
    pub fn paper_versions() -> [AllocatorKind; 3] {
        [
            AllocatorKind::FullReuse,
            AllocatorKind::PartialReuse,
            AllocatorKind::CriticalPathAware,
        ]
    }

    /// The short algorithm name used in the paper (e.g. `CPA-RA`).
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::NoReplacement => "BASE",
            AllocatorKind::FullReuse => "FR-RA",
            AllocatorKind::PartialReuse => "PR-RA",
            AllocatorKind::CriticalPathAware => "CPA-RA",
            AllocatorKind::KnapsackOptimal => "KS-OPT",
        }
    }

    /// The design-version name used in the paper's Table 1 (`v1`, `v2`, `v3`), or a
    /// descriptive name for the extra baselines.
    pub fn version_name(self) -> &'static str {
        match self {
            AllocatorKind::NoReplacement => "v0",
            AllocatorKind::FullReuse => "v1",
            AllocatorKind::PartialReuse => "v2",
            AllocatorKind::CriticalPathAware => "v3",
            AllocatorKind::KnapsackOptimal => "vk",
        }
    }
}

impl std::fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a reference's accesses are implemented after allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReplacementMode {
    /// The reference keeps going to its RAM block; any register it holds is only the
    /// staging register needed to feed the datapath.
    None,
    /// Partial scalar replacement: `β` of the `R` required registers are provided, so a
    /// `β / R` share of the reuse is captured.
    Partial,
    /// Full scalar replacement: the whole working set lives in registers and only the
    /// essential (cold / final) transfers touch RAM.
    Full,
}

impl ReplacementMode {
    /// Returns `true` for [`ReplacementMode::Full`].
    pub fn is_full(self) -> bool {
        matches!(self, ReplacementMode::Full)
    }

    /// Returns `true` for [`ReplacementMode::Partial`].
    pub fn is_partial(self) -> bool {
        matches!(self, ReplacementMode::Partial)
    }
}

/// The allocation decision for a single reference group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefAllocation {
    ref_id: RefId,
    array_name: String,
    rendered: String,
    registers_full: u64,
    beta: u64,
    mode: ReplacementMode,
}

impl RefAllocation {
    pub(crate) fn new(summary: &ReuseSummary, beta: u64, mode: ReplacementMode) -> Self {
        Self {
            ref_id: summary.ref_id(),
            array_name: summary.array_name().to_owned(),
            rendered: summary.rendered().to_owned(),
            registers_full: summary.registers_full(),
            beta,
            mode,
        }
    }

    /// The reference group this decision applies to.
    pub fn ref_id(&self) -> RefId {
        self.ref_id
    }

    /// Name of the referenced array.
    pub fn array_name(&self) -> &str {
        &self.array_name
    }

    /// The reference rendered with the kernel's loop names, e.g. `b[k][j]`.
    pub fn rendered(&self) -> &str {
        &self.rendered
    }

    /// Registers a full replacement would require (`R_i`).
    pub fn registers_full(&self) -> u64 {
        self.registers_full
    }

    /// Registers actually assigned (`β_i`).
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// How the reference is implemented.
    pub fn mode(&self) -> ReplacementMode {
        self.mode
    }

    /// Fraction of the reference's reuse captured by the assignment, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        match self.mode {
            ReplacementMode::None => 0.0,
            ReplacementMode::Full => 1.0,
            ReplacementMode::Partial => {
                (self.beta as f64 / self.registers_full.max(1) as f64).clamp(0.0, 1.0)
            }
        }
    }
}

/// A complete register allocation for one kernel: the `β_i` vector of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegisterAllocation {
    kernel_name: String,
    algorithm: AllocatorRef,
    budget: u64,
    refs: Vec<RefAllocation>,
}

impl RegisterAllocation {
    pub(crate) fn new(
        kernel_name: impl Into<String>,
        algorithm: AllocatorRef,
        budget: u64,
        refs: Vec<RefAllocation>,
    ) -> Self {
        Self {
            kernel_name: kernel_name.into(),
            algorithm,
            budget,
            refs,
        }
    }

    /// Name of the kernel the allocation was computed for.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// The strategy that produced the allocation.
    ///
    /// Compares equal to an [`AllocatorKind`] when the strategy is one of the
    /// five built-ins, so `allocation.algorithm() == AllocatorKind::FullReuse`
    /// keeps working.
    pub fn algorithm(&self) -> AllocatorRef {
        self.algorithm
    }

    /// The register budget the algorithm was given.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Number of reference groups covered.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` when the kernel had no references.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Per-reference decisions, in reference-table order.
    pub fn iter(&self) -> impl Iterator<Item = &RefAllocation> {
        self.refs.iter()
    }

    /// The decision for a reference group.
    pub fn get(&self, ref_id: RefId) -> Option<&RefAllocation> {
        self.refs.iter().find(|r| r.ref_id() == ref_id)
    }

    /// The decision for the first reference of the array with the given name.
    pub fn by_name(&self, name: &str) -> Option<&RefAllocation> {
        self.refs.iter().find(|r| r.array_name() == name)
    }

    /// Registers assigned to a reference (zero when the reference is unknown).
    pub fn beta(&self, ref_id: RefId) -> u64 {
        self.get(ref_id).map(RefAllocation::beta).unwrap_or(0)
    }

    /// Total registers consumed by the allocation (`Σ β_i`).
    pub fn total_registers(&self) -> u64 {
        self.refs.iter().map(RefAllocation::beta).sum()
    }

    /// Number of references that are fully replaced.
    pub fn fully_replaced(&self) -> usize {
        self.refs.iter().filter(|r| r.mode().is_full()).count()
    }

    /// Number of references that are partially replaced.
    pub fn partially_replaced(&self) -> usize {
        self.refs.iter().filter(|r| r.mode().is_partial()).count()
    }

    /// The storage assignment implied by the allocation: a reference lives in
    /// registers when it is fully replaced, otherwise it keeps its RAM block.
    ///
    /// This is the input the critical-path analysis of `srra-dfg` and the scheduler of
    /// `srra-fpga` expect.
    pub fn storage_map(&self) -> StorageMap {
        let mut map = StorageMap::all_ram();
        for r in &self.refs {
            if r.mode().is_full() {
                map.set(r.ref_id(), Storage::Register);
            }
        }
        map
    }

    /// A compact human-readable register distribution, e.g. `a:30 b:1 c:20 d:1 e:1`.
    pub fn distribution(&self) -> String {
        self.refs
            .iter()
            .map(|r| format!("{}:{}", r.array_name(), r.beta()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl<'a> IntoIterator for &'a RegisterAllocation {
    type Item = &'a RefAllocation;
    type IntoIter = std::slice::Iter<'a, RefAllocation>;

    fn into_iter(self) -> Self::IntoIter {
        self.refs.iter()
    }
}

/// Shared helper used by the concrete algorithms: derive the [`ReplacementMode`] of a
/// reference from its summary and assigned register count.
pub(crate) fn mode_for(summary: &ReuseSummary, beta: u64) -> ReplacementMode {
    if !summary.has_reuse() || beta == 0 {
        ReplacementMode::None
    } else if beta >= summary.registers_full() {
        ReplacementMode::Full
    } else if beta > 1 || summary.registers_full() == 1 {
        ReplacementMode::Partial
    } else {
        // A single feasibility register does not capture any reuse on its own.
        ReplacementMode::None
    }
}

/// Shared helper: build the final [`RegisterAllocation`] from a `β` vector, deriving
/// modes with [`mode_for`] except for references explicitly forced to a mode.
pub(crate) fn build_allocation(
    kernel_name: &str,
    algorithm: AllocatorRef,
    budget: u64,
    analysis: &ReuseAnalysis,
    betas: &[u64],
    forced_partial: &[RefId],
) -> RegisterAllocation {
    let refs = analysis
        .iter()
        .map(|summary| {
            let beta = betas[summary.ref_id().index()];
            let mut mode = mode_for(summary, beta);
            if forced_partial.contains(&summary.ref_id())
                && summary.has_reuse()
                && beta < summary.registers_full()
                && beta > 0
            {
                mode = ReplacementMode::Partial;
            }
            RefAllocation::new(summary, beta, mode)
        })
        .collect();
    RegisterAllocation::new(kernel_name, algorithm, budget, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn allocator_kind_metadata() {
        assert_eq!(AllocatorKind::CriticalPathAware.label(), "CPA-RA");
        assert_eq!(AllocatorKind::CriticalPathAware.version_name(), "v3");
        assert_eq!(AllocatorKind::FullReuse.to_string(), "FR-RA");
        assert_eq!(AllocatorKind::all().len(), 5);
        assert_eq!(AllocatorKind::paper_versions().len(), 3);
    }

    #[test]
    fn mode_for_rules() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let a = analysis.by_name("a").unwrap();
        assert_eq!(mode_for(a, 0), ReplacementMode::None);
        assert_eq!(mode_for(a, 1), ReplacementMode::None);
        assert_eq!(mode_for(a, 12), ReplacementMode::Partial);
        assert_eq!(mode_for(a, 30), ReplacementMode::Full);
        assert_eq!(mode_for(a, 100), ReplacementMode::Full);
        let e = analysis.by_name("e").unwrap();
        assert_eq!(mode_for(e, 1), ReplacementMode::None);
        assert_eq!(mode_for(e, 50), ReplacementMode::None);
    }

    #[test]
    fn coverage_reflects_mode() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let a = analysis.by_name("a").unwrap();
        assert_eq!(
            RefAllocation::new(a, 30, ReplacementMode::Full).coverage(),
            1.0
        );
        assert_eq!(
            RefAllocation::new(a, 1, ReplacementMode::None).coverage(),
            0.0
        );
        let partial = RefAllocation::new(a, 15, ReplacementMode::Partial);
        assert!((partial.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn allocation_accessors_and_storage_map() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let betas: Vec<u64> = analysis
            .iter()
            .map(|s| if s.array_name() == "a" { 30 } else { 1 })
            .collect();
        let allocation = build_allocation(
            kernel.name(),
            AllocatorKind::FullReuse.into(),
            64,
            &analysis,
            &betas,
            &[],
        );
        assert_eq!(allocation.kernel_name(), "paper_example");
        assert_eq!(allocation.budget(), 64);
        assert_eq!(allocation.len(), 5);
        assert_eq!(allocation.total_registers(), 34);
        assert_eq!(allocation.fully_replaced(), 1);
        assert_eq!(allocation.partially_replaced(), 0);
        assert_eq!(allocation.by_name("a").unwrap().beta(), 30);
        let storage = allocation.storage_map();
        let a_id = analysis.by_name("a").unwrap().ref_id();
        let b_id = analysis.by_name("b").unwrap().ref_id();
        assert_eq!(storage.storage(a_id), Storage::Register);
        assert_eq!(storage.storage(b_id), Storage::Ram);
        assert!(allocation.distribution().contains("a:30"));
    }
}
