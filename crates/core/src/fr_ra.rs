//! FR-RA — Full Reuse Register Allocation (the paper's first greedy variant).

use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

use crate::allocation::{build_allocation, AllocatorKind, RegisterAllocation};
use crate::error::AllocError;

pub(crate) fn check_budget(analysis: &ReuseAnalysis, budget: u64) -> Result<(), AllocError> {
    if analysis.is_empty() {
        return Err(AllocError::EmptyKernel);
    }
    let references = analysis.len() as u64;
    if budget < references {
        return Err(AllocError::BudgetTooSmall { budget, references });
    }
    Ok(())
}

/// Shared scaffold of the greedy full-replacement allocators (FR-RA, GR-RA):
/// one feasibility register per reference, the everything-fits fast path, then
/// full upgrades in the caller's visit order while they fit.  Only the visit
/// order distinguishes the strategies.
pub(crate) fn greedy_full_betas<'a>(
    analysis: &ReuseAnalysis,
    budget: u64,
    order: impl IntoIterator<Item = &'a srra_reuse::ReuseSummary>,
) -> Vec<u64> {
    let mut betas = vec![1u64; analysis.len()];
    let mut remaining = budget - analysis.len() as u64;

    // When everything fits, replace everything fully (the fast path of the paper's
    // pseudo-code).
    if analysis.total_registers_full() <= budget {
        for summary in analysis.iter() {
            betas[summary.ref_id().index()] = summary.registers_full();
        }
        return betas;
    }

    for summary in order {
        if !summary.has_reuse() {
            continue;
        }
        let need = summary.registers_full().saturating_sub(1);
        if need <= remaining {
            betas[summary.ref_id().index()] = summary.registers_full();
            remaining -= need;
        }
    }
    betas
}

/// Computes the β vector shared by FR-RA and PR-RA: one feasibility register per
/// reference, then full upgrades in descending benefit/cost order while they fit.
pub(crate) fn full_reuse_betas(analysis: &ReuseAnalysis, budget: u64) -> Vec<u64> {
    greedy_full_betas(analysis, budget, analysis.sorted_by_benefit_cost())
}

/// FR-RA: Full Reuse Register Allocation.
///
/// The algorithm first gives every reference one register to render the computation
/// feasible, then visits the references in descending benefit/cost order
/// (`γ_i = saved accesses / required registers`) and fully replaces each reference
/// whose remaining requirement still fits in the budget.  A reference is therefore
/// assigned either `R_i` registers or a single staging register — partial reuse is
/// never exploited.
///
/// # Errors
///
/// Returns [`AllocError::EmptyKernel`] for kernels without array references and
/// [`AllocError::BudgetTooSmall`] when `budget` is smaller than the number of
/// references.
///
/// # Examples
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::ReuseAnalysis;
/// use srra_core::full_reuse;
///
/// # fn main() -> Result<(), srra_core::AllocError> {
/// let kernel = paper_example();
/// let analysis = ReuseAnalysis::of(&kernel);
/// let allocation = full_reuse(&kernel, &analysis, 64)?;
/// // a and c are fully replaced; b, d and e keep one register each.
/// assert_eq!(allocation.by_name("a").unwrap().beta(), 30);
/// assert_eq!(allocation.by_name("c").unwrap().beta(), 20);
/// assert_eq!(allocation.by_name("d").unwrap().beta(), 1);
/// # Ok(())
/// # }
/// ```
pub fn full_reuse(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    check_budget(analysis, budget)?;
    let betas = full_reuse_betas(analysis, budget);
    Ok(build_allocation(
        kernel.name(),
        AllocatorKind::FullReuse.into(),
        budget,
        analysis,
        &betas,
        &[],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplacementMode;
    use srra_ir::examples::{dot_product, paper_example};

    #[test]
    fn reproduces_the_paper_fr_ra_distribution() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = full_reuse(&kernel, &analysis, 64).unwrap();
        let beta = |n: &str| allocation.by_name(n).unwrap().beta();
        assert_eq!(beta("a"), 30);
        assert_eq!(beta("b"), 1);
        assert_eq!(beta("c"), 20);
        assert_eq!(beta("d"), 1);
        assert_eq!(beta("e"), 1);
        assert_eq!(allocation.total_registers(), 53);
        assert_eq!(allocation.fully_replaced(), 2);
        assert_eq!(allocation.partially_replaced(), 0);
        assert_eq!(
            allocation.by_name("d").unwrap().mode(),
            ReplacementMode::None
        );
    }

    #[test]
    fn everything_fits_when_the_budget_is_large() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = full_reuse(&kernel, &analysis, 1000).unwrap();
        for r in &allocation {
            assert_eq!(r.beta(), r.registers_full());
        }
        assert_eq!(allocation.total_registers(), 681);
    }

    #[test]
    fn budget_checks() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(
            full_reuse(&kernel, &analysis, 3).unwrap_err(),
            AllocError::BudgetTooSmall {
                budget: 3,
                references: 5
            }
        );
        // Exactly one register per reference is accepted.
        let allocation = full_reuse(&kernel, &analysis, 5).unwrap();
        assert_eq!(allocation.total_registers(), 5);
        // No reference captures reuse with a single register here (e has R = 1 but no
        // reuse at all), so nothing is reported as fully replaced.
        assert_eq!(allocation.fully_replaced(), 0);
    }

    #[test]
    fn tiny_budget_gives_only_feasibility_registers() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = full_reuse(&kernel, &analysis, 5).unwrap();
        for r in &allocation {
            assert_eq!(r.beta(), 1);
        }
    }

    #[test]
    fn accumulator_is_fully_replaced_with_its_single_register() {
        let kernel = dot_product(64);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = full_reuse(&kernel, &analysis, 8).unwrap();
        let s = allocation.by_name("s").unwrap();
        assert_eq!(s.beta(), 1);
        assert_eq!(s.mode(), ReplacementMode::Full);
    }

    #[test]
    fn never_exceeds_budget() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for budget in [5, 20, 31, 32, 53, 64, 100, 650, 681, 700] {
            let allocation = full_reuse(&kernel, &analysis, budget).unwrap();
            assert!(allocation.total_registers() <= budget, "budget {budget}");
        }
    }
}
