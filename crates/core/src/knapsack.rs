//! Exact 0/1-knapsack baseline for the paper's "simple objective function".
//!
//! The paper formulates register allocation for scalar replacement as a knapsack
//! problem: each reference is an object of size `R_i` (registers for full replacement)
//! and value `saved_i` (eliminated memory accesses), and the register file is the
//! knapsack.  The greedy FR-RA/PR-RA variants approximate this; the dynamic program
//! here solves it exactly, which the benchmarks use to show that even the *optimal*
//! access-count objective can lose to CPA-RA on execution time because it ignores
//! concurrency and the critical path.

use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

use crate::allocation::{build_allocation, AllocatorKind, RegisterAllocation};
use crate::error::AllocError;
use crate::fr_ra::check_budget;

/// Exact 0/1-knapsack register allocation maximising eliminated memory accesses.
///
/// Every reference first receives its single feasibility register; the dynamic program
/// then chooses the subset of references to *fully* replace (upgrade cost
/// `R_i - 1`, value `saved_i`) that maximises the total number of eliminated accesses
/// within the remaining budget.  Partial replacement is intentionally not considered —
/// this mirrors the knapsack formulation in the paper's section 3.
///
/// # Errors
///
/// Same as [`crate::full_reuse`]: [`AllocError::EmptyKernel`] and
/// [`AllocError::BudgetTooSmall`].
///
/// # Examples
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::ReuseAnalysis;
/// use srra_core::{full_reuse, knapsack_optimal};
///
/// # fn main() -> Result<(), srra_core::AllocError> {
/// let kernel = paper_example();
/// let analysis = ReuseAnalysis::of(&kernel);
/// let greedy = full_reuse(&kernel, &analysis, 64)?;
/// let optimal = knapsack_optimal(&kernel, &analysis, 64)?;
/// // The optimum never eliminates fewer accesses than the greedy heuristic.
/// let saved = |a: &srra_core::RegisterAllocation| -> u64 {
///     analysis
///         .iter()
///         .map(|s| srra_reuse::eliminated_accesses(s, a.beta(s.ref_id())))
///         .sum()
/// };
/// assert!(saved(&optimal) >= saved(&greedy));
/// # Ok(())
/// # }
/// ```
pub fn knapsack_optimal(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    check_budget(analysis, budget)?;
    let n = analysis.len();
    let capacity = (budget - n as u64) as usize;

    // Items: references with exploitable reuse whose upgrade fits the capacity at all.
    let items: Vec<(usize, usize, u64)> = analysis
        .iter()
        .filter(|s| s.has_reuse())
        .map(|s| {
            (
                s.ref_id().index(),
                s.registers_full().saturating_sub(1) as usize,
                s.saved_full(),
            )
        })
        .filter(|(_, weight, _)| *weight <= capacity)
        .collect();

    // Classic 0/1 knapsack with a full (items + 1) x (capacity + 1) table so the
    // chosen subset can be reconstructed exactly.
    let mut table = vec![vec![0u64; capacity + 1]; items.len() + 1];
    for (item_idx, (_, weight, value)) in items.iter().enumerate() {
        for cap in 0..=capacity {
            let without = table[item_idx][cap];
            let with = if cap >= *weight {
                table[item_idx][cap - weight] + value
            } else {
                0
            };
            table[item_idx + 1][cap] = without.max(with);
        }
    }

    // Reconstruct the chosen set by walking the table backwards.
    let mut betas = vec![1u64; n];
    let mut cap = capacity;
    for item_idx in (0..items.len()).rev() {
        if table[item_idx + 1][cap] != table[item_idx][cap] {
            let (ref_index, weight, _) = items[item_idx];
            let summary = analysis
                .iter()
                .find(|s| s.ref_id().index() == ref_index)
                .expect("item comes from the analysis");
            betas[ref_index] = summary.registers_full();
            cap -= weight;
        }
    }

    Ok(build_allocation(
        kernel.name(),
        AllocatorKind::KnapsackOptimal.into(),
        budget,
        analysis,
        &betas,
        &[],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fr_ra::full_reuse;
    use srra_ir::examples::{paper_example, stencil3};
    use srra_reuse::eliminated_accesses;

    fn total_saved(analysis: &ReuseAnalysis, allocation: &RegisterAllocation) -> u64 {
        analysis
            .iter()
            .map(|s| eliminated_accesses(s, allocation.beta(s.ref_id())))
            .sum()
    }

    #[test]
    fn dominates_the_greedy_heuristic_on_saved_accesses() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for budget in [5, 25, 32, 53, 64, 80, 120, 681] {
            let greedy = full_reuse(&kernel, &analysis, budget).unwrap();
            let optimal = knapsack_optimal(&kernel, &analysis, budget).unwrap();
            assert!(
                total_saved(&analysis, &optimal) >= total_saved(&analysis, &greedy),
                "budget {budget}"
            );
            assert!(optimal.total_registers() <= budget);
        }
    }

    #[test]
    fn chooses_the_highest_value_combination() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        // Budget 56 leaves 51 upgrade registers: the best full-replacement subset is
        // {c, d} (19 + 29 = 48 registers, 1140 + 1140 = 2280 saved) rather than
        // {a, c} (48 registers, 1170 + 1180 = 2350 saved)... the DP decides, we only
        // verify optimality against brute force here.
        let budget = 56u64;
        let optimal = knapsack_optimal(&kernel, &analysis, budget).unwrap();
        let optimal_value = total_saved(&analysis, &optimal);

        // Brute force over all subsets of the five references, measured with the same
        // metric (non-chosen references still hold their single feasibility register).
        let summaries: Vec<_> = analysis.iter().collect();
        let capacity = budget - summaries.len() as u64;
        let mut best = 0u64;
        for mask in 0u32..(1 << summaries.len()) {
            let mut weight = 0u64;
            let mut value = 0u64;
            for (idx, summary) in summaries.iter().enumerate() {
                if mask & (1 << idx) != 0 && summary.has_reuse() {
                    weight += summary.registers_full() - 1;
                    value += summary.saved_full();
                } else {
                    value += eliminated_accesses(summary, 1);
                }
            }
            if weight <= capacity {
                best = best.max(value);
            }
        }
        assert_eq!(optimal_value, best);
    }

    #[test]
    fn full_budget_replaces_everything_with_reuse() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let optimal = knapsack_optimal(&kernel, &analysis, 681).unwrap();
        for summary in analysis.iter() {
            if summary.has_reuse() {
                assert_eq!(optimal.beta(summary.ref_id()), summary.registers_full());
            }
        }
    }

    #[test]
    fn kernels_without_reuse_get_feasibility_registers_only() {
        let kernel = stencil3(16);
        let analysis = ReuseAnalysis::of(&kernel);
        let optimal = knapsack_optimal(&kernel, &analysis, 8).unwrap();
        assert_eq!(optimal.total_registers(), analysis.len() as u64);
    }
}
