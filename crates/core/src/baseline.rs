//! The no-replacement baseline: the original code, every access served by RAM.

use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

use crate::allocation::{AllocatorKind, RefAllocation, RegisterAllocation, ReplacementMode};

/// Produces the allocation corresponding to the untransformed code: no reference is
/// scalar replaced and every access goes to its RAM block.
///
/// This is the `v0` reference point used by the harness to report how much even the
/// simplest greedy allocation buys; the paper itself normalises against its `v1`
/// (FR-RA) designs, which the harness also reports.
pub fn no_replacement(kernel: &Kernel, analysis: &ReuseAnalysis) -> RegisterAllocation {
    let refs = analysis
        .iter()
        .map(|summary| RefAllocation::new(summary, 0, ReplacementMode::None))
        .collect();
    RegisterAllocation::new(kernel.name(), AllocatorKind::NoReplacement.into(), 0, refs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn uses_no_registers_and_keeps_everything_in_ram() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = no_replacement(&kernel, &analysis);
        assert_eq!(allocation.algorithm(), AllocatorKind::NoReplacement);
        assert_eq!(allocation.total_registers(), 0);
        assert_eq!(allocation.fully_replaced(), 0);
        assert_eq!(allocation.partially_replaced(), 0);
        for r in &allocation {
            assert_eq!(r.mode(), ReplacementMode::None);
        }
        let storage = allocation.storage_map();
        for summary in analysis.iter() {
            assert_eq!(storage.storage(summary.ref_id()), srra_dfg::Storage::Ram);
        }
    }
}
