//! PR-RA — Partial Reuse Register Allocation (the paper's second greedy variant).

use srra_ir::{Kernel, RefId};
use srra_reuse::ReuseAnalysis;

use crate::allocation::{build_allocation, AllocatorKind, RegisterAllocation};
use crate::error::AllocError;
use crate::fr_ra::{check_budget, full_reuse_betas};

/// PR-RA: Partial Reuse Register Allocation.
///
/// The algorithm runs FR-RA first; the registers FR-RA leaves unused (because the next
/// reference's full requirement no longer fits) are then assigned to the first
/// reference in the benefit/cost order that is not fully replaced yet.  That reference
/// exploits *partial* data reuse with `1 < β < R` registers, which is exactly the
/// paper's variant 2.
///
/// # Errors
///
/// Same as [`crate::full_reuse`]: [`AllocError::EmptyKernel`] and
/// [`AllocError::BudgetTooSmall`].
///
/// # Examples
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::ReuseAnalysis;
/// use srra_core::partial_reuse;
///
/// # fn main() -> Result<(), srra_core::AllocError> {
/// let kernel = paper_example();
/// let analysis = ReuseAnalysis::of(&kernel);
/// let allocation = partial_reuse(&kernel, &analysis, 64)?;
/// // The 11 registers FR-RA leaves on the table go to d, which becomes partially
/// // replaced with 12 of its 30 registers.
/// assert_eq!(allocation.by_name("d").unwrap().beta(), 12);
/// assert_eq!(allocation.total_registers(), 64);
/// # Ok(())
/// # }
/// ```
pub fn partial_reuse(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    check_budget(analysis, budget)?;
    let mut betas = full_reuse_betas(analysis, budget);
    let used: u64 = betas.iter().sum();
    let mut leftover = budget.saturating_sub(used);
    let mut forced_partial: Vec<RefId> = Vec::new();

    if leftover > 0 {
        // Give the leftover to the next references in the greedy order that still have
        // uncaptured reuse.  The paper assigns everything to the first such reference;
        // we continue down the list if that reference saturates (reaches `R`), which is
        // the natural generalisation and changes nothing in the paper's example.
        for summary in analysis.sorted_by_benefit_cost() {
            if leftover == 0 {
                break;
            }
            if !summary.has_reuse() {
                continue;
            }
            let idx = summary.ref_id().index();
            if betas[idx] >= summary.registers_full() {
                continue;
            }
            let take = leftover.min(summary.registers_full() - betas[idx]);
            betas[idx] += take;
            leftover -= take;
            if betas[idx] < summary.registers_full() {
                forced_partial.push(summary.ref_id());
            }
        }
    }

    Ok(build_allocation(
        kernel.name(),
        AllocatorKind::PartialReuse.into(),
        budget,
        analysis,
        &betas,
        &forced_partial,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplacementMode;
    use crate::fr_ra::full_reuse;
    use srra_ir::examples::paper_example;

    #[test]
    fn reproduces_the_paper_pr_ra_distribution() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = partial_reuse(&kernel, &analysis, 64).unwrap();
        let beta = |n: &str| allocation.by_name(n).unwrap().beta();
        assert_eq!(beta("a"), 30);
        assert_eq!(beta("c"), 20);
        assert_eq!(beta("d"), 12);
        assert_eq!(beta("b"), 1);
        assert_eq!(beta("e"), 1);
        assert_eq!(allocation.total_registers(), 64);
        assert_eq!(
            allocation.by_name("d").unwrap().mode(),
            ReplacementMode::Partial
        );
    }

    #[test]
    fn uses_at_least_as_many_registers_as_fr_ra() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for budget in [5, 16, 32, 64, 128, 256] {
            let fr = full_reuse(&kernel, &analysis, budget).unwrap();
            let pr = partial_reuse(&kernel, &analysis, budget).unwrap();
            assert!(
                pr.total_registers() >= fr.total_registers(),
                "budget {budget}"
            );
            assert!(pr.total_registers() <= budget);
            // Every reference gets at least what FR-RA gave it.
            for r in &fr {
                assert!(pr.beta(r.ref_id()) >= r.beta());
            }
        }
    }

    #[test]
    fn leftover_spills_to_later_references_when_the_first_saturates() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        // Budget 120: FR-RA fully replaces c (20), a (30) and d (30) = 80 + 2 = 82;
        // the remaining 38 go to b as partial reuse.
        let allocation = partial_reuse(&kernel, &analysis, 120).unwrap();
        assert_eq!(allocation.by_name("a").unwrap().beta(), 30);
        assert_eq!(allocation.by_name("c").unwrap().beta(), 20);
        assert_eq!(allocation.by_name("d").unwrap().beta(), 30);
        assert!(allocation.by_name("b").unwrap().beta() > 1);
        assert_eq!(allocation.total_registers(), 120);
    }

    #[test]
    fn no_reuse_references_never_receive_the_leftover() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        // Huge budget short of full b replacement: e must stay at 1.
        let allocation = partial_reuse(&kernel, &analysis, 400).unwrap();
        assert_eq!(allocation.by_name("e").unwrap().beta(), 1);
        assert_eq!(
            allocation.by_name("e").unwrap().mode(),
            ReplacementMode::None
        );
    }

    #[test]
    fn rejects_small_budgets() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert!(matches!(
            partial_reuse(&kernel, &analysis, 2),
            Err(AllocError::BudgetTooSmall { .. })
        ));
    }
}
