//! Analytic memory-cycle cost model (`T_mem`) for a register allocation.
//!
//! The paper compares its allocation variants by the number of cycles the computation
//! spends on memory operations.  This module reproduces that metric with an explicit,
//! documented model:
//!
//! 1. The data-flow graph of the loop body is analysed with every reference in RAM; the
//!    reference nodes that lie on the resulting Critical Graph form the **memory
//!    stages** of an iteration (grouped by their position along the path).  References
//!    off the critical path (such as `c[j]` in the paper's example) overlap with
//!    datapath operations and do not add memory cycles.
//! 2. For each reference, the allocation determines its **miss fraction**: 0 for full
//!    replacement (the steady state never touches RAM), `1 − β/R` for partial
//!    replacement and 1 when no reuse is captured.
//! 3. Accesses of the *same* stage that target different arrays proceed concurrently
//!    (they live in different RAM blocks), so a stage costs the *maximum* miss fraction
//!    over its arrays; accesses to the same array serialise and add up.
//! 4. `T_mem` is the per-iteration stage cost times the RAM latency times the number of
//!    innermost iterations.
//!
//! With the default parameters this reproduces the paper's Figure 2(c) numbers
//! (1,800 / 1,560 / 1,184 memory cycles per outer-loop iteration for FR-RA, PR-RA and
//! CPA-RA respectively).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use srra_dfg::{CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
use srra_ir::Kernel;
use srra_reuse::{remaining_accesses, ReuseAnalysis};

use crate::allocation::{RegisterAllocation, ReplacementMode};

/// Parameters of the memory cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryCostModel {
    /// Latency of one RAM-block access in cycles.
    pub ram_latency: u64,
    /// When `true` (the default, matching the paper's configurable-architecture
    /// argument), accesses to distinct arrays within one stage proceed concurrently.
    pub concurrent_ram_access: bool,
}

impl Default for MemoryCostModel {
    fn default() -> Self {
        Self {
            ram_latency: 1,
            concurrent_ram_access: true,
        }
    }
}

impl MemoryCostModel {
    /// Returns a copy with a different RAM latency.
    #[must_use]
    pub fn with_ram_latency(mut self, cycles: u64) -> Self {
        self.ram_latency = cycles;
        self
    }

    /// Returns a copy with concurrent RAM access enabled or disabled.
    #[must_use]
    pub fn with_concurrency(mut self, enabled: bool) -> Self {
        self.concurrent_ram_access = enabled;
        self
    }
}

/// Cost contribution of one memory stage of the loop body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// References participating in the stage, rendered with loop names.
    pub references: Vec<String>,
    /// Expected RAM cycles the stage contributes per innermost iteration.
    pub cycles_per_iteration: f64,
}

/// The result of costing an allocation with [`memory_cost`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryCostReport {
    /// Total memory cycles over the whole loop execution (`T_mem`).
    pub memory_cycles: u64,
    /// Memory cycles per iteration of the outermost loop (the figure the paper quotes
    /// for its running example).
    pub memory_cycles_per_outer_iteration: u64,
    /// Expected memory cycles per innermost iteration.
    pub cycles_per_iteration: f64,
    /// Breakdown by memory stage.
    pub stages: Vec<StageCost>,
    /// Memory accesses remaining over the whole execution (all references, including
    /// those off the critical path).
    pub remaining_accesses: u64,
    /// Memory accesses eliminated relative to the untransformed code.
    pub eliminated_accesses: u64,
}

/// Miss fraction of a reference under the given allocation: the share of its dynamic
/// accesses that still go to RAM in steady state.
pub(crate) fn miss_fraction(
    analysis: &ReuseAnalysis,
    allocation: &RegisterAllocation,
    ref_id: srra_ir::RefId,
) -> f64 {
    let Some(summary) = analysis.get(ref_id) else {
        return 1.0;
    };
    let Some(decision) = allocation.get(ref_id) else {
        return 1.0;
    };
    if !summary.has_reuse() {
        return 1.0;
    }
    match decision.mode() {
        ReplacementMode::None => 1.0,
        ReplacementMode::Full => 0.0,
        ReplacementMode::Partial => {
            1.0 - (decision.beta() as f64 / summary.registers_full().max(1) as f64).clamp(0.0, 1.0)
        }
    }
}

/// Computes the memory-cycle cost (`T_mem`) of an allocation.
///
/// See the module documentation for the model.  The report also includes the raw
/// remaining/eliminated access counts, which the FPGA model and the Table 1 harness
/// reuse.
pub fn memory_cost(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    allocation: &RegisterAllocation,
    model: &MemoryCostModel,
) -> MemoryCostReport {
    let dfg = DataFlowGraph::from_kernel(kernel);
    // The memory stages are a structural property of the computation: they are derived
    // from the critical graph of the all-RAM configuration so that the same stages are
    // compared across allocations.
    let structural = CriticalPathAnalysis::new(
        &dfg,
        &LatencyModel::default().with_ram_latency(model.ram_latency.max(1)),
        &StorageMap::all_ram(),
    );
    let cg = structural.critical_graph();

    // Group the critical reference nodes by their longest-path position (depth), which
    // corresponds to the order in which an iteration needs the data.
    let mut stages: BTreeMap<u64, Vec<srra_ir::RefId>> = BTreeMap::new();
    for &node in cg.nodes() {
        if let Some(ref_id) = dfg.node(node).reference() {
            stages
                .entry(structural.longest_to(node))
                .or_default()
                .push(ref_id);
        }
    }

    let mut stage_costs = Vec::new();
    let mut cycles_per_iteration = 0.0f64;
    for refs in stages.values() {
        // Concurrency applies across different arrays; accesses to the same array
        // serialise on its RAM block port.
        let mut per_array: BTreeMap<srra_ir::ArrayId, f64> = BTreeMap::new();
        for ref_id in refs {
            let miss = miss_fraction(analysis, allocation, *ref_id);
            if let Some(summary) = analysis.get(*ref_id) {
                *per_array.entry(summary.array()).or_insert(0.0) += miss;
            }
        }
        let stage_fraction = if model.concurrent_ram_access {
            per_array.values().copied().fold(0.0f64, f64::max)
        } else {
            per_array.values().copied().sum()
        };
        let cycles = stage_fraction * model.ram_latency as f64;
        cycles_per_iteration += cycles;
        stage_costs.push(StageCost {
            references: refs
                .iter()
                .filter_map(|r| analysis.get(*r))
                .map(|s| s.rendered().to_owned())
                .collect(),
            cycles_per_iteration: cycles,
        });
    }

    let total_iterations = kernel.nest().total_iterations();
    let outer_trip = kernel
        .nest()
        .trip_counts()
        .first()
        .copied()
        .unwrap_or(1)
        .max(1);
    let memory_cycles = (cycles_per_iteration * total_iterations as f64).round() as u64;

    let mut remaining = 0u64;
    let mut total = 0u64;
    for summary in analysis.iter() {
        total += summary.access_counts().total;
        let decision_mode = allocation
            .get(summary.ref_id())
            .map(|d| d.mode())
            .unwrap_or(ReplacementMode::None);
        let beta = allocation.beta(summary.ref_id());
        remaining += match decision_mode {
            ReplacementMode::None => summary.access_counts().total,
            ReplacementMode::Full => summary.access_counts().essential,
            ReplacementMode::Partial => remaining_accesses(summary, beta),
        };
    }

    MemoryCostReport {
        memory_cycles,
        memory_cycles_per_outer_iteration: memory_cycles / outer_trip,
        cycles_per_iteration,
        stages: stage_costs,
        remaining_accesses: remaining,
        eliminated_accesses: total.saturating_sub(remaining),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{allocate, AllocatorKind};
    use srra_ir::examples::paper_example;

    fn report(kind: AllocatorKind, budget: u64) -> MemoryCostReport {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        memory_cost(&kernel, &analysis, &allocation, &MemoryCostModel::default())
    }

    #[test]
    fn reproduces_the_figure_2c_memory_cycles() {
        // The paper quotes the memory cycles for one iteration of the outer loop:
        // 1,800 for FR-RA, 1,560 for PR-RA and 1,184 for CPA-RA with 64 registers.
        assert_eq!(
            report(AllocatorKind::FullReuse, 64).memory_cycles_per_outer_iteration,
            1800
        );
        assert_eq!(
            report(AllocatorKind::PartialReuse, 64).memory_cycles_per_outer_iteration,
            1560
        );
        assert_eq!(
            report(AllocatorKind::CriticalPathAware, 64).memory_cycles_per_outer_iteration,
            1184
        );
    }

    #[test]
    fn cpa_never_loses_to_the_greedy_variants() {
        for budget in [8, 16, 32, 64, 128] {
            let fr = report(AllocatorKind::FullReuse, budget).memory_cycles;
            let pr = report(AllocatorKind::PartialReuse, budget).memory_cycles;
            let cpa = report(AllocatorKind::CriticalPathAware, budget).memory_cycles;
            assert!(pr <= fr, "budget {budget}: PR {pr} vs FR {fr}");
            assert!(cpa <= pr, "budget {budget}: CPA {cpa} vs PR {pr}");
        }
    }

    #[test]
    fn baseline_has_the_highest_cost_and_no_elimination() {
        let base = report(AllocatorKind::NoReplacement, 64);
        let cpa = report(AllocatorKind::CriticalPathAware, 64);
        assert!(base.memory_cycles >= cpa.memory_cycles);
        assert_eq!(base.eliminated_accesses, 0);
        assert!(cpa.eliminated_accesses > 0);
    }

    #[test]
    fn stage_breakdown_covers_the_critical_references() {
        let r = report(AllocatorKind::NoReplacement, 64);
        // Stages: {a, b}, {d}, {e}; c is off the critical path.
        assert_eq!(r.stages.len(), 3);
        let all_refs: Vec<String> = r.stages.iter().flat_map(|s| s.references.clone()).collect();
        assert!(all_refs.contains(&"a[k]".to_owned()));
        assert!(all_refs.contains(&"d[i][k]".to_owned()));
        assert!(!all_refs.contains(&"c[j]".to_owned()));
    }

    #[test]
    fn serial_model_is_never_cheaper_than_concurrent() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation =
            allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, 64).unwrap();
        let concurrent = memory_cost(&kernel, &analysis, &allocation, &MemoryCostModel::default());
        let serial = memory_cost(
            &kernel,
            &analysis,
            &allocation,
            &MemoryCostModel::default().with_concurrency(false),
        );
        assert!(serial.memory_cycles >= concurrent.memory_cycles);
    }

    #[test]
    fn ram_latency_scales_the_cost_linearly() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 64).unwrap();
        let lat1 = memory_cost(&kernel, &analysis, &allocation, &MemoryCostModel::default());
        let lat3 = memory_cost(
            &kernel,
            &analysis,
            &allocation,
            &MemoryCostModel::default().with_ram_latency(3),
        );
        assert_eq!(lat3.memory_cycles, 3 * lat1.memory_cycles);
    }
}
