//! GR-RA — greedy allocation by absolute eliminated accesses.
//!
//! This strategy exists to demonstrate the open [`crate::AllocatorRegistry`]:
//! it has no [`crate::AllocatorKind`] variant, and no pipeline layer (explore,
//! bench, CLI) names it — it is one trait impl plus one registry entry.
//!
//! Algorithmically it is the "simple objective function" strawman one step
//! below FR-RA: it ranks references by the *absolute* number of accesses a full
//! replacement eliminates, ignoring the register cost, so a huge reference with
//! modest per-register savings can starve several cheap, high-ratio ones.

use srra_ir::Kernel;
use srra_reuse::{ReuseAnalysis, ReuseSummary};

use crate::allocation::{build_allocation, RegisterAllocation};
use crate::error::AllocError;
use crate::fr_ra::{check_budget, greedy_full_betas};

/// Greedy full-replacement allocation ordered by absolute eliminated accesses.
///
/// Like FR-RA, every reference first receives one feasibility register and a
/// reference is either fully replaced or left in RAM; unlike FR-RA the visit
/// order is descending `saved_full()` (ties broken by reference order) instead
/// of descending benefit/cost ratio.
///
/// # Errors
///
/// Same as [`crate::full_reuse`]: [`AllocError::EmptyKernel`] and
/// [`AllocError::BudgetTooSmall`].
pub fn greedy_savings(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    check_budget(analysis, budget)?;
    let mut order: Vec<&ReuseSummary> = analysis.iter().collect();
    order.sort_by(|a, b| {
        b.saved_full()
            .cmp(&a.saved_full())
            .then(a.ref_id().index().cmp(&b.ref_id().index()))
    });
    let betas = greedy_full_betas(analysis, budget, order);

    Ok(build_allocation(
        kernel.name(),
        crate::registry::greedy_ref(),
        budget,
        analysis,
        &betas,
        &[],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fr_ra::full_reuse;
    use srra_ir::examples::paper_example;

    #[test]
    fn ranks_by_absolute_savings_not_ratio() {
        // On the paper's default bounds the ratio order and the savings order
        // coincide (c, a, d), so stretch the j loop: c[j]'s absolute savings
        // then dominate even though d has the better benefit/cost ratio.
        let kernel = srra_ir::examples::paper_example_with(4, 16, 8);
        let analysis = ReuseAnalysis::of(&kernel);
        let greedy = greedy_savings(&kernel, &analysis, 32).unwrap();
        let fr = full_reuse(&kernel, &analysis, 32).unwrap();
        assert_ne!(greedy.distribution(), fr.distribution());
        assert_eq!(greedy.by_name("c").unwrap().beta(), 16);
        assert_eq!(fr.by_name("c").unwrap().beta(), 1);
        assert!(greedy.total_registers() <= 32);
    }

    #[test]
    fn matches_fr_ra_when_the_orders_coincide() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let greedy = greedy_savings(&kernel, &analysis, 64).unwrap();
        let fr = full_reuse(&kernel, &analysis, 64).unwrap();
        assert_eq!(greedy.distribution(), fr.distribution());
    }

    #[test]
    fn large_budgets_replace_everything() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = greedy_savings(&kernel, &analysis, 1000).unwrap();
        assert_eq!(allocation.total_registers(), 681);
    }

    #[test]
    fn respects_budget_and_rejects_tiny_ones() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert!(matches!(
            greedy_savings(&kernel, &analysis, 3),
            Err(AllocError::BudgetTooSmall { .. })
        ));
        for budget in [5, 16, 32, 64, 128, 700] {
            let allocation = greedy_savings(&kernel, &analysis, budget).unwrap();
            assert!(allocation.total_registers() <= budget, "budget {budget}");
        }
    }
}
