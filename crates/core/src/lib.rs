//! Register allocation algorithms for scalar-replaced array references — the primary
//! contribution of the DATE'05 paper.
//!
//! Given a kernel (from `srra-ir`), its reuse analysis (from `srra-reuse`) and a
//! register budget `N_R`, this crate computes how many registers `β_i` each array
//! reference receives:
//!
//! * [`full_reuse`] — **FR-RA**: greedy by benefit/cost ratio, a reference is either
//!   fully replaced or left in RAM,
//! * [`partial_reuse`] — **PR-RA**: FR-RA plus the leftover registers are given to the
//!   next reference in the greedy order, which is then *partially* replaced,
//! * [`critical_path_aware`] — **CPA-RA**: the paper's proposal; registers are
//!   allocated to *cuts* of the Critical Graph so every register spent shortens all
//!   critical paths,
//! * [`knapsack_optimal`] — an exact 0/1-knapsack baseline maximising eliminated
//!   memory accesses (the "simple objective function" the paper formulates and then
//!   improves upon),
//! * [`no_replacement`] — the untransformed code, every access goes to RAM,
//! * [`greedy_savings`] — **GR-RA**: greedy by absolute eliminated accesses, the
//!   registry's extensibility demonstration.
//!
//! # The allocator registry
//!
//! Strategies are open, not a closed enum: anything implementing the
//! [`Allocator`] trait can be registered in an [`AllocatorRegistry`] and then
//! drives every downstream layer (the `srra-explore` sweep engine, the
//! `srra-bench` harness, the CLI) without those layers naming it.
//! [`AllocatorRegistry::global`] holds the built-ins in deterministic order
//! (`none`, `fr`, `pr`, `cpa`, `ks`, `greedy`); [`AllocatorRegistry::get`]
//! resolves names, labels (`CPA-RA`), version names (`v3`) and aliases,
//! case-insensitively.  [`AllocatorRef`] is the copyable handle the pipeline
//! carries around; [`AllocatorKind`] remains as a stable, matchable handle for
//! the five pre-registry strategies and converts via `AllocatorRef::from`.
//!
//! # The `CompiledKernel` lifecycle
//!
//! Allocators take a [`CompiledKernel`]: the kernel bundled with
//! lazily-memoized, allocation-independent artifacts (reuse analysis,
//! data-flow graph, baseline critical path).  Construct one per kernel
//! (`CompiledKernel::new(kernel)` or `kernel.into()`), share it by reference
//! across as many strategies, budgets and threads as needed — each artifact is
//! computed at most once per context, on first use — and drop it when the
//! kernel leaves scope.  A sweep over N design points of one kernel therefore
//! performs exactly one reuse analysis.  The legacy
//! [`allocate`]`(kind, kernel, analysis, budget)` entry point remains as a thin
//! shim that seeds a context with the caller's analysis and dispatches through
//! the registry.
//!
//! The resulting [`RegisterAllocation`] can be costed with [`memory_cost`], turned into
//! a code-generation-level [`ReplacementPlan`], or handed to `srra-fpga` for a full
//! hardware design-point estimate.
//!
//! # Example — the paper's running example (Figure 2(c))
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_core::{AllocatorRegistry, CompiledKernel, MemoryCostModel};
//!
//! # fn main() -> Result<(), srra_core::AllocError> {
//! let ck = CompiledKernel::new(paper_example());
//! let registry = AllocatorRegistry::global();
//! let budget = 64;
//!
//! // One memoized analysis serves both strategies.
//! let fr = registry.get("fr").unwrap().allocate(&ck, budget)?;
//! let cpa = registry.get("cpa").unwrap().allocate(&ck, budget)?;
//!
//! // FR-RA fully replaces a and c; CPA-RA spends the same budget along the cuts
//! // {d} and {a, b} instead.
//! assert_eq!(fr.by_name("a").unwrap().beta(), 30);
//! assert_eq!(cpa.by_name("d").unwrap().beta(), 30);
//! assert_eq!(cpa.by_name("a").unwrap().beta(), 16);
//!
//! let model = MemoryCostModel::default();
//! let fr_cost = srra_core::memory_cost(ck.kernel(), ck.analysis(), &fr, &model);
//! let cpa_cost = srra_core::memory_cost(ck.kernel(), ck.analysis(), &cpa, &model);
//! assert!(cpa_cost.memory_cycles < fr_cost.memory_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod baseline;
mod context;
mod cost;
mod cpa_ra;
mod error;
mod fr_ra;
mod greedy;
mod knapsack;
mod pr_ra;
mod registry;
mod scalar_replace;

pub use allocation::{AllocatorKind, RefAllocation, RegisterAllocation, ReplacementMode};
pub use baseline::no_replacement;
pub use context::CompiledKernel;
pub use cost::{memory_cost, MemoryCostModel, MemoryCostReport, StageCost};
pub use cpa_ra::{critical_path_aware, critical_path_aware_with, CpaOptions, CutSelectionPolicy};
pub use error::AllocError;
pub use fr_ra::full_reuse;
pub use greedy::greedy_savings;
pub use knapsack::knapsack_optimal;
pub use pr_ra::partial_reuse;
pub use registry::{Allocator, AllocatorRef, AllocatorRegistry};
pub use scalar_replace::{RefPlan, ReplacementPlan};

use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

/// Runs the built-in strategy selected by `kind` with its default options.
///
/// This is the pre-registry entry point, kept as a thin compatibility shim: it
/// seeds a [`CompiledKernel`] with the caller's analysis (no recomputation) and
/// dispatches through the corresponding [`AllocatorRegistry`] entry.  New code
/// and anything evaluating more than one (strategy, budget) pair per kernel
/// should hold a [`CompiledKernel`] and call [`AllocatorRef::allocate`]
/// directly.
///
/// # Errors
///
/// Returns [`AllocError::EmptyKernel`] when the kernel has no array references and
/// [`AllocError::BudgetTooSmall`] when `budget` cannot even give one register to every
/// reference (except for [`AllocatorKind::NoReplacement`], which ignores the budget).
pub fn allocate(
    kind: AllocatorKind,
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    let compiled = CompiledKernel::with_analysis(kernel.clone(), analysis.clone());
    AllocatorRef::from(kind).allocate(&compiled, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn allocate_dispatches_every_kind() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for kind in AllocatorKind::all() {
            let allocation = allocate(kind, &kernel, &analysis, 64).expect("allocation succeeds");
            assert_eq!(allocation.algorithm(), kind);
            assert_eq!(allocation.len(), analysis.len());
            if kind != AllocatorKind::NoReplacement {
                assert!(allocation.total_registers() <= 64);
            }
        }
    }

    #[test]
    fn registry_and_kind_dispatch_agree() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let ck = CompiledKernel::with_analysis(kernel.clone(), analysis.clone());
        for kind in AllocatorKind::all() {
            let via_kind = allocate(kind, &kernel, &analysis, 64).unwrap();
            let via_registry = AllocatorRef::from(kind).allocate(&ck, 64).unwrap();
            assert_eq!(via_kind, via_registry, "kind {kind:?}");
        }
    }
}
