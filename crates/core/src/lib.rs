//! Register allocation algorithms for scalar-replaced array references — the primary
//! contribution of the DATE'05 paper.
//!
//! Given a kernel (from `srra-ir`), its reuse analysis (from `srra-reuse`) and a
//! register budget `N_R`, this crate computes how many registers `β_i` each array
//! reference receives:
//!
//! * [`full_reuse`] — **FR-RA**: greedy by benefit/cost ratio, a reference is either
//!   fully replaced or left in RAM,
//! * [`partial_reuse`] — **PR-RA**: FR-RA plus the leftover registers are given to the
//!   next reference in the greedy order, which is then *partially* replaced,
//! * [`critical_path_aware`] — **CPA-RA**: the paper's proposal; registers are
//!   allocated to *cuts* of the Critical Graph so every register spent shortens all
//!   critical paths,
//! * [`knapsack_optimal`] — an exact 0/1-knapsack baseline maximising eliminated
//!   memory accesses (the "simple objective function" the paper formulates and then
//!   improves upon),
//! * [`no_replacement`] — the untransformed code, every access goes to RAM.
//!
//! The resulting [`RegisterAllocation`] can be costed with [`memory_cost`], turned into
//! a code-generation-level [`ReplacementPlan`], or handed to `srra-fpga` for a full
//! hardware design-point estimate.
//!
//! # Example — the paper's running example (Figure 2(c))
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_reuse::ReuseAnalysis;
//! use srra_core::{allocate, AllocatorKind, MemoryCostModel};
//!
//! # fn main() -> Result<(), srra_core::AllocError> {
//! let kernel = paper_example();
//! let analysis = ReuseAnalysis::of(&kernel);
//! let budget = 64;
//!
//! let fr = allocate(AllocatorKind::FullReuse, &kernel, &analysis, budget)?;
//! let cpa = allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, budget)?;
//!
//! // FR-RA fully replaces a and c; CPA-RA spends the same budget along the cuts
//! // {d} and {a, b} instead.
//! assert_eq!(fr.by_name("a").unwrap().beta(), 30);
//! assert_eq!(cpa.by_name("d").unwrap().beta(), 30);
//! assert_eq!(cpa.by_name("a").unwrap().beta(), 16);
//!
//! let model = MemoryCostModel::default();
//! let fr_cost = srra_core::memory_cost(&kernel, &analysis, &fr, &model);
//! let cpa_cost = srra_core::memory_cost(&kernel, &analysis, &cpa, &model);
//! assert!(cpa_cost.memory_cycles < fr_cost.memory_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocation;
mod baseline;
mod cost;
mod cpa_ra;
mod error;
mod fr_ra;
mod knapsack;
mod pr_ra;
mod scalar_replace;

pub use allocation::{AllocatorKind, RefAllocation, RegisterAllocation, ReplacementMode};
pub use baseline::no_replacement;
pub use cost::{memory_cost, MemoryCostModel, MemoryCostReport, StageCost};
pub use cpa_ra::{critical_path_aware, critical_path_aware_with, CpaOptions, CutSelectionPolicy};
pub use error::AllocError;
pub use fr_ra::full_reuse;
pub use knapsack::knapsack_optimal;
pub use pr_ra::partial_reuse;
pub use scalar_replace::{RefPlan, ReplacementPlan};

use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

/// Runs the allocator selected by `kind` with its default options.
///
/// # Errors
///
/// Returns [`AllocError::EmptyKernel`] when the kernel has no array references and
/// [`AllocError::BudgetTooSmall`] when `budget` cannot even give one register to every
/// reference (except for [`AllocatorKind::NoReplacement`], which ignores the budget).
pub fn allocate(
    kind: AllocatorKind,
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    match kind {
        AllocatorKind::NoReplacement => Ok(no_replacement(kernel, analysis)),
        AllocatorKind::FullReuse => full_reuse(kernel, analysis, budget),
        AllocatorKind::PartialReuse => partial_reuse(kernel, analysis, budget),
        AllocatorKind::CriticalPathAware => critical_path_aware(kernel, analysis, budget),
        AllocatorKind::KnapsackOptimal => knapsack_optimal(kernel, analysis, budget),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn allocate_dispatches_every_kind() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for kind in AllocatorKind::all() {
            let allocation = allocate(kind, &kernel, &analysis, 64).expect("allocation succeeds");
            assert_eq!(allocation.algorithm(), kind);
            assert_eq!(allocation.len(), analysis.len());
            if kind != AllocatorKind::NoReplacement {
                assert!(allocation.total_registers() <= 64);
            }
        }
    }
}
