//! The shared, lazily-memoized analysis context for one kernel.
//!
//! Every layer of the pipeline — the allocators, the exploration engine, the
//! bench harness, the CLI — needs the same derived artifacts for a kernel: its
//! [`ReuseAnalysis`], its [`DataFlowGraph`] and the baseline critical-path
//! analysis.  Before [`CompiledKernel`] existed each call site re-derived them,
//! so a sweep over N design points of one kernel paid for N analyses.
//!
//! A [`CompiledKernel`] bundles the kernel with [`OnceLock`]-memoized slots for
//! each artifact: the first accessor call computes, every later call (from any
//! thread — the type is `Sync`) returns the cached value.  Cloning preserves
//! whatever is already memoized.
//!
//! ```
//! use srra_core::CompiledKernel;
//! use srra_ir::examples::paper_example;
//!
//! let ck = CompiledKernel::new(paper_example());
//! let first = ck.analysis();
//! let second = ck.analysis(); // memoized: same allocation, no recomputation
//! assert!(std::ptr::eq(first, second));
//! assert!(ck.critical_path().critical_length() > 0);
//! ```

use std::sync::OnceLock;

use srra_dfg::{CriticalPathAnalysis, DataFlowGraph, LatencyModel, StorageMap};
use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

/// A kernel plus lazily-memoized analysis artifacts, shared across the pipeline.
///
/// The memoized artifacts are exactly the allocation-*independent* ones:
///
/// * [`CompiledKernel::analysis`] — the data-reuse analysis (`R_i`, access
///   counts, benefit/cost ratios),
/// * [`CompiledKernel::dfg`] — the data-flow graph of one loop-body iteration,
/// * [`CompiledKernel::critical_path`] — the baseline critical-path analysis
///   (default latency model, every reference in RAM), the starting point of
///   CPA-RA and of the Graphviz dumps.
///
/// Allocation-*dependent* artifacts (storage maps, per-iteration critical
/// graphs inside CPA-RA) are recomputed as before; memoizing them would change
/// results as the allocator iterates.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    kernel: Kernel,
    analysis: OnceLock<ReuseAnalysis>,
    dfg: OnceLock<DataFlowGraph>,
    critical: OnceLock<CriticalPathAnalysis>,
}

impl CompiledKernel {
    /// Wraps a kernel with empty memoization slots.
    pub fn new(kernel: Kernel) -> Self {
        Self {
            kernel,
            analysis: OnceLock::new(),
            dfg: OnceLock::new(),
            critical: OnceLock::new(),
        }
    }

    /// Wraps a kernel with the reuse-analysis slot pre-seeded.
    ///
    /// This is the compatibility path for callers that already computed an
    /// analysis (the old `allocate(kind, kernel, analysis, budget)` entry
    /// point): no recomputation happens when the allocator asks for it.
    pub fn with_analysis(kernel: Kernel, analysis: ReuseAnalysis) -> Self {
        let ck = Self::new(kernel);
        ck.analysis
            .set(analysis)
            .expect("fresh CompiledKernel has an empty analysis slot");
        ck
    }

    /// The wrapped kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Name of the wrapped kernel.
    pub fn name(&self) -> &str {
        self.kernel.name()
    }

    /// The kernel's reuse analysis, computed on first use.
    pub fn analysis(&self) -> &ReuseAnalysis {
        self.analysis
            .get_or_init(|| ReuseAnalysis::of(&self.kernel))
    }

    /// The data-flow graph of one loop-body iteration, computed on first use.
    pub fn dfg(&self) -> &DataFlowGraph {
        self.dfg
            .get_or_init(|| DataFlowGraph::from_kernel(&self.kernel))
    }

    /// The baseline critical-path analysis (default [`LatencyModel`], every
    /// reference in RAM), computed on first use.
    pub fn critical_path(&self) -> &CriticalPathAnalysis {
        self.critical.get_or_init(|| {
            CriticalPathAnalysis::new(self.dfg(), &LatencyModel::default(), &StorageMap::all_ram())
        })
    }

    /// Whether the reuse analysis has been computed (or seeded) already.
    ///
    /// Only useful for memoization tests; it never triggers a computation.
    pub fn analysis_is_cached(&self) -> bool {
        self.analysis.get().is_some()
    }
}

impl From<Kernel> for CompiledKernel {
    fn from(kernel: Kernel) -> Self {
        Self::new(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn accessors_memoize() {
        let ck = CompiledKernel::new(paper_example());
        assert!(!ck.analysis_is_cached());
        assert!(std::ptr::eq(ck.analysis(), ck.analysis()));
        assert!(ck.analysis_is_cached());
        assert!(std::ptr::eq(ck.dfg(), ck.dfg()));
        assert!(std::ptr::eq(ck.critical_path(), ck.critical_path()));
        assert_eq!(ck.analysis().len(), 5);
    }

    #[test]
    fn seeded_analysis_is_returned_verbatim() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let ck = CompiledKernel::with_analysis(kernel, analysis.clone());
        assert!(ck.analysis_is_cached());
        assert_eq!(*ck.analysis(), analysis);
    }

    #[test]
    fn clone_preserves_memoized_artifacts() {
        let ck = CompiledKernel::new(paper_example());
        ck.analysis();
        let clone = ck.clone();
        assert!(clone.analysis_is_cached());
        assert_eq!(clone.name(), "paper_example");
    }

    #[test]
    fn shared_across_threads() {
        let ck = CompiledKernel::new(paper_example());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| assert_eq!(ck.analysis().len(), 5));
            }
        });
    }
}
