use std::fmt;

/// Errors produced by the allocation algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// The kernel contains no array references, so there is nothing to allocate.
    EmptyKernel,
    /// The register budget cannot even provide the one register per reference that the
    /// algorithms reserve to make the computation feasible.
    BudgetTooSmall {
        /// The requested budget.
        budget: u64,
        /// The number of array reference groups in the kernel.
        references: u64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::EmptyKernel => write!(f, "kernel contains no array references"),
            AllocError::BudgetTooSmall { budget, references } => write!(
                f,
                "register budget {budget} is smaller than the {references} references that each need one register"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        for err in [
            AllocError::EmptyKernel,
            AllocError::BudgetTooSmall {
                budget: 2,
                references: 5,
            },
        ] {
            let msg = err.to_string();
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AllocError>();
    }
}
