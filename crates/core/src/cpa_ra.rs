//! CPA-RA — Critical-Path-Aware Register Allocation (the paper's proposal).

use std::collections::BTreeSet;

use srra_dfg::{
    find_cuts, level_cuts, CriticalPathAnalysis, DataFlowGraph, LatencyModel, Storage, StorageMap,
};
use srra_ir::{Kernel, RefId};
use srra_reuse::ReuseAnalysis;

use crate::allocation::{build_allocation, AllocatorKind, RegisterAllocation};
use crate::error::AllocError;
use crate::fr_ra::check_budget;

/// How CPA-RA chooses among the cuts of the critical graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CutSelectionPolicy {
    /// Select the cut with the minimum number of additional registers required to
    /// fully replace all of its references — the policy described in the paper.
    #[default]
    MinRegisters,
    /// Select the cut with the maximum eliminated-accesses-per-register ratio.  Used by
    /// the ablation benchmarks to quantify the value of the paper's choice.
    MaxBenefitPerRegister,
}

/// Tuning knobs for [`critical_path_aware_with`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpaOptions {
    /// Latency model used to compute the critical graph in each iteration.
    pub latency: LatencyModel,
    /// Cut-selection policy (the paper uses [`CutSelectionPolicy::MinRegisters`]).
    pub policy: CutSelectionPolicy,
    /// When `true`, use the cheaper level-based cut heuristic instead of exhaustive
    /// minimal-cut enumeration (ablation only).
    pub level_cuts_only: bool,
}

/// A candidate cut with its reference groups and cost/benefit figures.
struct Candidate {
    refs: Vec<RefId>,
    additional_registers: u64,
    benefit: u64,
}

fn storage_from_betas(analysis: &ReuseAnalysis, betas: &[u64]) -> StorageMap {
    let mut storage = StorageMap::all_ram();
    for summary in analysis.iter() {
        if summary.has_reuse() && betas[summary.ref_id().index()] >= summary.registers_full() {
            storage.set(summary.ref_id(), Storage::Register);
        }
    }
    storage
}

fn candidates(
    dfg: &DataFlowGraph,
    analysis: &ReuseAnalysis,
    betas: &[u64],
    options: &CpaOptions,
) -> Vec<Candidate> {
    let storage = storage_from_betas(analysis, betas);
    let cpa = CriticalPathAnalysis::new(dfg, &options.latency, &storage);
    let cg = cpa.critical_graph();
    let cuts = if options.level_cuts_only {
        level_cuts(dfg, cg)
    } else {
        find_cuts(dfg, cg)
    };

    let mut result = Vec::new();
    for cut in cuts {
        let refs: BTreeSet<RefId> = cut
            .iter()
            .filter_map(|&node| dfg.node(node).reference())
            .collect();
        if refs.is_empty() {
            continue;
        }
        // A cut that contains a reference without any exploitable reuse can never be
        // removed from the critical path by register allocation.
        if refs
            .iter()
            .any(|r| analysis.get(*r).map(|s| !s.has_reuse()).unwrap_or(true))
        {
            continue;
        }
        let additional_registers: u64 = refs
            .iter()
            .filter_map(|r| analysis.get(*r))
            .map(|s| s.registers_full().saturating_sub(betas[s.ref_id().index()]))
            .sum();
        if additional_registers == 0 {
            continue;
        }
        let benefit: u64 = refs
            .iter()
            .filter_map(|r| analysis.get(*r))
            .map(|s| s.saved_full())
            .sum();
        result.push(Candidate {
            refs: refs.into_iter().collect(),
            additional_registers,
            benefit,
        });
    }
    result
}

fn select(candidates: &[Candidate], policy: CutSelectionPolicy) -> Option<&Candidate> {
    match policy {
        CutSelectionPolicy::MinRegisters => candidates.iter().min_by(|a, b| {
            a.additional_registers
                .cmp(&b.additional_registers)
                .then(a.refs.len().cmp(&b.refs.len()))
                .then(a.refs.cmp(&b.refs))
        }),
        CutSelectionPolicy::MaxBenefitPerRegister => candidates.iter().max_by(|a, b| {
            let ra = a.benefit as f64 / a.additional_registers.max(1) as f64;
            let rb = b.benefit as f64 / b.additional_registers.max(1) as f64;
            ra.partial_cmp(&rb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.additional_registers.cmp(&a.additional_registers))
                .then(b.refs.cmp(&a.refs))
        }),
    }
}

/// CPA-RA with explicit [`CpaOptions`].
///
/// See [`critical_path_aware`] for the algorithm description; this variant exposes the
/// latency model and the cut-selection policy for the ablation studies.
///
/// # Errors
///
/// Same as [`crate::full_reuse`].
pub fn critical_path_aware_with(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
    options: &CpaOptions,
) -> Result<RegisterAllocation, AllocError> {
    critical_path_aware_on_dfg(
        kernel,
        analysis,
        &DataFlowGraph::from_kernel(kernel),
        budget,
        options,
    )
}

/// CPA-RA over a [`crate::CompiledKernel`]: reuses the context's memoized
/// reuse analysis *and* data-flow graph instead of re-deriving either.
pub(crate) fn critical_path_aware_compiled(
    compiled: &crate::CompiledKernel,
    budget: u64,
    options: &CpaOptions,
) -> Result<RegisterAllocation, AllocError> {
    critical_path_aware_on_dfg(
        compiled.kernel(),
        compiled.analysis(),
        compiled.dfg(),
        budget,
        options,
    )
}

fn critical_path_aware_on_dfg(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    dfg: &DataFlowGraph,
    budget: u64,
    options: &CpaOptions,
) -> Result<RegisterAllocation, AllocError> {
    check_budget(analysis, budget)?;

    // Feasibility: one register per reference, like the greedy variants.
    let mut betas = vec![1u64; analysis.len()];
    let mut remaining = budget - analysis.len() as u64;
    let mut forced_partial: Vec<RefId> = Vec::new();

    while remaining > 0 {
        let candidates = candidates(dfg, analysis, &betas, options);
        let Some(best) = select(&candidates, options.policy) else {
            break;
        };

        if best.additional_registers <= remaining {
            // Fully replace every reference of the cut.
            for r in &best.refs {
                let summary = analysis.get(*r).expect("candidate references are analysed");
                let idx = r.index();
                remaining -= summary.registers_full() - betas[idx];
                betas[idx] = summary.registers_full();
            }
        } else {
            // Not enough registers for the whole cut: divide the remainder equally
            // among the references of the cut that still need registers.
            let needy: Vec<RefId> = best
                .refs
                .iter()
                .copied()
                .filter(|r| {
                    analysis
                        .get(*r)
                        .map(|s| betas[r.index()] < s.registers_full())
                        .unwrap_or(false)
                })
                .collect();
            if needy.is_empty() {
                break;
            }
            let share = remaining / needy.len() as u64;
            let mut extra = remaining % needy.len() as u64;
            let mut distributed = 0u64;
            for r in &needy {
                let summary = analysis.get(*r).expect("candidate references are analysed");
                let bonus = if extra > 0 {
                    extra -= 1;
                    1
                } else {
                    0
                };
                let want = share + bonus;
                let take = want.min(summary.registers_full() - betas[r.index()]);
                betas[r.index()] += take;
                distributed += take;
                if betas[r.index()] < summary.registers_full() && betas[r.index()] > 1 {
                    forced_partial.push(*r);
                }
            }
            remaining -= distributed;
            if distributed == 0 {
                break;
            }
        }
    }

    Ok(build_allocation(
        kernel.name(),
        AllocatorKind::CriticalPathAware.into(),
        budget,
        analysis,
        &betas,
        &forced_partial,
    ))
}

/// CPA-RA: Critical-Path-Aware Register Allocation — the paper's proposed algorithm.
///
/// Each iteration builds the data-flow graph of the loop body with the current storage
/// assignment, extracts the Critical Graph (the union of all maximum-latency paths),
/// enumerates its reference-node cuts and fully replaces the cut requiring the fewest
/// additional registers.  Because a cut intersects *every* critical path, each
/// promotion is guaranteed to shorten the whole computation rather than a single path.
/// When the cheapest cut no longer fits, the remaining registers are divided equally
/// among its references (partial replacement), and the algorithm stops when either the
/// budget or the improvable cuts run out.
///
/// # Errors
///
/// Same as [`crate::full_reuse`]: [`AllocError::EmptyKernel`] and
/// [`AllocError::BudgetTooSmall`].
///
/// # Examples
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::ReuseAnalysis;
/// use srra_core::critical_path_aware;
///
/// # fn main() -> Result<(), srra_core::AllocError> {
/// let kernel = paper_example();
/// let analysis = ReuseAnalysis::of(&kernel);
/// let allocation = critical_path_aware(&kernel, &analysis, 64)?;
/// // Cut {d} is promoted first (30 registers), then the leftover is split equally
/// // between a and b: exactly the Figure 2(c) distribution.
/// assert_eq!(allocation.by_name("d").unwrap().beta(), 30);
/// assert_eq!(allocation.by_name("a").unwrap().beta(), 16);
/// assert_eq!(allocation.by_name("b").unwrap().beta(), 16);
/// # Ok(())
/// # }
/// ```
pub fn critical_path_aware(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    budget: u64,
) -> Result<RegisterAllocation, AllocError> {
    critical_path_aware_with(kernel, analysis, budget, &CpaOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::ReplacementMode;
    use srra_ir::examples::{dot_product, paper_example, stencil3};

    #[test]
    fn reproduces_the_paper_cpa_ra_distribution() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = critical_path_aware(&kernel, &analysis, 64).unwrap();
        let beta = |n: &str| allocation.by_name(n).unwrap().beta();
        assert_eq!(beta("d"), 30);
        assert_eq!(beta("a"), 16);
        assert_eq!(beta("b"), 16);
        assert_eq!(beta("c"), 1);
        assert_eq!(beta("e"), 1);
        assert_eq!(allocation.total_registers(), 64);
        assert_eq!(
            allocation.by_name("d").unwrap().mode(),
            ReplacementMode::Full
        );
        assert_eq!(
            allocation.by_name("a").unwrap().mode(),
            ReplacementMode::Partial
        );
        assert_eq!(
            allocation.by_name("b").unwrap().mode(),
            ReplacementMode::Partial
        );
    }

    #[test]
    fn large_budget_promotes_every_critical_reference() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = critical_path_aware(&kernel, &analysis, 1000).unwrap();
        for name in ["a", "b", "d"] {
            assert_eq!(
                allocation.by_name(name).unwrap().mode(),
                ReplacementMode::Full,
                "reference {name}"
            );
        }
        // c never reaches the critical path (the op1 -> op2 chain dominates even after
        // the promotions), so CPA-RA deliberately leaves it alone.  This is the
        // "same or even fewer registers" effect the paper highlights.
        assert_eq!(
            allocation.by_name("c").unwrap().mode(),
            ReplacementMode::None
        );
        assert_eq!(allocation.by_name("c").unwrap().beta(), 1);
        assert!(allocation.total_registers() < 1000);
        // e has no reuse: registers are never wasted on it.
        assert_eq!(allocation.by_name("e").unwrap().beta(), 1);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        for budget in [5, 8, 16, 31, 32, 33, 64, 100, 256, 700] {
            let allocation = critical_path_aware(&kernel, &analysis, budget).unwrap();
            assert!(
                allocation.total_registers() <= budget,
                "budget {budget}, used {}",
                allocation.total_registers()
            );
        }
    }

    #[test]
    fn stencil_and_dot_product_terminate() {
        for kernel in [stencil3(64), dot_product(128)] {
            let analysis = ReuseAnalysis::of(&kernel);
            let allocation = critical_path_aware(&kernel, &analysis, 16).unwrap();
            assert!(allocation.total_registers() <= 16);
        }
    }

    #[test]
    fn policies_and_cut_heuristics_are_available() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let min_reg =
            critical_path_aware_with(&kernel, &analysis, 64, &CpaOptions::default()).unwrap();
        let max_benefit = critical_path_aware_with(
            &kernel,
            &analysis,
            64,
            &CpaOptions {
                policy: CutSelectionPolicy::MaxBenefitPerRegister,
                ..CpaOptions::default()
            },
        )
        .unwrap();
        let level_only = critical_path_aware_with(
            &kernel,
            &analysis,
            64,
            &CpaOptions {
                level_cuts_only: true,
                ..CpaOptions::default()
            },
        )
        .unwrap();
        for allocation in [&min_reg, &max_benefit, &level_only] {
            assert!(allocation.total_registers() <= 64);
        }
        // The paper's min-register policy picks {d} first; the benefit policy also
        // ends up covering d (it has the highest saved-access total of any cut).
        assert_eq!(min_reg.by_name("d").unwrap().beta(), 30);
        assert!(max_benefit.by_name("d").unwrap().beta() >= 1);
    }

    #[test]
    fn rejects_small_budgets() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert!(matches!(
            critical_path_aware(&kernel, &analysis, 4),
            Err(AllocError::BudgetTooSmall { .. })
        ));
    }
}
