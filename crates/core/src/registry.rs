//! The open allocator registry: strategies as trait objects instead of enum arms.
//!
//! The paper compares register-allocation strategies over one shared reuse
//! analysis.  The registry makes that comparison extensible: an allocation
//! strategy is anything implementing [`Allocator`], and the pipeline layers
//! (exploration engine, bench harness, CLI) resolve strategies through an
//! [`AllocatorRegistry`] instead of matching on [`AllocatorKind`].  Adding a
//! strategy is one trait impl plus one registry entry — no cross-crate edits.
//!
//! ```
//! use srra_core::{AllocatorRegistry, CompiledKernel};
//! use srra_ir::examples::paper_example;
//!
//! let ck = CompiledKernel::new(paper_example());
//! let cpa = AllocatorRegistry::global().get("cpa").unwrap();
//! let allocation = cpa.allocate(&ck, 64).unwrap();
//! assert_eq!(allocation.by_name("d").unwrap().beta(), 30);
//! // Iteration order is deterministic (registration order).
//! let names: Vec<&str> = AllocatorRegistry::global().names().collect();
//! assert_eq!(names, ["none", "fr", "pr", "cpa", "ks", "greedy"]);
//! ```

use std::sync::OnceLock;

use crate::allocation::{AllocatorKind, RegisterAllocation};
use crate::context::CompiledKernel;
use crate::error::AllocError;

/// A register-allocation strategy, resolvable through the [`AllocatorRegistry`].
///
/// Implementations receive a [`CompiledKernel`] — the kernel plus its memoized
/// reuse analysis, DFG and baseline critical path — so every strategy in a
/// sweep shares one analysis instead of re-deriving it per call.
pub trait Allocator: Send + Sync {
    /// Canonical registry name, lower-case, e.g. `cpa`.  Unique per registry.
    fn name(&self) -> &'static str;

    /// The short algorithm label used in reports, e.g. `CPA-RA`.
    fn label(&self) -> &'static str;

    /// The design-version label of the paper's Table 1 (`v1`, `v2`, `v3`) or a
    /// descriptive version for strategies the paper does not evaluate.
    fn version_name(&self) -> &'static str;

    /// Extra lookup aliases accepted by [`AllocatorRegistry::get`] (the
    /// canonical name, label and version name always match).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// The legacy [`AllocatorKind`] this strategy corresponds to, if any.
    ///
    /// Only the five strategies predating the registry have one; new
    /// strategies return `None` and exist purely as registry entries.
    fn kind(&self) -> Option<AllocatorKind> {
        None
    }

    /// Computes the register allocation for `kernel` under `budget` registers.
    ///
    /// # Errors
    ///
    /// Strategy-specific; the built-in strategies return
    /// [`AllocError::EmptyKernel`] and [`AllocError::BudgetTooSmall`].
    fn allocate(
        &self,
        kernel: &CompiledKernel,
        budget: u64,
    ) -> Result<RegisterAllocation, AllocError>;
}

/// A copyable handle to a registered [`Allocator`].
///
/// This is the value type the rest of the pipeline carries around (design
/// points, allocations, CLI arguments): `Copy`, comparable and hashable by the
/// allocator's canonical name, and forwarding the trait's accessors.
#[derive(Clone, Copy)]
pub struct AllocatorRef {
    inner: &'static dyn Allocator,
}

impl AllocatorRef {
    /// Wraps a static allocator instance.
    pub fn of(allocator: &'static dyn Allocator) -> Self {
        Self { inner: allocator }
    }

    /// Canonical registry name, e.g. `cpa`.
    pub fn name(self) -> &'static str {
        self.inner.name()
    }

    /// The short algorithm label, e.g. `CPA-RA`.
    pub fn label(self) -> &'static str {
        self.inner.label()
    }

    /// The design-version label, e.g. `v3`.
    pub fn version_name(self) -> &'static str {
        self.inner.version_name()
    }

    /// The legacy [`AllocatorKind`], if this is one of the five built-ins.
    pub fn kind(self) -> Option<AllocatorKind> {
        self.inner.kind()
    }

    /// Runs the strategy; see [`Allocator::allocate`].
    ///
    /// # Errors
    ///
    /// Strategy-specific; the built-ins return [`AllocError::EmptyKernel`] and
    /// [`AllocError::BudgetTooSmall`].
    pub fn allocate(
        self,
        kernel: &CompiledKernel,
        budget: u64,
    ) -> Result<RegisterAllocation, AllocError> {
        self.inner.allocate(kernel, budget)
    }

    /// Every string [`AllocatorRegistry::get`] resolves to this entry.
    fn lookup_keys(self) -> impl Iterator<Item = &'static str> {
        [self.name(), self.label(), self.version_name()]
            .into_iter()
            .chain(self.inner.aliases().iter().copied())
    }

    fn matches(self, query: &str) -> bool {
        self.lookup_keys()
            .any(|key| query.eq_ignore_ascii_case(key))
    }
}

impl std::fmt::Debug for AllocatorRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("AllocatorRef").field(&self.name()).finish()
    }
}

impl std::fmt::Display for AllocatorRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl PartialEq for AllocatorRef {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
    }
}

impl Eq for AllocatorRef {}

impl std::hash::Hash for AllocatorRef {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name().hash(state);
    }
}

impl PartialEq<AllocatorKind> for AllocatorRef {
    fn eq(&self, other: &AllocatorKind) -> bool {
        self.kind() == Some(*other)
    }
}

impl PartialEq<AllocatorRef> for AllocatorKind {
    fn eq(&self, other: &AllocatorRef) -> bool {
        other.kind() == Some(*self)
    }
}

impl From<AllocatorKind> for AllocatorRef {
    /// The registry entry backing a legacy enum variant.
    fn from(kind: AllocatorKind) -> Self {
        builtin(kind)
    }
}

/// A set of allocation strategies with deterministic iteration order.
///
/// [`AllocatorRegistry::global`] holds the built-in strategies; custom
/// registries (e.g. a subset for a constrained sweep, or third-party
/// strategies) are built with [`AllocatorRegistry::new`] + `register`.
#[derive(Debug, Clone, Default)]
pub struct AllocatorRegistry {
    entries: Vec<AllocatorRef>,
}

impl AllocatorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The global registry of built-in strategies, in presentation order:
    /// `none`, `fr`, `pr`, `cpa`, `ks`, `greedy`.
    pub fn global() -> &'static AllocatorRegistry {
        static GLOBAL: OnceLock<AllocatorRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mut registry = AllocatorRegistry::new();
            registry.register(&NO_REPLACEMENT);
            registry.register(&FULL_REUSE);
            registry.register(&PARTIAL_REUSE);
            registry.register(&CRITICAL_PATH_AWARE);
            registry.register(&KNAPSACK_OPTIMAL);
            registry.register(&GREEDY_SAVINGS);
            registry
        })
    }

    /// Adds a strategy and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics when any of the strategy's lookup keys (canonical name, label,
    /// version name, aliases) collides with an already-registered entry's —
    /// a collision would make [`AllocatorRegistry::get`] ambiguous and, worse,
    /// let two strategies share a content-address in the `srra-explore` result
    /// cache (which keys on the label), so it is treated as a programming
    /// error.
    pub fn register(&mut self, allocator: &'static dyn Allocator) -> AllocatorRef {
        let entry = AllocatorRef::of(allocator);
        for existing in &self.entries {
            if let Some(key) = entry.lookup_keys().find(|key| existing.matches(key)) {
                panic!(
                    "allocator `{}` is already registered or collides with `{}` on lookup key `{key}`",
                    entry.name(),
                    existing.name()
                );
            }
        }
        self.entries.push(entry);
        entry
    }

    /// Resolves a strategy by canonical name, label, version name or alias
    /// (all case-insensitive).
    pub fn get(&self, query: &str) -> Option<AllocatorRef> {
        self.entries.iter().copied().find(|e| e.matches(query))
    }

    /// The registered strategies, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = AllocatorRef> + '_ {
        self.entries.iter().copied()
    }

    /// The canonical names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|e| e.name())
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The three strategies evaluated in the paper's Table 1, in `v1`, `v2`,
    /// `v3` order.
    pub fn paper_versions() -> [AllocatorRef; 3] {
        [
            builtin(AllocatorKind::FullReuse),
            builtin(AllocatorKind::PartialReuse),
            builtin(AllocatorKind::CriticalPathAware),
        ]
    }
}

impl<'a> IntoIterator for &'a AllocatorRegistry {
    type Item = AllocatorRef;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, AllocatorRef>>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().copied()
    }
}

/// The static registry entry backing a legacy [`AllocatorKind`].
pub(crate) fn builtin(kind: AllocatorKind) -> AllocatorRef {
    match kind {
        AllocatorKind::NoReplacement => AllocatorRef::of(&NO_REPLACEMENT),
        AllocatorKind::FullReuse => AllocatorRef::of(&FULL_REUSE),
        AllocatorKind::PartialReuse => AllocatorRef::of(&PARTIAL_REUSE),
        AllocatorKind::CriticalPathAware => AllocatorRef::of(&CRITICAL_PATH_AWARE),
        AllocatorKind::KnapsackOptimal => AllocatorRef::of(&KNAPSACK_OPTIMAL),
    }
}

/// The handle of the `greedy` demonstration strategy (no [`AllocatorKind`]).
pub(crate) fn greedy_ref() -> AllocatorRef {
    AllocatorRef::of(&GREEDY_SAVINGS)
}

macro_rules! builtin_allocator {
    ($static_name:ident, $ty:ident, $name:literal, $label:literal, $version:literal,
     aliases: $aliases:expr, kind: $kind:expr, $doc:literal,
     |$kernel:ident, $budget:ident| $body:expr) => {
        #[doc = $doc]
        struct $ty;

        static $static_name: $ty = $ty;

        impl Allocator for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn label(&self) -> &'static str {
                $label
            }

            fn version_name(&self) -> &'static str {
                $version
            }

            fn aliases(&self) -> &'static [&'static str] {
                $aliases
            }

            fn kind(&self) -> Option<AllocatorKind> {
                $kind
            }

            fn allocate(
                &self,
                $kernel: &CompiledKernel,
                $budget: u64,
            ) -> Result<RegisterAllocation, AllocError> {
                $body
            }
        }
    };
}

builtin_allocator!(
    NO_REPLACEMENT,
    NoReplacementAllocator,
    "none",
    "BASE",
    "v0",
    aliases: &["base", "no-replacement"],
    kind: Some(AllocatorKind::NoReplacement),
    "The untransformed code: every access goes to RAM (budget ignored).",
    |kernel, _budget| Ok(crate::baseline::no_replacement(
        kernel.kernel(),
        kernel.analysis(),
    ))
);

builtin_allocator!(
    FULL_REUSE,
    FullReuseAllocator,
    "fr",
    "FR-RA",
    "v1",
    aliases: &["full-reuse"],
    kind: Some(AllocatorKind::FullReuse),
    "FR-RA: greedy full-reuse allocation by benefit/cost ratio.",
    |kernel, budget| crate::fr_ra::full_reuse(kernel.kernel(), kernel.analysis(), budget)
);

builtin_allocator!(
    PARTIAL_REUSE,
    PartialReuseAllocator,
    "pr",
    "PR-RA",
    "v2",
    aliases: &["partial-reuse"],
    kind: Some(AllocatorKind::PartialReuse),
    "PR-RA: FR-RA plus partial reuse for the next reference in greedy order.",
    |kernel, budget| crate::pr_ra::partial_reuse(kernel.kernel(), kernel.analysis(), budget)
);

builtin_allocator!(
    CRITICAL_PATH_AWARE,
    CriticalPathAwareAllocator,
    "cpa",
    "CPA-RA",
    "v3",
    aliases: &["critical-path-aware"],
    kind: Some(AllocatorKind::CriticalPathAware),
    "CPA-RA: the paper's allocation over cuts of the Critical Graph.",
    |kernel, budget| crate::cpa_ra::critical_path_aware_compiled(
        kernel,
        budget,
        &crate::cpa_ra::CpaOptions::default(),
    )
);

builtin_allocator!(
    KNAPSACK_OPTIMAL,
    KnapsackAllocator,
    "ks",
    "KS-OPT",
    "vk",
    aliases: &["knapsack"],
    kind: Some(AllocatorKind::KnapsackOptimal),
    "Exact 0/1-knapsack maximisation of eliminated memory accesses.",
    |kernel, budget| crate::knapsack::knapsack_optimal(kernel.kernel(), kernel.analysis(), budget)
);

builtin_allocator!(
    GREEDY_SAVINGS,
    GreedySavingsAllocator,
    "greedy",
    "GR-RA",
    "vg",
    aliases: &["gr", "greedy-savings"],
    kind: None,
    "Greedy by absolute eliminated accesses (ignoring register cost) — the \
     registry's extensibility demonstration: it has no `AllocatorKind` variant \
     and no pipeline layer names it.",
    |kernel, budget| crate::greedy::greedy_savings(kernel.kernel(), kernel.analysis(), budget)
);

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    #[test]
    fn global_registry_is_deterministic_and_complete() {
        let names: Vec<&str> = AllocatorRegistry::global().names().collect();
        assert_eq!(names, ["none", "fr", "pr", "cpa", "ks", "greedy"]);
        // Every legacy kind resolves to a registry entry and agrees on labels.
        for kind in AllocatorKind::all() {
            let entry = AllocatorRef::from(kind);
            assert_eq!(entry.label(), kind.label());
            assert_eq!(entry.version_name(), kind.version_name());
            assert_eq!(entry.kind(), Some(kind));
            assert_eq!(entry, kind);
            assert_eq!(kind, entry);
        }
    }

    #[test]
    fn lookup_accepts_names_labels_versions_and_aliases() {
        let registry = AllocatorRegistry::global();
        for query in ["cpa", "CPA-RA", "v3", "critical-path-aware", "Cpa"] {
            assert_eq!(
                registry.get(query).map(|e| e.name()),
                Some("cpa"),
                "query {query}"
            );
        }
        assert_eq!(registry.get("greedy").map(|e| e.label()), Some("GR-RA"));
        assert_eq!(registry.get("vg").map(|e| e.name()), Some("greedy"));
        assert!(registry.get("frobnicate").is_none());
    }

    #[test]
    fn registry_allocation_matches_direct_calls() {
        let ck = CompiledKernel::new(paper_example());
        let fr = AllocatorRegistry::global()
            .get("fr")
            .unwrap()
            .allocate(&ck, 64)
            .unwrap();
        assert_eq!(fr.by_name("a").unwrap().beta(), 30);
        assert_eq!(fr.total_registers(), 53);
    }

    #[test]
    fn greedy_demo_is_only_reachable_through_the_registry() {
        let entry = AllocatorRegistry::global().get("greedy").unwrap();
        assert_eq!(entry.kind(), None);
        let ck = CompiledKernel::new(paper_example());
        let allocation = entry.allocate(&ck, 64).unwrap();
        assert!(allocation.total_registers() <= 64);
        assert_eq!(allocation.algorithm().label(), "GR-RA");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn custom_registries_reject_duplicate_names() {
        let mut registry = AllocatorRegistry::new();
        assert!(registry.is_empty());
        registry.register(&GREEDY_SAVINGS);
        assert_eq!(registry.len(), 1);
        registry.register(&GREEDY_SAVINGS);
    }

    #[test]
    #[should_panic(expected = "collides with `cpa` on lookup key `CPA-RA`")]
    fn registration_rejects_any_lookup_key_collision() {
        // A distinct canonical name is not enough: the label (which also keys
        // the explore result cache) must be unique too.
        struct LabelClash;
        impl Allocator for LabelClash {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn label(&self) -> &'static str {
                "CPA-RA"
            }
            fn version_name(&self) -> &'static str {
                "vc"
            }
            fn allocate(
                &self,
                kernel: &CompiledKernel,
                budget: u64,
            ) -> Result<RegisterAllocation, AllocError> {
                crate::fr_ra::full_reuse(kernel.kernel(), kernel.analysis(), budget)
            }
        }
        static LABEL_CLASH: LabelClash = LabelClash;
        let mut registry = AllocatorRegistry::new();
        registry.register(&CRITICAL_PATH_AWARE);
        registry.register(&LABEL_CLASH);
    }
}
