//! Regression test for the `CompiledKernel` memoization contract: an explore
//! sweep over N design points of one kernel performs exactly one reuse
//! analysis.
//!
//! The test instruments `srra_reuse::analysis_runs()`, a process-wide counter
//! bumped by every `ReuseAnalysis::of` call.  It lives in its own integration
//! test binary (one `#[test]`) so no concurrently running test can touch the
//! counter between the deltas.

use srra_explore::{DesignSpace, Explorer, MemoryStore};
use srra_ir::examples::paper_example;
use srra_kernels::paper_suite;

#[test]
fn one_reuse_analysis_per_kernel_per_sweep() {
    // 24 design points of a single kernel (3 allocators x 4 budgets x 2 RAM
    // latencies), evaluated by 4 racing workers.
    let space = DesignSpace::new()
        .with_kernel(paper_example())
        .with_budgets(&[16, 32, 64, 128])
        .with_ram_latencies(&[1, 2]);
    assert_eq!(space.len(), 24);

    let before = srra_reuse::analysis_runs();
    let mut store = MemoryStore::new();
    let cold = Explorer::new(4).explore(&space, &mut store).unwrap();
    let after_cold = srra_reuse::analysis_runs();
    assert_eq!(cold.evaluated, 24);
    assert_eq!(
        after_cold - before,
        1,
        "a cold sweep over 24 points of one kernel must analyse it exactly once"
    );

    // A warm re-run of the same space answers everything from the store and
    // the space's memoized context means not even one analysis runs.
    let warm = Explorer::new(4).explore(&space, &mut store).unwrap();
    assert_eq!(warm.cache_hits, 24);
    assert_eq!(
        srra_reuse::analysis_runs(),
        after_cold,
        "a fully cached re-run must not analyse at all"
    );

    // Multi-kernel spaces scale the bound linearly: one analysis per kernel,
    // regardless of how many points each kernel contributes.
    let suite_space = DesignSpace::new()
        .with_kernels(paper_suite().into_iter().map(|spec| spec.kernel))
        .with_budgets(&[16, 32]);
    let kernels = suite_space.kernels().len();
    let before_suite = srra_reuse::analysis_runs();
    Explorer::new(4)
        .explore(&suite_space, &mut MemoryStore::new())
        .unwrap();
    assert_eq!(srra_reuse::analysis_runs() - before_suite, kernels);
}
