//! Property-based tests for the exploration engine, its stores and the Pareto
//! extraction: non-domination of every frontier point, byte-identical cached
//! re-runs, and parallel/serial agreement.

use proptest::prelude::*;
use srra_core::AllocatorKind;
use srra_explore::{
    dominates, exploration_csv, pareto_frontier, render_exploration, DesignSpace, Explorer,
    JsonlStore, MemoryStore, PointRecord,
};
use srra_fpga::DeviceModel;
use srra_ir::{Kernel, KernelBuilder};

/// A small two-statement kernel family so generated spaces stay cheap.
fn generated_kernel(ni: u64, nj: u64, nk: u64, chain: bool) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let a = b.add_array("a", &[nk], 16);
    let bb = b.add_array("b", &[nk, nj], 16);
    let c = b.add_array("c", &[nj], 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);
    let op1 = b.mul(b.read(a, &[b.idx(k)]), b.read(bb, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    let rhs = if chain {
        b.read(d, &[b.idx(i), b.idx(k)])
    } else {
        b.read(a, &[b.idx(k)])
    };
    let op2 = b.mul(b.read(c, &[b.idx(j)]), rhs);
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);
    b.build().expect("generated kernel is valid")
}

fn generated_space(
    ni: u64,
    nj: u64,
    nk: u64,
    chain: bool,
    budgets: &[u64],
    latencies: &[u64],
    both_devices: bool,
) -> DesignSpace {
    let devices = if both_devices {
        vec![DeviceModel::xcv1000(), DeviceModel::xcv300()]
    } else {
        vec![DeviceModel::xcv1000()]
    };
    DesignSpace::new()
        .with_kernel(generated_kernel(ni, nj, nk, chain))
        .with_allocators(&[
            AllocatorKind::FullReuse,
            AllocatorKind::PartialReuse,
            AllocatorKind::CriticalPathAware,
        ])
        .with_budgets(budgets)
        .with_ram_latencies(latencies)
        .with_devices(devices)
}

fn scratch_cache_path(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "srra-explore-prop-{tag}-{}-{case}.jsonl",
        std::process::id()
    ))
}

/// Strings stuffed with everything the JSONL escaping has to survive: quotes,
/// backslashes, control characters, JSON syntax and multi-byte code points.
fn nasty_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            'a', 'Z', '0', ' ', ';', '=', ':', ',', '{', '}', '[', ']', '"', '\\', '/', '\n', '\r',
            '\t', '\u{0}', '\u{1}', '\u{1f}', '\u{7f}', 'é', '→', '𝕊',
        ]),
        0..16,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Finite but extreme `f64`s: subnormals, the type's edges, exact zeroes of
/// both signs, and arbitrary finite bit patterns.
fn extreme_f64() -> impl Strategy<Value = f64> {
    (any::<u64>(), 0u8..8).prop_map(|(bits, pick)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => f64::MAX,
        3 => f64::MIN,
        4 => f64::MIN_POSITIVE,
        5 => 5e-324, // Smallest positive subnormal.
        6 => f64::EPSILON,
        _ => {
            let raw = f64::from_bits(bits);
            if raw.is_finite() {
                raw
            } else {
                // NaN/inf have no JSON literal; fold them onto a finite value
                // derived from the same draw.
                (bits >> 12) as f64 * 1e-3
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pareto_points_are_mutually_non_dominated_and_cover_all_feasible(
        ni in 1u64..4,
        nj in 2u64..10,
        nk in 2u64..10,
        chain in any::<bool>(),
        budget_lo in 5u64..40,
        budget_hi in 40u64..160,
    ) {
        let space = generated_space(
            ni, nj, nk, chain,
            &[budget_lo, budget_hi],
            &[1, 2],
            true,
        );
        let run = Explorer::new(2)
            .explore(&space, &mut MemoryStore::new())
            .expect("in-memory exploration cannot fail");
        let frontier = pareto_frontier(&run.records);
        // (a) every frontier pair is mutually non-dominated.
        for x in &frontier {
            prop_assert!(x.feasible);
            for y in &frontier {
                prop_assert!(!dominates(x, y), "frontier point dominates another");
            }
        }
        // (b) every feasible record is either on the frontier or dominated by /
        // objective-equal to a frontier point.
        let covered = |r: &PointRecord| {
            frontier.iter().any(|f| {
                dominates(f, r)
                    || (f.total_cycles == r.total_cycles
                        && f.slices == r.slices
                        && f.registers_used == r.registers_used)
            })
        };
        for record in run.records.iter().filter(|r| r.feasible) {
            prop_assert!(covered(record), "feasible point neither on nor under the frontier");
        }
    }

    #[test]
    fn cached_reruns_are_byte_identical_to_cold_runs(
        ni in 1u64..4,
        nj in 2u64..8,
        nk in 2u64..8,
        chain in any::<bool>(),
        budget in 6u64..80,
        latency in 1u64..4,
        case in any::<u32>(),
    ) {
        let space = generated_space(ni, nj, nk, chain, &[budget], &[latency], false);
        let path = scratch_cache_path("rerun", u64::from(case));
        let _ = std::fs::remove_file(&path);

        let cold = {
            let mut store = JsonlStore::open(&path).expect("cache opens");
            Explorer::new(2).explore(&space, &mut store).expect("cold run")
        };
        prop_assert_eq!(cold.cache_hits, 0);
        let warm = {
            let mut store = JsonlStore::open(&path).expect("cache reopens");
            Explorer::new(2).explore(&space, &mut store).expect("warm run")
        };
        std::fs::remove_file(&path).expect("scratch cache removed");

        prop_assert_eq!(warm.cache_hits, space.len());
        prop_assert_eq!(warm.evaluated, 0);
        // Identical record lists after a disk round trip...
        prop_assert_eq!(&warm.records, &cold.records);
        // ...and byte-identical renders, text and CSV.
        prop_assert_eq!(render_exploration(&warm), render_exploration(&cold));
        prop_assert_eq!(exploration_csv(&warm), exploration_csv(&cold));
    }
}

// The record codec is microseconds-cheap per case, so it gets its own block
// with a much larger case budget than the exploration properties above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn point_record_json_lines_round_trip_bit_exactly(
        key in any::<u64>(),
        canonical in nasty_string(),
        kernel in nasty_string(),
        algorithm in nasty_string(),
        version in nasty_string(),
        device in nasty_string(),
        distribution in nasty_string(),
        feasible in any::<bool>(),
        fits in any::<bool>(),
        cycles in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        sizes in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        clock_period_ns in extreme_f64(),
        execution_time_us in extreme_f64(),
    ) {
        let (budget, ram_latency, total_cycles, compute_cycles, memory_cycles) = cycles;
        let (transfer_cycles, registers_used, slices, block_rams) = sizes;
        let record = PointRecord {
            key,
            canonical,
            kernel,
            algorithm,
            version,
            budget,
            ram_latency,
            device,
            feasible,
            fits,
            registers_used,
            total_cycles,
            compute_cycles,
            memory_cycles,
            transfer_cycles,
            clock_period_ns,
            execution_time_us,
            slices,
            block_rams,
            distribution,
        };
        let line = record.to_json_line();
        prop_assert!(!line.contains('\n'), "encoded record must stay on one line");
        let back = match PointRecord::from_json_line(&line) {
            Ok(back) => back,
            Err(err) => return Err(TestCaseError::fail(format!(
                "failed to parse own encoding `{line}`: {err}"
            ))),
        };
        prop_assert_eq!(&back, &record);
        // Bit-exact floats (PartialEq alone would let -0.0 == 0.0 slip by).
        prop_assert_eq!(
            back.clock_period_ns.to_bits(),
            record.clock_period_ns.to_bits()
        );
        prop_assert_eq!(
            back.execution_time_us.to_bits(),
            record.execution_time_us.to_bits()
        );
        // Re-encoding is byte-identical, so cached files never churn.
        prop_assert_eq!(back.to_json_line(), line);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_and_serial_exploration_produce_the_same_result_set(
        ni in 1u64..4,
        nj in 2u64..8,
        nk in 2u64..8,
        chain in any::<bool>(),
        budget_lo in 5u64..40,
        budget_hi in 40u64..120,
        jobs in 2usize..9,
    ) {
        let space = generated_space(
            ni, nj, nk, chain,
            &[budget_lo, budget_hi],
            &[1, 2],
            true,
        );
        let serial = Explorer::new(1)
            .explore(&space, &mut MemoryStore::new())
            .expect("serial run");
        let parallel = Explorer::new(jobs)
            .explore(&space, &mut MemoryStore::new())
            .expect("parallel run");
        prop_assert_eq!(serial.records.len(), space.len());
        prop_assert_eq!(&serial.records, &parallel.records);
        prop_assert_eq!(
            render_exploration(&serial),
            render_exploration(&parallel)
        );
    }
}
