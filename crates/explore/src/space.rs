//! The design-space specification: which (kernel, allocator, budget, RAM
//! latency, device) combinations an exploration covers.

use srra_core::{AllocatorRef, AllocatorRegistry, CompiledKernel};
use srra_fpga::DeviceModel;

/// 64-bit FNV-1a hash, used to content-address design points.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A cross-product design space over kernels, allocation algorithms, register
/// budgets, RAM latencies and target devices.
///
/// The defaults mirror the paper's single evaluation point — the three Table 1
/// algorithms at 32 registers on an XCV1000 with the default hardware RAM
/// latency — so a space is useful as soon as it has one kernel:
///
/// ```
/// use srra_explore::DesignSpace;
/// use srra_ir::examples::paper_example;
///
/// let space = DesignSpace::new()
///     .with_kernel(paper_example())
///     .with_budgets(&[16, 32, 64]);
/// assert_eq!(space.len(), 3 * 3); // 3 algorithms x 3 budgets
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    kernels: Vec<CompiledKernel>,
    allocators: Vec<AllocatorRef>,
    budgets: Vec<u64>,
    ram_latencies: Vec<u64>,
    devices: Vec<DeviceModel>,
}

impl DesignSpace {
    /// An empty space with the paper's defaults on every other axis: the three
    /// Table 1 algorithms, a 32-register budget, RAM latency 2 (the
    /// `srra_fpga::EvaluationOptions` hardware default) and the XCV1000.
    pub fn new() -> Self {
        Self {
            kernels: Vec::new(),
            allocators: AllocatorRegistry::paper_versions().to_vec(),
            budgets: vec![32],
            ram_latencies: vec![2],
            devices: vec![DeviceModel::xcv1000()],
        }
    }

    /// A space over the given kernels with the default axes.
    pub fn for_kernels<K>(kernels: impl IntoIterator<Item = K>) -> Self
    where
        K: Into<CompiledKernel>,
    {
        Self::new().with_kernels(kernels)
    }

    /// Adds one kernel (a plain `Kernel` or an already-shared
    /// [`CompiledKernel`] whose memoized analyses carry over).
    #[must_use]
    pub fn with_kernel(mut self, kernel: impl Into<CompiledKernel>) -> Self {
        self.kernels.push(kernel.into());
        self
    }

    /// Adds several kernels.
    #[must_use]
    pub fn with_kernels<K>(mut self, kernels: impl IntoIterator<Item = K>) -> Self
    where
        K: Into<CompiledKernel>,
    {
        self.kernels.extend(kernels.into_iter().map(Into::into));
        self
    }

    /// Replaces the allocator axis.  Accepts registry handles
    /// ([`AllocatorRef`]) or legacy [`srra_core::AllocatorKind`] values.
    #[must_use]
    pub fn with_allocators<A>(mut self, allocators: &[A]) -> Self
    where
        A: Into<AllocatorRef> + Copy,
    {
        self.allocators = allocators.iter().map(|&a| a.into()).collect();
        self
    }

    /// Replaces the register-budget axis.
    #[must_use]
    pub fn with_budgets(mut self, budgets: &[u64]) -> Self {
        self.budgets = budgets.to_vec();
        self
    }

    /// Replaces the RAM-latency axis (cycles per RAM access, applied to both
    /// the memory-cycle metric and the hardware evaluation).
    #[must_use]
    pub fn with_ram_latencies(mut self, latencies: &[u64]) -> Self {
        self.ram_latencies = latencies.to_vec();
        self
    }

    /// Replaces the device axis.
    #[must_use]
    pub fn with_devices(mut self, devices: Vec<DeviceModel>) -> Self {
        self.devices = devices;
        self
    }

    /// The kernels on the kernel axis, with their shared analysis contexts.
    pub fn kernels(&self) -> &[CompiledKernel] {
        &self.kernels
    }

    /// Number of design points in the cross product.
    pub fn len(&self) -> usize {
        self.kernels.len()
            * self.allocators.len()
            * self.budgets.len()
            * self.ram_latencies.len()
            * self.devices.len()
    }

    /// Whether the cross product is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises every design point, in a deterministic order (kernel-major,
    /// then allocator, budget, latency, device).
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut points = Vec::with_capacity(self.len());
        for (kernel_index, kernel) in self.kernels.iter().enumerate() {
            for &allocator in &self.allocators {
                for &budget in &self.budgets {
                    for &ram_latency in &self.ram_latencies {
                        for device in &self.devices {
                            points.push(DesignPoint {
                                kernel_index,
                                kernel: kernel.name().to_owned(),
                                allocator,
                                budget,
                                ram_latency,
                                device: device.clone(),
                            });
                        }
                    }
                }
            }
        }
        points
    }
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// One point of a [`DesignSpace`]: a fully specified evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Index of the kernel in the owning space's kernel list.
    pub kernel_index: usize,
    /// Kernel name (also part of the content address).
    pub kernel: String,
    /// Allocation strategy to run, resolved from the registry.
    pub allocator: AllocatorRef,
    /// Register budget `N_R`.
    pub budget: u64,
    /// RAM access latency in cycles.
    pub ram_latency: u64,
    /// Target device.
    pub device: DeviceModel,
}

impl DesignPoint {
    /// The canonical key string this point is content-addressed by.
    pub fn canonical(&self) -> String {
        format!(
            "kernel={};algo={};budget={};latency={};device={}",
            self.kernel,
            self.allocator.label(),
            self.budget,
            self.ram_latency,
            self.device.name()
        )
    }

    /// The FNV-1a hash of [`DesignPoint::canonical`], the store key.
    pub fn key(&self) -> u64 {
        fnv1a_64(self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_core::AllocatorKind;
    use srra_ir::examples::paper_example;

    #[test]
    fn cross_product_is_exhaustive_and_ordered() {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_allocators(&[AllocatorKind::FullReuse, AllocatorKind::CriticalPathAware])
            .with_budgets(&[16, 32])
            .with_ram_latencies(&[1, 2])
            .with_devices(vec![DeviceModel::xcv1000(), DeviceModel::xcv300()]);
        let points = space.points();
        assert_eq!(points.len(), space.len());
        assert_eq!(points.len(), 2 * 2 * 2 * 2);
        // Deterministic order: repeated materialisation matches.
        assert_eq!(points, space.points());
        // Every canonical key is distinct.
        let mut keys: Vec<String> = points.iter().map(DesignPoint::canonical).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), points.len());
    }

    #[test]
    fn keys_are_stable_content_addresses() {
        let space = DesignSpace::new().with_kernel(paper_example());
        let points = space.points();
        for point in &points {
            assert_eq!(point.key(), fnv1a_64(point.canonical().as_bytes()));
        }
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
    }
}
