//! Length-prefixed binary serialization for hot-path wire and storage records.
//!
//! The workspace's `serde` is an offline no-op shim, so — like the JSONL
//! encoding behind [`crate::JsonlStore`] — the binary codec is hand-rolled behind a
//! minimal `StorageSerde`-style trait pair: [`WireSerde::serialize_into`]
//! writes a value to any [`Write`] sink, [`WireSerde::deserialize_from`]
//! reads it back from any [`Read`] source.  The encoding is fixed-order and
//! fixed-width where possible:
//!
//! * integers are little-endian (`u8` raw, `u32`/`u64`/`i64` via
//!   `to_le_bytes`),
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so every value —
//!   including NaN payloads, infinities and signed zero — round-trips
//!   bit-exactly,
//! * `bool` is one byte (`0`/`1`; anything else is corruption),
//! * strings are a `u32` byte length followed by UTF-8 bytes,
//! * sequences are a `u32` element count followed by the elements,
//! * options are a one-byte discriminant (`0` absent, `1` present).
//!
//! Length headers are validated against hard caps ([`MAX_TEXT_LEN`],
//! [`MAX_SEQ_LEN`]) before any allocation, so a corrupt or hostile header
//! cannot ask the decoder to reserve gigabytes.
//!
//! [`PointRecord`] implements the trait by writing its fields in declaration
//! order; the serving layer builds its request/reply framing on the same
//! primitives (see `crates/serve`), and the segment shard files
//! ([`crate::SegmentStore`]) persist records in exactly this payload encoding.

use std::io::{Read, Write};

use crate::store::PointRecord;

/// Longest string the decoder will allocate for (16 MiB).
///
/// The longest legitimate strings on the wire are Prometheus expositions and
/// `distribution` fields — well under a megabyte.  A length header above this
/// cap is corruption, not data.
pub const MAX_TEXT_LEN: usize = 16 << 20;

/// Most elements a single decoded sequence may claim (1 << 20).
///
/// Batched ops carry at most a few thousand entries; a count above this cap
/// is corruption, not data.
pub const MAX_SEQ_LEN: usize = 1 << 20;

/// Errors of the binary codec.
#[derive(Debug)]
pub enum WireError {
    /// The underlying reader/writer failed (includes truncation: a reader
    /// that ends mid-value surfaces as an `UnexpectedEof` I/O error).
    Io(std::io::Error),
    /// The bytes were read but do not decode: a bad discriminant, an
    /// over-cap length header, invalid UTF-8, or trailing garbage.
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(err) => write!(f, "binary codec I/O error: {err}"),
            WireError::Corrupt(message) => write!(f, "corrupt binary value: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(err: std::io::Error) -> Self {
        WireError::Io(err)
    }
}

/// Binary serialization seam: a value that can write itself to any [`Write`]
/// sink and read itself back from any [`Read`] source.
///
/// The pair mirrors papyrus's `StorageSerde` — one trait, two directions, no
/// intermediate tree — so the same impl serves the wire protocol (writing
/// into a connection's reused scratch buffer) and the segment store files.
pub trait WireSerde: Sized {
    /// Appends the value's binary encoding to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the sink fails; encoding itself cannot
    /// fail.
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError>;

    /// Reads one value's binary encoding from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] when the source fails or ends mid-value,
    /// and [`WireError::Corrupt`] when the bytes do not decode.
    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError>;
}

impl WireSerde for u8 {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        out.write_all(&[*self])?;
        Ok(())
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let mut buf = [0u8; 1];
        reader.read_exact(&mut buf)?;
        Ok(buf[0])
    }
}

impl WireSerde for u32 {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        out.write_all(&self.to_le_bytes())?;
        Ok(())
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let mut buf = [0u8; 4];
        reader.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }
}

impl WireSerde for u64 {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        out.write_all(&self.to_le_bytes())?;
        Ok(())
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

impl WireSerde for i64 {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        out.write_all(&self.to_le_bytes())?;
        Ok(())
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let mut buf = [0u8; 8];
        reader.read_exact(&mut buf)?;
        Ok(i64::from_le_bytes(buf))
    }
}

impl WireSerde for f64 {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        // The bit pattern, not a decimal rendering: round-trips NaN payloads,
        // infinities and signed zero exactly, with no parse on the way back.
        self.to_bits().serialize_into(out)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::deserialize_from(reader)?))
    }
}

impl WireSerde for bool {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        u8::from(*self).serialize_into(out)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        match u8::deserialize_from(reader)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Corrupt(format!("bad bool byte {other:#04x}"))),
        }
    }
}

impl WireSerde for String {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        write_str(out, self)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let len = read_len(reader, MAX_TEXT_LEN, "string")?;
        let mut bytes = vec![0u8; len];
        reader.read_exact(&mut bytes)?;
        String::from_utf8(bytes).map_err(|err| WireError::Corrupt(format!("bad UTF-8: {err}")))
    }
}

impl<T: WireSerde> WireSerde for Option<T> {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        match self {
            None => 0u8.serialize_into(out),
            Some(value) => {
                1u8.serialize_into(out)?;
                value.serialize_into(out)
            }
        }
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        match u8::deserialize_from(reader)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize_from(reader)?)),
            other => Err(WireError::Corrupt(format!("bad option byte {other:#04x}"))),
        }
    }
}

impl<T: WireSerde> WireSerde for Vec<T> {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        write_seq_len(out, self.len())?;
        for item in self {
            item.serialize_into(out)?;
        }
        Ok(())
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        let count = read_len(reader, MAX_SEQ_LEN, "sequence")?;
        // Conservative reservation: elements are at least one byte each, so a
        // corrupt-but-under-cap count cannot reserve more than the cap.
        let mut items = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            items.push(T::deserialize_from(reader)?);
        }
        Ok(items)
    }
}

/// Writes a borrowed string — the allocation-free twin of the `String` impl,
/// for callers encoding `&str` fields without cloning.
///
/// # Errors
///
/// Returns [`WireError::Io`] when the sink fails and [`WireError::Corrupt`]
/// when the string exceeds [`MAX_TEXT_LEN`] (it could never be decoded).
pub fn write_str(out: &mut impl Write, text: &str) -> Result<(), WireError> {
    if text.len() > MAX_TEXT_LEN {
        return Err(WireError::Corrupt(format!(
            "string of {} bytes exceeds the {} byte cap",
            text.len(),
            MAX_TEXT_LEN
        )));
    }
    write_seq_len(out, text.len())?;
    out.write_all(text.as_bytes())?;
    Ok(())
}

/// Writes a `usize` length/count header as `u32` little-endian.
///
/// # Errors
///
/// Returns [`WireError::Corrupt`] when the value does not fit in `u32` and
/// [`WireError::Io`] when the sink fails.
pub fn write_seq_len(out: &mut impl Write, len: usize) -> Result<(), WireError> {
    let len = u32::try_from(len)
        .map_err(|_| WireError::Corrupt(format!("length {len} does not fit the u32 header")))?;
    len.serialize_into(out)
}

/// Reads a `u32` length/count header, enforcing `cap` before any allocation.
///
/// # Errors
///
/// Returns [`WireError::Io`] when the source fails and [`WireError::Corrupt`]
/// when the header exceeds `cap`.
pub fn read_len(reader: &mut impl Read, cap: usize, what: &str) -> Result<usize, WireError> {
    let len = u32::deserialize_from(reader)? as usize;
    if len > cap {
        return Err(WireError::Corrupt(format!(
            "{what} length {len} exceeds the {cap} cap"
        )));
    }
    Ok(len)
}

impl WireSerde for PointRecord {
    fn serialize_into(&self, out: &mut impl Write) -> Result<(), WireError> {
        self.key.serialize_into(out)?;
        write_str(out, &self.canonical)?;
        write_str(out, &self.kernel)?;
        write_str(out, &self.algorithm)?;
        write_str(out, &self.version)?;
        self.budget.serialize_into(out)?;
        self.ram_latency.serialize_into(out)?;
        write_str(out, &self.device)?;
        self.feasible.serialize_into(out)?;
        self.fits.serialize_into(out)?;
        self.registers_used.serialize_into(out)?;
        self.total_cycles.serialize_into(out)?;
        self.compute_cycles.serialize_into(out)?;
        self.memory_cycles.serialize_into(out)?;
        self.transfer_cycles.serialize_into(out)?;
        self.clock_period_ns.serialize_into(out)?;
        self.execution_time_us.serialize_into(out)?;
        self.slices.serialize_into(out)?;
        self.block_rams.serialize_into(out)?;
        write_str(out, &self.distribution)
    }

    fn deserialize_from(reader: &mut impl Read) -> Result<Self, WireError> {
        Ok(Self {
            key: u64::deserialize_from(reader)?,
            canonical: String::deserialize_from(reader)?,
            kernel: String::deserialize_from(reader)?,
            algorithm: String::deserialize_from(reader)?,
            version: String::deserialize_from(reader)?,
            budget: u64::deserialize_from(reader)?,
            ram_latency: u64::deserialize_from(reader)?,
            device: String::deserialize_from(reader)?,
            feasible: bool::deserialize_from(reader)?,
            fits: bool::deserialize_from(reader)?,
            registers_used: u64::deserialize_from(reader)?,
            total_cycles: u64::deserialize_from(reader)?,
            compute_cycles: u64::deserialize_from(reader)?,
            memory_cycles: u64::deserialize_from(reader)?,
            transfer_cycles: u64::deserialize_from(reader)?,
            clock_period_ns: f64::deserialize_from(reader)?,
            execution_time_us: f64::deserialize_from(reader)?,
            slices: u64::deserialize_from(reader)?,
            block_rams: u64::deserialize_from(reader)?,
            distribution: String::deserialize_from(reader)?,
        })
    }
}

/// Encodes one value to a fresh byte vector — convenience for tests and
/// one-shot callers; hot paths serialize into a reused buffer instead.
///
/// # Errors
///
/// Propagates [`WireError::Corrupt`] from over-cap strings; writing to a
/// `Vec` cannot fail.
pub fn to_bytes<T: WireSerde>(value: &T) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::with_capacity(128);
    value.serialize_into(&mut out)?;
    Ok(out)
}

/// Decodes one value from a byte slice, requiring every byte to be consumed.
///
/// # Errors
///
/// Returns [`WireError::Io`] on truncation, [`WireError::Corrupt`] on bad
/// bytes or trailing garbage.
pub fn from_bytes<T: WireSerde>(mut bytes: &[u8]) -> Result<T, WireError> {
    let value = T::deserialize_from(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(WireError::Corrupt(format!(
            "{} trailing bytes after the value",
            bytes.len()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> PointRecord {
        PointRecord {
            key: 0x1234_5678_9abc_def0,
            canonical: "kernel=fir;algo=CPA-RA;budget=32;latency=2;device=XCV1000-BG560".to_owned(),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: 32,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: false,
            registers_used: 32,
            total_cycles: 123_456,
            compute_cycles: 100_000,
            memory_cycles: 20_000,
            transfer_cycles: 3_456,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:30 b:1 \"c\":1".to_owned(),
        }
    }

    fn round_trip<T: WireSerde + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value).expect("encodes");
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_round_trip() {
        for value in [0u8, 1, 0x7f, 0xff] {
            round_trip(&value);
        }
        for value in [0u32, 1, u32::MAX] {
            round_trip(&value);
        }
        for value in [0u64, 1, u64::MAX] {
            round_trip(&value);
        }
        for value in [i64::MIN, -1, 0, i64::MAX] {
            round_trip(&value);
        }
        round_trip(&true);
        round_trip(&false);
        round_trip(&Some(42u64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1u64, 2, 3]);
        round_trip(&Vec::<u64>::new());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for value in [
            0.0f64,
            -0.0,
            1.0,
            -1.5,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_dead_beef_cafe), // NaN with a payload
            1e-308,
            1e308,
        ] {
            let bytes = to_bytes(&value).unwrap();
            let back: f64 = from_bytes(&bytes).unwrap();
            assert_eq!(back.to_bits(), value.to_bits(), "{value}");
        }
    }

    #[test]
    fn nasty_strings_round_trip() {
        for text in [
            "",
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab\rand\u{0}nul",
            "unicode: ünïcødé — 日本語 🚀",
            "\u{1}\u{2}\u{3}control soup\u{1f}",
            "a:16 \"b\":1",
        ] {
            round_trip(&text.to_owned());
        }
        // A long string well past any inline buffer.
        round_trip(&"x".repeat(100_000));
    }

    #[test]
    fn point_record_round_trips() {
        round_trip(&sample_record());

        // Extreme numeric fields, including a payload-carrying NaN.
        let mut extreme = sample_record();
        extreme.key = u64::MAX;
        extreme.budget = u64::MAX;
        extreme.total_cycles = 0;
        extreme.clock_period_ns = f64::from_bits(0x7ff8_0000_0000_0001);
        extreme.execution_time_us = f64::NEG_INFINITY;
        extreme.distribution = String::new();
        let bytes = to_bytes(&extreme).unwrap();
        let back: PointRecord = from_bytes(&bytes).unwrap();
        assert_eq!(back.key, extreme.key);
        assert_eq!(
            back.clock_period_ns.to_bits(),
            extreme.clock_period_ns.to_bits()
        );
        assert_eq!(
            back.execution_time_us.to_bits(),
            extreme.execution_time_us.to_bits()
        );
    }

    #[test]
    fn vectors_of_records_round_trip() {
        let records = vec![sample_record(), sample_record()];
        round_trip(&records);
        round_trip(&vec![Some(sample_record()), None]);
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let bytes = to_bytes(&sample_record()).unwrap();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            match from_bytes::<PointRecord>(&bytes[..cut]) {
                Err(WireError::Io(err)) => {
                    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
                }
                other => panic!("cut {cut}: expected truncation error, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupt_headers_are_rejected_before_allocation() {
        // A string length header claiming 4 GiB.
        let mut bytes = Vec::new();
        u32::MAX.serialize_into(&mut bytes).unwrap();
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(WireError::Corrupt(_))
        ));

        // A sequence count over the cap.
        let mut bytes = Vec::new();
        ((MAX_SEQ_LEN + 1) as u32)
            .serialize_into(&mut bytes)
            .unwrap();
        assert!(matches!(
            from_bytes::<Vec<u64>>(&bytes),
            Err(WireError::Corrupt(_))
        ));

        // Invalid UTF-8 payload.
        let mut bytes = Vec::new();
        2u32.serialize_into(&mut bytes).unwrap();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            from_bytes::<String>(&bytes),
            Err(WireError::Corrupt(_))
        ));

        // Bad bool and option discriminants.
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(WireError::Corrupt(_))
        ));
        assert!(matches!(
            from_bytes::<Option<u8>>(&[9]),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = to_bytes(&42u64).unwrap();
        bytes.push(0);
        assert!(matches!(
            from_bytes::<u64>(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn binary_beats_json_on_size_for_typical_records() {
        // Not a correctness property, but the point of the codec: the binary
        // encoding of a typical record is smaller than its JSON line.
        let record = sample_record();
        let binary = to_bytes(&record).unwrap();
        let json = record.to_json_line();
        assert!(
            binary.len() < json.len(),
            "binary {} >= json {}",
            binary.len(),
            json.len()
        );
    }
}
