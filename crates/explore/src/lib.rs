//! Parallel design-space exploration with a persistent result cache and
//! Pareto-frontier extraction.
//!
//! The paper evaluates its allocators at one design point per kernel (32
//! registers, one XCV1000 device).  This crate turns the one-shot pipeline into
//! a batched sweep over the full cross product of
//!
//! * kernels (each wrapped in a shared [`srra_core::CompiledKernel`] analysis
//!   context, so a sweep performs one reuse analysis per kernel no matter how
//!   many points it evaluates),
//! * allocation strategies ([`srra_core::AllocatorRef`] handles resolved from
//!   the open [`srra_core::AllocatorRegistry`] — any registered strategy can
//!   be swept without touching this crate),
//! * register budgets,
//! * RAM latencies, and
//! * target devices ([`srra_fpga::DeviceModel`]),
//!
//! evaluated in parallel by a work-stealing thread pool and deduplicated
//! through a content-addressed [`ResultStore`] (FNV-hashed design-point keys)
//! with in-memory ([`MemoryStore`]), persistent JSON-lines ([`JsonlStore`])
//! and fixed-header binary segment ([`SegmentStore`]) backends — the latter
//! encoding records through the [`WireSerde`] trait ([`codec`]), the same
//! length-prefixed serialisation the serve layer's binary wire codec uses.
//! On top of the raw records it extracts multi-objective Pareto
//! frontiers (total cycles × slices × registers) and per-kernel best-allocator
//! summaries.
//!
//! # Quickstart
//!
//! ```
//! use srra_explore::{pareto_frontier, DesignSpace, Explorer, MemoryStore};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let space = DesignSpace::for_kernels([srra_kernels::fir::fir(64, 8)?])
//!     .with_budgets(&[8, 16, 32, 64]);
//! let run = Explorer::new(4).explore(&space, &mut MemoryStore::new())?;
//! let frontier = pareto_frontier(&run.records);
//! assert!(!frontier.is_empty());
//! # Ok(())
//! # }
//! ```
//!
//! With a [`JsonlStore`] instead of the [`MemoryStore`], re-running the same
//! space answers every point from disk and returns byte-identical records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod engine;
mod pareto;
mod render;
mod segment;
mod space;
mod store;

pub use codec::{WireError, WireSerde};
pub use engine::{evaluate_point, evaluate_point_timed, Exploration, Explorer, StageTimings};
pub use pareto::{best_allocators, dominates, pareto_frontier, BestAllocator};
pub use render::{exploration_csv, render_best_allocators, render_exploration, render_frontier};
pub use segment::{SegmentStore, MAX_SEGMENT_RECORD_LEN, SEGMENT_MAGIC};
pub use space::{fnv1a_64, DesignPoint, DesignSpace};
pub use store::{JsonlError, JsonlStore, MemoryStore, PointRecord, ResultStore, StoreBase};
