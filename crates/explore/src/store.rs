//! Content-addressed result stores: an in-memory map and a persistent
//! JSON-lines backend.
//!
//! The layering follows the `StorageBase` / `Storage` split common in embedded
//! storage APIs: [`StoreBase`] carries the error type and the cheap queries,
//! [`ResultStore`] adds typed get/put.  Records are keyed by the FNV-1a hash of
//! the design point's canonical string, but every store indexes a *small vector*
//! of records per key and matches on the canonical string, so a (vanishingly
//! unlikely) hash collision stores both colliding records instead of silently
//! dropping — and forever re-evaluating — the second one.

use std::collections::HashMap;
use std::convert::Infallible;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// The persisted outcome of evaluating one design point.
///
/// `feasible` is `false` when the allocator rejected the point (register budget
/// below the kernel's reference count); all metric fields are zero in that
/// case.  `fits` records whether the design's slice and BlockRAM usage fits the
/// evaluated device.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// FNV-1a hash of `canonical` — the store key.
    pub key: u64,
    /// The canonical design-point string (see `DesignPoint::canonical`).
    pub canonical: String,
    /// Kernel name.
    pub kernel: String,
    /// Algorithm label (`FR-RA`, `PR-RA`, `CPA-RA`, ...).
    pub algorithm: String,
    /// Table 1 version name (`v1`, `v2`, `v3`, ...).
    pub version: String,
    /// Register budget the point was evaluated with.
    pub budget: u64,
    /// RAM access latency in cycles.
    pub ram_latency: u64,
    /// Device name.
    pub device: String,
    /// Whether the allocator accepted the point.
    pub feasible: bool,
    /// Whether the design fits on the device.
    pub fits: bool,
    /// Registers consumed by the allocation.
    pub registers_used: u64,
    /// Total execution cycles.
    pub total_cycles: u64,
    /// Datapath / loop-control cycles.
    pub compute_cycles: u64,
    /// Steady-state RAM access cycles (at `ram_latency`).
    pub memory_cycles: u64,
    /// Prologue/epilogue transfer cycles.
    pub transfer_cycles: u64,
    /// Achievable clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Wall-clock execution time in microseconds.
    pub execution_time_us: f64,
    /// Logic slices occupied.
    pub slices: u64,
    /// BlockRAMs occupied.
    pub block_rams: u64,
    /// Per-reference register distribution.
    pub distribution: String,
}

fn escape_json(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl PointRecord {
    /// Encodes the record as one line of JSON (no trailing newline).
    ///
    /// The encoding is hand-rolled (the workspace's `serde` is an offline no-op
    /// shim) and fixed-order, so identical records encode to identical bytes.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_json_line(&mut out);
        out
    }

    /// Appends the record's JSON line (no trailing newline) to `out` —
    /// the allocation-free twin of [`PointRecord::to_json_line`] for callers
    /// embedding records into a reused buffer.
    pub fn write_json_line(&self, out: &mut String) {
        out.push('{');
        let _ = write!(out, "\"key\":\"{:#018x}\"", self.key);
        for (name, value) in [
            ("canonical", &self.canonical),
            ("kernel", &self.kernel),
            ("algorithm", &self.algorithm),
            ("version", &self.version),
        ] {
            let _ = write!(out, ",\"{name}\":\"");
            escape_json(out, value);
            out.push('"');
        }
        let _ = write!(out, ",\"budget\":{}", self.budget);
        let _ = write!(out, ",\"ram_latency\":{}", self.ram_latency);
        let _ = write!(out, ",\"device\":\"");
        escape_json(out, &self.device);
        out.push('"');
        let _ = write!(out, ",\"feasible\":{}", self.feasible);
        let _ = write!(out, ",\"fits\":{}", self.fits);
        let _ = write!(out, ",\"registers_used\":{}", self.registers_used);
        let _ = write!(out, ",\"total_cycles\":{}", self.total_cycles);
        let _ = write!(out, ",\"compute_cycles\":{}", self.compute_cycles);
        let _ = write!(out, ",\"memory_cycles\":{}", self.memory_cycles);
        let _ = write!(out, ",\"transfer_cycles\":{}", self.transfer_cycles);
        // `{:?}` prints the shortest representation that round-trips exactly,
        // so parse(encode(x)) == x bit-for-bit.
        let _ = write!(out, ",\"clock_period_ns\":{:?}", self.clock_period_ns);
        let _ = write!(out, ",\"execution_time_us\":{:?}", self.execution_time_us);
        let _ = write!(out, ",\"slices\":{}", self.slices);
        let _ = write!(out, ",\"block_rams\":{}", self.block_rams);
        let _ = write!(out, ",\"distribution\":\"");
        escape_json(out, &self.distribution);
        out.push('"');
        out.push('}');
    }

    /// Decodes a record from one JSON line produced by
    /// [`PointRecord::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax problem or missing field.
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let text = |name: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, JsonValue::Text(s))) => Ok(s.clone()),
                Some(_) => Err(format!("field `{name}` is not a string")),
                None => Err(format!("missing field `{name}`")),
            }
        };
        let num = |name: &str| -> Result<u64, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, JsonValue::Number(raw))) => raw
                    .parse::<u64>()
                    .map_err(|e| format!("field `{name}`: {e}")),
                Some(_) => Err(format!("field `{name}` is not a number")),
                None => Err(format!("missing field `{name}`")),
            }
        };
        let float = |name: &str| -> Result<f64, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, JsonValue::Number(raw))) => raw
                    .parse::<f64>()
                    .map_err(|e| format!("field `{name}`: {e}")),
                Some(_) => Err(format!("field `{name}` is not a number")),
                None => Err(format!("missing field `{name}`")),
            }
        };
        let boolean = |name: &str| -> Result<bool, String> {
            match fields.iter().find(|(k, _)| k == name) {
                Some((_, JsonValue::Bool(b))) => Ok(*b),
                Some(_) => Err(format!("field `{name}` is not a boolean")),
                None => Err(format!("missing field `{name}`")),
            }
        };
        let key_text = text("key")?;
        let key_digits = key_text
            .strip_prefix("0x")
            .ok_or_else(|| format!("field `key`: expected 0x prefix, got `{key_text}`"))?;
        let key = u64::from_str_radix(key_digits, 16).map_err(|e| format!("field `key`: {e}"))?;
        Ok(Self {
            key,
            canonical: text("canonical")?,
            kernel: text("kernel")?,
            algorithm: text("algorithm")?,
            version: text("version")?,
            budget: num("budget")?,
            ram_latency: num("ram_latency")?,
            device: text("device")?,
            feasible: boolean("feasible")?,
            fits: boolean("fits")?,
            registers_used: num("registers_used")?,
            total_cycles: num("total_cycles")?,
            compute_cycles: num("compute_cycles")?,
            memory_cycles: num("memory_cycles")?,
            transfer_cycles: num("transfer_cycles")?,
            clock_period_ns: float("clock_period_ns")?,
            execution_time_us: float("execution_time_us")?,
            slices: num("slices")?,
            block_rams: num("block_rams")?,
            distribution: text("distribution")?,
        })
    }
}

enum JsonValue {
    Text(String),
    Number(String),
    Bool(bool),
}

/// Parses a single-level JSON object with string / number / boolean values —
/// exactly the shape [`PointRecord::to_json_line`] emits.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<String, String> {
        if chars.next() != Some('"') {
            return Err("expected `\"`".to_owned());
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let digits: String = (0..4).filter_map(|_| chars.next()).collect();
                        let code = u32::from_str_radix(&digits, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape `\\{other:?}`")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected `{`".to_owned());
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let name = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Text(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String = std::iter::from_fn(|| {
                    matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic())
                        .then(|| chars.next())
                        .flatten()
                })
                .collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    other => return Err(format!("bad literal `{other}`")),
                }
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let raw: String = std::iter::from_fn(|| {
                    matches!(
                        chars.peek(),
                        Some(c) if c.is_ascii_digit()
                            || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                    )
                    .then(|| chars.next())
                    .flatten()
                })
                .collect();
                JsonValue::Number(raw)
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.push((name, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
    Ok(fields)
}

/// Base layer of the store stack: the error type and cheap queries.
pub trait StoreBase {
    /// Errors the backend can produce.
    type Error: std::fmt::Debug;

    /// Whether a record for `key` exists.
    ///
    /// # Errors
    ///
    /// Backend-specific (I/O for persistent stores).
    fn contains(&self, key: u64) -> Result<bool, Self::Error>;

    /// Number of records held.
    ///
    /// # Errors
    ///
    /// Backend-specific (I/O for persistent stores).
    fn len(&self) -> Result<usize, Self::Error>;

    /// Whether the store holds no records.
    ///
    /// # Errors
    ///
    /// Backend-specific (I/O for persistent stores).
    fn is_empty(&self) -> Result<bool, Self::Error> {
        Ok(self.len()? == 0)
    }
}

/// Typed layer: content-addressed get/put of [`PointRecord`]s.
pub trait ResultStore: StoreBase {
    /// Looks up the record for `key`, verifying `canonical` to rule out hash
    /// collisions.
    ///
    /// # Errors
    ///
    /// Backend-specific (I/O for persistent stores).
    fn get(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, Self::Error>;

    /// Inserts a record; returns `false` if a record with the same canonical
    /// string was already present (the stored record wins — results are
    /// immutable).  A record whose key collides with a *different* canonical
    /// string is stored alongside the existing one, not dropped.
    ///
    /// # Errors
    ///
    /// Backend-specific (I/O for persistent stores).
    fn put(&mut self, record: &PointRecord) -> Result<bool, Self::Error>;
}

/// The shared per-key index of the in-memory backends: a small vector of
/// records per FNV key (almost always length 1; longer only under a genuine
/// 64-bit hash collision).
pub(crate) type KeyIndex = HashMap<u64, Vec<PointRecord>>;

/// Inserts into a [`KeyIndex`], deduplicating by canonical string; returns
/// whether the record was fresh.
pub(crate) fn index_insert(index: &mut KeyIndex, record: &PointRecord) -> bool {
    let bucket = index.entry(record.key).or_default();
    if bucket.iter().any(|held| held.canonical == record.canonical) {
        return false;
    }
    bucket.push(record.clone());
    true
}

/// Looks a canonical string up in a [`KeyIndex`].
pub(crate) fn index_get(index: &KeyIndex, key: u64, canonical: &str) -> Option<PointRecord> {
    index
        .get(&key)?
        .iter()
        .find(|record| record.canonical == canonical)
        .cloned()
}

/// A purely in-memory store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    records: KeyIndex,
    count: usize,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates over every held record (unspecified order).
    pub fn records(&self) -> impl Iterator<Item = &PointRecord> {
        self.records.values().flatten()
    }
}

impl StoreBase for MemoryStore {
    type Error = Infallible;

    fn contains(&self, key: u64) -> Result<bool, Infallible> {
        Ok(self.records.contains_key(&key))
    }

    fn len(&self) -> Result<usize, Infallible> {
        Ok(self.count)
    }
}

impl ResultStore for MemoryStore {
    fn get(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, Infallible> {
        Ok(index_get(&self.records, key, canonical))
    }

    fn put(&mut self, record: &PointRecord) -> Result<bool, Infallible> {
        let fresh = index_insert(&mut self.records, record);
        self.count += usize::from(fresh);
        Ok(fresh)
    }
}

/// Errors of the [`JsonlStore`] backend.
#[derive(Debug)]
pub enum JsonlError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// A line of the store file is not a valid record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for JsonlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlError::Io(err) => write!(f, "cache I/O error: {err}"),
            JsonlError::Parse { line, message } => {
                write!(f, "cache parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for JsonlError {}

impl From<std::io::Error> for JsonlError {
    fn from(err: std::io::Error) -> Self {
        JsonlError::Io(err)
    }
}

/// A persistent store: one JSON record per line, append-only.
///
/// On open, any existing file is loaded into an in-memory index; `put` appends
/// a line and flushes, so a crashed run loses at most the record being written
/// and concurrent readers always see complete lines.
#[derive(Debug)]
pub struct JsonlStore {
    path: PathBuf,
    index: KeyIndex,
    count: usize,
    writer: BufWriter<File>,
}

impl JsonlStore {
    /// Opens (creating if needed) the store at `path`.
    ///
    /// A complete `put` always ends its line with `\n`, so a final line
    /// without one is the half-written record of a killed run: it is dropped
    /// and truncated away, keeping the crash-safety promise above.  A
    /// malformed line *with* a terminator is genuine corruption and an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonlError::Io`] if the file cannot be read or created and
    /// [`JsonlError::Parse`] if a newline-terminated line is corrupt.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JsonlError> {
        let path = path.as_ref().to_path_buf();
        let mut index = KeyIndex::new();
        let mut count = 0;
        let mut terminate_valid_tail = false;
        if path.exists() {
            let data = std::fs::read_to_string(&path)?;
            let mut offset = 0;
            let mut number = 0;
            let mut truncate_at: Option<u64> = None;
            while offset < data.len() {
                let rest = &data[offset..];
                let (line, consumed, terminated) = match rest.find('\n') {
                    Some(pos) => (&rest[..pos], pos + 1, true),
                    None => (rest, rest.len(), false),
                };
                number += 1;
                if !line.trim().is_empty() {
                    match PointRecord::from_json_line(line) {
                        Ok(record) => {
                            // Duplicate lines (e.g. a merged file) keep the
                            // first occurrence; distinct canonicals sharing a
                            // key are all kept.
                            count += usize::from(index_insert(&mut index, &record));
                            // A parseable but unterminated tail stays; the
                            // writer adds the missing newline before appending.
                            terminate_valid_tail = !terminated;
                        }
                        Err(_) if !terminated => {
                            truncate_at = Some(offset as u64);
                        }
                        Err(message) => {
                            return Err(JsonlError::Parse {
                                line: number,
                                message,
                            });
                        }
                    }
                }
                offset += consumed;
            }
            if let Some(len) = truncate_at {
                OpenOptions::new().write(true).open(&path)?.set_len(len)?;
            }
        }
        let mut writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        if terminate_valid_tail {
            writer.write_all(b"\n")?;
            writer.flush()?;
        }
        Ok(Self {
            path,
            index,
            count,
            writer,
        })
    }

    /// The file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Iterates over every held record (unspecified order).
    pub fn records(&self) -> impl Iterator<Item = &PointRecord> {
        self.index.values().flatten()
    }
}

impl StoreBase for JsonlStore {
    type Error = JsonlError;

    fn contains(&self, key: u64) -> Result<bool, JsonlError> {
        Ok(self.index.contains_key(&key))
    }

    fn len(&self) -> Result<usize, JsonlError> {
        Ok(self.count)
    }
}

impl ResultStore for JsonlStore {
    fn get(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, JsonlError> {
        Ok(index_get(&self.index, key, canonical))
    }

    fn put(&mut self, record: &PointRecord) -> Result<bool, JsonlError> {
        if index_get(&self.index, record.key, &record.canonical).is_some() {
            return Ok(false);
        }
        let mut line = record.to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        index_insert(&mut self.index, record);
        self.count += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(key: u64) -> PointRecord {
        PointRecord {
            key,
            canonical: format!("kernel=fir;algo=CPA-RA;budget={key};latency=2;device=XCV1000"),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: key,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 32,
            total_cycles: 123_456,
            compute_cycles: 100_000,
            memory_cycles: 20_000,
            transfer_cycles: 3_456,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:30 b:1 \"c\":1".to_owned(),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let record = sample_record(42);
        let line = record.to_json_line();
        let back = PointRecord::from_json_line(&line).expect("parses");
        assert_eq!(back, record);
        // Re-encoding is byte-identical.
        assert_eq!(back.to_json_line(), line);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(PointRecord::from_json_line("").is_err());
        assert!(PointRecord::from_json_line("{}").is_err());
        assert!(PointRecord::from_json_line("not json").is_err());
        assert!(PointRecord::from_json_line("{\"key\":\"0x1\"").is_err());
    }

    #[test]
    fn memory_store_is_content_addressed() {
        let mut store = MemoryStore::new();
        let record = sample_record(7);
        assert!(!store.contains(7).unwrap());
        assert!(store.put(&record).unwrap());
        assert!(!store.put(&record).unwrap(), "second put is a no-op");
        assert_eq!(store.len().unwrap(), 1);
        assert_eq!(
            store.get(7, &record.canonical).unwrap(),
            Some(record.clone())
        );
        // A colliding key with a different canonical string is a miss.
        assert_eq!(store.get(7, "other").unwrap(), None);
    }

    #[test]
    fn colliding_keys_store_both_records_instead_of_dropping_one() {
        // Two *distinct* design points whose canonical strings FNV-hash to the
        // same 64-bit key.  Before the key→vec index, the second `put`
        // returned Ok(false) without storing anything, so the point was
        // re-evaluated on every run.
        let first = sample_record(7);
        let mut second = sample_record(7);
        second.canonical = "kernel=mat;algo=FR-RA;budget=9;latency=1;device=XCV300".to_owned();
        second.total_cycles = 999;

        let mut memory = MemoryStore::new();
        assert!(memory.put(&first).unwrap());
        assert!(
            memory.put(&second).unwrap(),
            "a colliding key must not silently drop the record"
        );
        assert!(!memory.put(&second).unwrap(), "identical canonical dedupes");
        assert_eq!(memory.len().unwrap(), 2);
        assert_eq!(
            memory.get(7, &first.canonical).unwrap(),
            Some(first.clone())
        );
        assert_eq!(
            memory.get(7, &second.canonical).unwrap(),
            Some(second.clone())
        );
        assert_eq!(memory.records().count(), 2);

        // Same contract for the persistent backend, across a reopen.
        let dir = std::env::temp_dir().join(format!("srra-store-collide-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = JsonlStore::open(&path).unwrap();
            assert!(store.put(&first).unwrap());
            assert!(store.put(&second).unwrap());
            assert!(!store.put(&second).unwrap());
        }
        let store = JsonlStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 2);
        assert_eq!(store.get(7, &first.canonical).unwrap(), Some(first));
        assert_eq!(store.get(7, &second.canonical).unwrap(), Some(second));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn jsonl_store_persists_across_reopen() {
        let dir = std::env::temp_dir().join(format!("srra-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let _ = std::fs::remove_file(&path);

        let first = sample_record(1);
        let second = sample_record(2);
        {
            let mut store = JsonlStore::open(&path).unwrap();
            assert!(store.is_empty().unwrap());
            assert!(store.put(&first).unwrap());
            assert!(store.put(&second).unwrap());
        }
        {
            let mut store = JsonlStore::open(&path).unwrap();
            assert_eq!(store.len().unwrap(), 2);
            assert_eq!(store.get(1, &first.canonical).unwrap(), Some(first.clone()));
            assert!(!store.put(&second).unwrap(), "reloaded keys dedupe puts");
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents.lines().count(), 2, "no duplicate lines written");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_final_line_is_dropped_and_the_cache_stays_usable() {
        let dir = std::env::temp_dir().join(format!("srra-store-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let full = sample_record(1);
        let half = sample_record(2).to_json_line();
        // Simulate a killed run: a complete record plus half of the next one,
        // with no trailing newline.
        std::fs::write(
            &path,
            format!("{}\n{}", full.to_json_line(), &half[..half.len() / 2]),
        )
        .unwrap();
        {
            let mut store = JsonlStore::open(&path).expect("opens despite the torn tail");
            assert_eq!(store.len().unwrap(), 1);
            assert!(store.put(&sample_record(3)).unwrap());
        }
        // The torn tail was truncated away, so the appended record parses on
        // reopen and nothing was lost but the half-written line.
        let store = JsonlStore::open(&path).expect("reopens cleanly");
        assert_eq!(store.len().unwrap(), 2);
        assert!(store.contains(1).unwrap());
        assert!(store.contains(3).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn valid_unterminated_tail_is_kept_and_newline_repaired() {
        let dir = std::env::temp_dir().join(format!("srra-store-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        // A complete record whose newline never made it to disk.
        std::fs::write(&path, sample_record(1).to_json_line()).unwrap();
        {
            let mut store = JsonlStore::open(&path).expect("opens");
            assert_eq!(store.len().unwrap(), 1);
            assert!(store.put(&sample_record(2)).unwrap());
        }
        let store = JsonlStore::open(&path).expect("reopens");
        assert_eq!(
            store.len().unwrap(),
            2,
            "records did not merge into one line"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_cache_lines_are_reported_with_line_numbers() {
        let dir = std::env::temp_dir().join(format!("srra-store-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        std::fs::write(
            &path,
            format!("{}\nnot json\n", sample_record(1).to_json_line()),
        )
        .unwrap();
        match JsonlStore::open(&path) {
            Err(JsonlError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
