//! The exploration engine: evaluates every point of a [`DesignSpace`],
//! deduplicating against a [`ResultStore`] and fanning the cache misses out
//! over a work-stealing thread pool.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use srra_core::{CompiledKernel, MemoryCostModel};
use srra_fpga::{EvaluationOptions, HardwareDesign};
use srra_obs::{Counter, Histogram, Registry};

use crate::space::{DesignPoint, DesignSpace};
use crate::store::{PointRecord, ResultStore};

/// Handles into [`Registry::global`] for the engine's per-stage instruments,
/// resolved once so worker threads never touch the registry's name map.
struct EngineMetrics {
    evaluations: Arc<Counter>,
    infeasible: Arc<Counter>,
    store_reads: Arc<Counter>,
    store_writes: Arc<Counter>,
    reuse_analysis_us: Arc<Histogram>,
    allocation_us: Arc<Histogram>,
    cost_model_us: Arc<Histogram>,
}

fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        EngineMetrics {
            evaluations: registry.counter("explore_evaluations_total"),
            infeasible: registry.counter("explore_infeasible_total"),
            store_reads: registry.counter("explore_store_reads_total"),
            store_writes: registry.counter("explore_store_writes_total"),
            reuse_analysis_us: registry.histogram("explore_reuse_analysis_us"),
            allocation_us: registry.histogram("explore_allocation_us"),
            cost_model_us: registry.histogram("explore_cost_model_us"),
        }
    })
}

/// Wall time spent in each stage of one [`evaluate_point_timed`] call, in
/// microseconds.
///
/// The same three stages the engine's global histograms
/// (`explore_reuse_analysis_us` / `explore_allocation_us` /
/// `explore_cost_model_us`) aggregate, surfaced per call so a traced serve
/// request can attribute its evaluation time span by span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Memoized reuse analysis (0 when the kernel's analysis was already
    /// cached and the stage never ran).
    pub reuse_analysis_us: u64,
    /// Register allocation (the point's allocator strategy).
    pub allocation_us: u64,
    /// Hardware cost-model evaluation (0 for infeasible points, which never
    /// reach it).
    pub cost_model_us: u64,
}

impl StageTimings {
    /// Total stage time in microseconds.
    pub fn total_us(&self) -> u64 {
        self.reuse_analysis_us + self.allocation_us + self.cost_model_us
    }
}

fn elapsed_us(started: Instant) -> u64 {
    started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Evaluates one design point from scratch (no cache involved).
///
/// The kernel's [`CompiledKernel`] context supplies the (memoized) reuse
/// analysis, so evaluating many points of one kernel performs the analysis
/// once, on first use.  The point's RAM latency parameterises both the
/// steady-state memory-cycle metric and the hardware evaluation, so
/// `ram_latency = 2` reproduces `srra_bench::evaluate_kernel`'s numbers and
/// `ram_latency = 1` reproduces the abstract `T_mem` metric of the Figure 2
/// reproduction.
pub fn evaluate_point(kernel: &CompiledKernel, point: &DesignPoint) -> PointRecord {
    evaluate_point_timed(kernel, point).0
}

/// [`evaluate_point`] plus per-stage wall timings for span emission.
///
/// The global stage histograms record exactly as in [`evaluate_point`]; the
/// returned [`StageTimings`] additionally surfaces this call's own stage
/// durations so callers can attach them to a trace.
pub fn evaluate_point_timed(
    kernel: &CompiledKernel,
    point: &DesignPoint,
) -> (PointRecord, StageTimings) {
    let canonical = point.canonical();
    let key = point.key();
    let base = PointRecord {
        key,
        canonical,
        kernel: point.kernel.clone(),
        algorithm: point.allocator.label().to_owned(),
        version: point.allocator.version_name().to_owned(),
        budget: point.budget,
        ram_latency: point.ram_latency,
        device: point.device.name().to_owned(),
        feasible: false,
        fits: false,
        registers_used: 0,
        total_cycles: 0,
        compute_cycles: 0,
        memory_cycles: 0,
        transfer_cycles: 0,
        clock_period_ns: 0.0,
        execution_time_us: 0.0,
        slices: 0,
        block_rams: 0,
        distribution: String::new(),
    };
    let metrics = engine_metrics();
    metrics.evaluations.inc();
    let mut timings = StageTimings::default();
    // Force the kernel's memoized reuse analysis now, so its cost (paid only
    // by the first point of each kernel) lands in its own histogram instead
    // of being folded into whichever stage happens to trigger it.
    if !kernel.analysis_is_cached() {
        let started = Instant::now();
        let _ = kernel.analysis();
        metrics.reuse_analysis_us.record(started.elapsed());
        timings.reuse_analysis_us = elapsed_us(started);
    }
    let started = Instant::now();
    let allocated = point.allocator.allocate(kernel, point.budget);
    metrics.allocation_us.record(started.elapsed());
    timings.allocation_us = elapsed_us(started);
    let Ok(allocation) = allocated else {
        metrics.infeasible.inc();
        return (base, timings);
    };
    let options = EvaluationOptions {
        memory: MemoryCostModel::default().with_ram_latency(point.ram_latency),
        ..EvaluationOptions::default()
    };
    let started = Instant::now();
    let design = HardwareDesign::evaluate(
        kernel.kernel(),
        kernel.analysis(),
        &allocation,
        &point.device,
        &options,
    );
    metrics.cost_model_us.record(started.elapsed());
    timings.cost_model_us = elapsed_us(started);
    let record = PointRecord {
        feasible: true,
        fits: point.device.fits(design.slices, design.block_rams),
        registers_used: design.registers_used,
        total_cycles: design.total_cycles,
        compute_cycles: design.compute_cycles,
        memory_cycles: design.memory_cycles,
        transfer_cycles: design.transfer_cycles,
        clock_period_ns: design.clock_period_ns,
        execution_time_us: design.execution_time_us,
        slices: design.slices,
        block_rams: design.block_rams,
        distribution: design.register_distribution,
        ..base
    };
    (record, timings)
}

/// The outcome of one [`Explorer::explore`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// One record per design point, in the space's deterministic point order.
    pub records: Vec<PointRecord>,
    /// Points answered from the store without evaluation.
    pub cache_hits: usize,
    /// Points evaluated this run (and written back to the store).
    pub evaluated: usize,
}

impl Exploration {
    /// The records belonging to one kernel, in point order.
    pub fn kernel_records(&self, kernel: &str) -> Vec<&PointRecord> {
        self.records
            .iter()
            .filter(|record| record.kernel == kernel)
            .collect()
    }

    /// The distinct kernel names, in first-appearance order.
    pub fn kernel_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for record in &self.records {
            if !names.contains(&record.kernel.as_str()) {
                names.push(&record.kernel);
            }
        }
        names
    }
}

/// Runs design-space explorations with a configurable degree of parallelism.
#[derive(Debug, Clone)]
pub struct Explorer {
    jobs: usize,
}

impl Explorer {
    /// An explorer running at most `jobs` worker threads (`0` is treated as
    /// `1`; one job means fully serial evaluation on the calling thread).
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluates every point of `space`, answering from `store` where possible
    /// and writing every fresh result back to it.
    ///
    /// Results are deterministic: the record list is in the space's point order
    /// and each record's content depends only on the design point, never on the
    /// worker count or the store's prior contents.
    ///
    /// # Errors
    ///
    /// Propagates the store's error type (I/O or corrupt-cache errors for
    /// persistent backends; [`std::convert::Infallible`] for the in-memory
    /// store).
    pub fn explore<S: ResultStore>(
        &self,
        space: &DesignSpace,
        store: &mut S,
    ) -> Result<Exploration, S::Error> {
        let points = space.points();

        // Cache pass: answer what we can, queue the rest.  Repeated design
        // points within one run (a duplicated axis value) are collapsed onto a
        // single pending evaluation whose result fans out to every slot.  Each
        // point's canonical string is built exactly once here.
        let canonicals: Vec<String> = points.iter().map(DesignPoint::canonical).collect();
        let mut records: Vec<Option<PointRecord>> = vec![None; points.len()];
        let mut pending: Vec<&DesignPoint> = Vec::new();
        let mut pending_slots: Vec<Vec<usize>> = Vec::new();
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut cache_hits = 0;
        for (index, point) in points.iter().enumerate() {
            let canonical = &canonicals[index];
            let key = crate::space::fnv1a_64(canonical.as_bytes());
            if let Some(&slot) = seen.get(&key) {
                if canonicals[pending_slots[slot][0]] == *canonical {
                    pending_slots[slot].push(index);
                    continue;
                }
                // A key collision between distinct points: fall through and
                // evaluate separately (the store indexes a vec per key, so
                // both colliding records are cached).
            }
            engine_metrics().store_reads.inc();
            match store.get(key, canonical)? {
                Some(record) => {
                    records[index] = Some(record);
                    cache_hits += 1;
                }
                None => {
                    seen.insert(key, pending.len());
                    pending.push(point);
                    pending_slots.push(vec![index]);
                }
            }
        }

        // Each kernel's `CompiledKernel` context memoizes its reuse analysis:
        // the first pending point of a kernel computes it, every other point
        // (on any worker thread) reuses it, and a fully warm run computes none.
        let evaluated = pending.len();
        let fresh: Vec<(usize, PointRecord)> = if self.jobs == 1 || pending.len() <= 1 {
            pending
                .iter()
                .enumerate()
                .map(|(slot, point)| {
                    (
                        slot,
                        evaluate_point(&space.kernels()[point.kernel_index], point),
                    )
                })
                .collect()
        } else {
            self.evaluate_parallel(space, &pending)
        };

        for (slot, record) in fresh {
            engine_metrics().store_writes.inc();
            store.put(&record)?;
            for &index in &pending_slots[slot] {
                records[index] = Some(record.clone());
            }
        }

        Ok(Exploration {
            records: records
                .into_iter()
                .map(|slot| slot.expect("every point is either cached or freshly evaluated"))
                .collect(),
            cache_hits,
            evaluated,
        })
    }

    /// Fans `pending` out over scoped worker threads.  Work distribution is a
    /// shared atomic cursor: each worker claims the next unclaimed point, so
    /// fast workers steal the load of slow ones without any queue structure.
    /// Returned pairs are `(pending slot, record)`.
    fn evaluate_parallel(
        &self,
        space: &DesignSpace,
        pending: &[&DesignPoint],
    ) -> Vec<(usize, PointRecord)> {
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, PointRecord)>> =
            Mutex::new(Vec::with_capacity(pending.len()));
        let workers = self.jobs.min(pending.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&point) = pending.get(slot) else {
                        break;
                    };
                    let record = evaluate_point(&space.kernels()[point.kernel_index], point);
                    results
                        .lock()
                        .expect("no worker panics while holding the result lock")
                        .push((slot, record));
                });
            }
        });
        results.into_inner().expect("workers have finished")
    }
}

impl Default for Explorer {
    /// One worker per available CPU.
    fn default() -> Self {
        let jobs = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemoryStore;
    use srra_core::{allocate, AllocatorKind};
    use srra_ir::examples::paper_example;
    use srra_kernels::paper_suite;
    use srra_reuse::ReuseAnalysis;

    fn small_space() -> DesignSpace {
        DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[16, 32, 64])
            .with_ram_latencies(&[1, 2])
    }

    #[test]
    fn exploration_matches_the_bench_pipeline() {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[64]);
        let run = Explorer::new(1)
            .explore(&space, &mut MemoryStore::new())
            .unwrap();
        assert_eq!(run.records.len(), 3);
        let cpa = run
            .records
            .iter()
            .find(|r| r.algorithm == "CPA-RA")
            .unwrap();
        // Same numbers as srra_bench::evaluate_kernel (RAM latency 2 default).
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation =
            allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, 64).unwrap();
        let design = HardwareDesign::evaluate(
            &kernel,
            &analysis,
            &allocation,
            &srra_fpga::DeviceModel::xcv1000(),
            &EvaluationOptions::default(),
        );
        assert_eq!(cpa.total_cycles, design.total_cycles);
        assert_eq!(cpa.slices, design.slices);
        assert_eq!(cpa.registers_used, design.registers_used);
        assert!((cpa.clock_period_ns - design.clock_period_ns).abs() < 1e-12);
    }

    #[test]
    fn infeasible_budgets_are_recorded_not_dropped() {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[1]);
        let run = Explorer::new(1)
            .explore(&space, &mut MemoryStore::new())
            .unwrap();
        assert_eq!(run.records.len(), 3);
        for record in &run.records {
            assert!(!record.feasible);
            assert_eq!(record.total_cycles, 0);
        }
    }

    #[test]
    fn second_run_is_all_cache_hits() {
        let space = small_space();
        let mut store = MemoryStore::new();
        let cold = Explorer::new(2).explore(&space, &mut store).unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.evaluated, space.len());
        let warm = Explorer::new(2).explore(&space, &mut store).unwrap();
        assert_eq!(warm.cache_hits, space.len());
        assert_eq!(warm.evaluated, 0);
        assert_eq!(warm.records, cold.records);
    }

    #[test]
    fn duplicate_axis_values_are_evaluated_once() {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[32, 32, 64]);
        let run = Explorer::new(2)
            .explore(&space, &mut MemoryStore::new())
            .unwrap();
        assert_eq!(run.records.len(), 9, "3 algorithms x 3 budget entries");
        assert_eq!(
            run.evaluated, 6,
            "the repeated budget re-uses its twin's result"
        );
        assert_eq!(run.cache_hits, 0);
        for chunk in run.records.chunks(3) {
            assert_eq!(
                chunk[0], chunk[1],
                "duplicate budget slots share one record"
            );
        }
    }

    #[test]
    fn warm_runs_skip_the_reuse_analysis_entirely() {
        let space = small_space();
        let mut store = MemoryStore::new();
        Explorer::new(1).explore(&space, &mut store).unwrap();
        // All-hit run: nothing pending, so no ReuseAnalysis is built (this is
        // a behavioural check that it still returns the right records).
        let warm = Explorer::new(1).explore(&space, &mut store).unwrap();
        assert_eq!(warm.evaluated, 0);
        assert_eq!(warm.records.len(), space.len());
    }

    #[test]
    fn timed_evaluation_matches_untimed_and_reports_its_stages() {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[64, 1]);
        let points = space.points();
        let kernel = &space.kernels()[0];
        let feasible = &points[0];
        let (timed, timings) = evaluate_point_timed(kernel, feasible);
        assert_eq!(timed, evaluate_point(kernel, feasible));
        assert!(timed.feasible);
        assert!(timings.total_us() >= timings.cost_model_us);
        // The infeasible budget never reaches the cost model.
        let infeasible = points.iter().find(|p| p.budget == 1).unwrap();
        let (record, timings) = evaluate_point_timed(kernel, infeasible);
        assert!(!record.feasible);
        assert_eq!(timings.cost_model_us, 0);
        // The analysis was cached by the calls above, so the stage is skipped.
        assert_eq!(timings.reuse_analysis_us, 0);
    }

    #[test]
    fn parallel_and_serial_agree_on_the_full_suite() {
        let space = DesignSpace::new()
            .with_kernels(paper_suite().into_iter().map(|spec| spec.kernel))
            .with_budgets(&[8, 32]);
        let serial = Explorer::new(1)
            .explore(&space, &mut MemoryStore::new())
            .unwrap();
        let parallel = Explorer::new(4)
            .explore(&space, &mut MemoryStore::new())
            .unwrap();
        assert_eq!(serial.records, parallel.records);
        assert_eq!(serial.kernel_names().len(), 6);
        assert_eq!(
            serial.kernel_records("fir").len(),
            3 * 2,
            "3 algorithms x 2 budgets"
        );
    }
}
