//! Fixed-header binary segment files: the persistent store format whose
//! re-hydration is a sequential scan, not a parse.
//!
//! A segment file holds [`PointRecord`]s in the [`crate::codec`] binary
//! encoding behind a fixed per-record header:
//!
//! ```text
//! file   := magic record*
//! magic  := "SRRASEG1"                 (8 bytes)
//! record := len:u32le key:u64le payload[len]
//! ```
//!
//! `len` is the payload byte count, `key` duplicates the record's FNV-1a
//! key so the startup scan can build the key index without decoding a
//! record it only needs to route, and `payload` is the record's
//! [`WireSerde`](crate::codec::WireSerde) encoding (whose own first field is
//! the key — the scan verifies the two agree, so a misaligned or corrupt
//! record cannot be silently indexed under the wrong key).
//!
//! Appends write one header+payload and flush, the same crash contract as
//! [`crate::JsonlStore`]: a killed process loses at most the record being
//! written.  On open, a torn or corrupt tail is truncated away and counted
//! ([`SegmentStore::torn_records`]) instead of failing the store — corruption
//! in an append-only, flush-per-record file is realistically tail-only, and
//! a record that *does* fail mid-file marks everything after it unreachable
//! anyway (the scan cannot resynchronize), so truncation at the first bad
//! header is the honest recovery.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::codec::{from_bytes, WireSerde};
use crate::store::{index_get, index_insert, JsonlError, JsonlStore, KeyIndex, PointRecord};
use crate::store::{ResultStore, StoreBase};

/// The 8-byte file magic opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"SRRASEG1";

/// Largest payload a segment record header may claim (64 MiB); larger is
/// corruption, not data (a typical record payload is ~300 bytes).
pub const MAX_SEGMENT_RECORD_LEN: usize = 64 << 20;

/// A persistent [`ResultStore`] over one binary segment file, with optional
/// read-side fallback to a legacy JSONL sibling.
///
/// `open` scans the segment file sequentially into an in-memory key index;
/// `put` appends one fixed-header record and flushes.  When a legacy `.jsonl`
/// file is supplied (see [`SegmentStore::open_with_legacy`]) its records are
/// folded into the index read-only — new appends always go to the segment
/// file, and a later `compact` (see `srra-serve`'s `ShardedStore`) rewrites
/// everything into pure segment form.
#[derive(Debug)]
pub struct SegmentStore {
    path: PathBuf,
    index: KeyIndex,
    count: usize,
    /// Raw records sitting in the segment file, duplicates included — what
    /// the opening scan saw plus every append since.
    scanned: usize,
    torn: usize,
    writer: BufWriter<File>,
    scratch: Vec<u8>,
}

impl SegmentStore {
    /// Opens (creating if needed) the segment store at `path`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonlError::Io`] if the file cannot be read or created and
    /// [`JsonlError::Parse`] if the file does not start with the segment
    /// magic (`line` is then 0 — the file is not a segment file at all; for
    /// record-level corruption see [`SegmentStore::torn_records`], which is
    /// recovery, not an error).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JsonlError> {
        Self::open_with_legacy(path, None::<&Path>)
    }

    /// Opens the segment store at `path`, additionally folding the records of
    /// a legacy JSONL file into the in-memory index (read-side fallback for
    /// pre-segment cache dirs).
    ///
    /// The legacy file is only read (with the same torn-tail repair as
    /// [`JsonlStore::open`]); it is never appended to and never deleted here
    /// — rewriting it into segment form is `compact`'s job.
    ///
    /// # Errors
    ///
    /// As [`SegmentStore::open`]; a corrupt legacy file surfaces its own
    /// [`JsonlError`].
    pub fn open_with_legacy(
        path: impl AsRef<Path>,
        legacy: Option<impl AsRef<Path>>,
    ) -> Result<Self, JsonlError> {
        let path = path.as_ref().to_path_buf();
        let mut index = KeyIndex::new();
        let mut count = 0;
        let mut scanned = 0;
        let mut torn = 0;

        if let Some(legacy) = legacy {
            let legacy = legacy.as_ref();
            if legacy.exists() {
                let store = JsonlStore::open(legacy)?;
                for record in store.records() {
                    count += usize::from(index_insert(&mut index, record));
                }
            }
        }

        if path.exists() {
            let data = std::fs::read(&path)?;
            if data.is_empty() {
                // An empty file (e.g. created by a crashed run before the
                // magic landed) is adopted: the magic is (re)written below.
            } else if data.len() < SEGMENT_MAGIC.len()
                || &data[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC
            {
                return Err(JsonlError::Parse {
                    line: 0,
                    message: format!("`{}` is not a segment file (bad magic)", path.display()),
                });
            }
            let mut offset = SEGMENT_MAGIC.len().min(data.len());
            loop {
                let rest = &data[offset..];
                if rest.is_empty() {
                    break;
                }
                let Some((record, consumed)) = scan_record(rest) else {
                    // Torn or corrupt tail: truncate it away so future
                    // appends extend a consistent file, and count the event.
                    OpenOptions::new()
                        .write(true)
                        .open(&path)?
                        .set_len(offset as u64)?;
                    torn += 1;
                    break;
                };
                count += usize::from(index_insert(&mut index, &record));
                scanned += 1;
                offset += consumed;
            }
        }

        let mut writer = BufWriter::new(OpenOptions::new().create(true).append(true).open(&path)?);
        if writer.get_ref().metadata()?.len() == 0 {
            writer.write_all(SEGMENT_MAGIC)?;
            writer.flush()?;
        }
        Ok(Self {
            path,
            index,
            count,
            scanned,
            torn,
            writer,
            scratch: Vec::with_capacity(512),
        })
    }

    /// Raw records in the segment file, duplicates included — what the
    /// opening scan saw plus every append since.  Compaction uses the gap
    /// between this and [`len`](StoreBase::len) to report dropped
    /// duplicates.
    pub fn segment_records(&self) -> usize {
        self.scanned
    }

    /// The segment file backing this store.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many torn/corrupt trailing records the opening scan truncated
    /// away (0 on a clean file; at most 1 per open in practice).
    pub fn torn_records(&self) -> usize {
        self.torn
    }

    /// Iterates over every held record (unspecified order).
    pub fn records(&self) -> impl Iterator<Item = &PointRecord> {
        self.index.values().flatten()
    }

    /// Writes `records` as a fresh segment file at `path` (truncating any
    /// existing file) and returns how many were written.  This is the
    /// rewrite primitive `compact` builds on: over fixed-header records,
    /// compaction is a copy, not a parse.
    ///
    /// # Errors
    ///
    /// Returns [`JsonlError::Io`] on any file error.
    pub fn write_records<'a>(
        path: impl AsRef<Path>,
        records: impl IntoIterator<Item = &'a PointRecord>,
    ) -> Result<usize, JsonlError> {
        let mut writer = BufWriter::new(File::create(path.as_ref())?);
        writer.write_all(SEGMENT_MAGIC)?;
        let mut scratch = Vec::with_capacity(512);
        let mut written = 0;
        for record in records {
            append_record(&mut writer, &mut scratch, record)?;
            written += 1;
        }
        writer.flush()?;
        Ok(written)
    }
}

/// Decodes the record at the head of `bytes`; `None` means torn/corrupt.
fn scan_record(bytes: &[u8]) -> Option<(PointRecord, usize)> {
    let header = bytes.get(..12)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    if len > MAX_SEGMENT_RECORD_LEN {
        return None;
    }
    let key = u64::from_le_bytes(header[4..12].try_into().ok()?);
    let payload = bytes.get(12..12 + len)?;
    let record: PointRecord = from_bytes(payload).ok()?;
    if record.key != key {
        return None;
    }
    Some((record, 12 + len))
}

/// Appends one `[len][key][payload]` record through `writer`, using
/// `scratch` for the payload encoding (no flush — callers own the flush
/// policy).
fn append_record(
    writer: &mut impl Write,
    scratch: &mut Vec<u8>,
    record: &PointRecord,
) -> Result<(), JsonlError> {
    scratch.clear();
    record
        .serialize_into(scratch)
        .map_err(|err| JsonlError::Parse {
            line: 0,
            message: format!("record does not encode: {err}"),
        })?;
    let len = u32::try_from(scratch.len()).map_err(|_| JsonlError::Parse {
        line: 0,
        message: format!(
            "record payload of {} bytes overflows the header",
            scratch.len()
        ),
    })?;
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&record.key.to_le_bytes())?;
    writer.write_all(scratch)?;
    Ok(())
}

impl StoreBase for SegmentStore {
    type Error = JsonlError;

    fn contains(&self, key: u64) -> Result<bool, JsonlError> {
        Ok(self.index.contains_key(&key))
    }

    fn len(&self) -> Result<usize, JsonlError> {
        Ok(self.count)
    }
}

impl ResultStore for SegmentStore {
    fn get(&self, key: u64, canonical: &str) -> Result<Option<PointRecord>, JsonlError> {
        Ok(index_get(&self.index, key, canonical))
    }

    fn put(&mut self, record: &PointRecord) -> Result<bool, JsonlError> {
        if index_get(&self.index, record.key, &record.canonical).is_some() {
            return Ok(false);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let outcome = append_record(&mut self.writer, &mut scratch, record);
        self.scratch = scratch;
        outcome?;
        self.writer.flush()?;
        index_insert(&mut self.index, record);
        self.count += 1;
        self.scanned += 1;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::to_bytes;

    fn sample_record(key: u64) -> PointRecord {
        PointRecord {
            key,
            canonical: format!("kernel=fir;algo=CPA-RA;budget={key};latency=2;device=XCV1000"),
            kernel: "fir".to_owned(),
            algorithm: "CPA-RA".to_owned(),
            version: "v3".to_owned(),
            budget: key,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: 32,
            total_cycles: 123_456,
            compute_cycles: 100_000,
            memory_cycles: 20_000,
            transfer_cycles: 3_456,
            clock_period_ns: 10.573,
            execution_time_us: 1_305.312_048,
            slices: 471,
            block_rams: 3,
            distribution: "a:30 b:1 \"c\":1".to_owned(),
        }
    }

    fn scratch_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("srra-segment-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("shard.seg")
    }

    #[test]
    fn segment_store_persists_across_reopen() {
        let path = scratch_path("reopen");
        let _ = std::fs::remove_file(&path);
        let first = sample_record(1);
        let second = sample_record(2);
        {
            let mut store = SegmentStore::open(&path).unwrap();
            assert!(store.is_empty().unwrap());
            assert!(store.put(&first).unwrap());
            assert!(store.put(&second).unwrap());
            assert!(!store.put(&second).unwrap(), "dedupe by canonical");
        }
        let store = SegmentStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 2);
        assert_eq!(store.torn_records(), 0);
        assert_eq!(store.get(1, &first.canonical).unwrap(), Some(first));
        assert_eq!(store.get(2, &second.canonical).unwrap(), Some(second));
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], SEGMENT_MAGIC);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted_not_a_panic() {
        let path = scratch_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SegmentStore::open(&path).unwrap();
            assert!(store.put(&sample_record(1)).unwrap());
            assert!(store.put(&sample_record(2)).unwrap());
        }
        // Simulate a torn write: append half of a third record.
        let third = sample_record(3);
        let payload = to_bytes(&third).unwrap();
        let mut tail = Vec::new();
        tail.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        tail.extend_from_slice(&third.key.to_le_bytes());
        tail.extend_from_slice(&payload[..payload.len() / 2]);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&tail).unwrap();
        }
        {
            let mut store = SegmentStore::open(&path).expect("opens despite torn tail");
            assert_eq!(store.len().unwrap(), 2);
            assert_eq!(store.torn_records(), 1);
            // The tail was truncated, so a fresh append lands cleanly.
            assert!(store.put(&third).unwrap());
        }
        let store = SegmentStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 3);
        assert_eq!(store.torn_records(), 0);
        assert!(std::fs::metadata(&path).unwrap().len() > clean_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_key_mismatch_is_treated_as_corruption() {
        let path = scratch_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = SegmentStore::open(&path).unwrap();
            assert!(store.put(&sample_record(1)).unwrap());
        }
        // Append a record whose header key disagrees with its payload.
        let bad = sample_record(9);
        let payload = to_bytes(&bad).unwrap();
        {
            use std::io::Write as _;
            let mut file = OpenOptions::new().append(true).open(&path).unwrap();
            file.write_all(&(payload.len() as u32).to_le_bytes())
                .unwrap();
            file.write_all(&777u64.to_le_bytes()).unwrap();
            file.write_all(&payload).unwrap();
        }
        let store = SegmentStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 1, "mismatched record dropped");
        assert_eq!(store.torn_records(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_segment_file_is_rejected_with_a_parse_error() {
        let path = scratch_path("badmagic");
        std::fs::write(&path, b"{\"key\":\"0x1\"}\n").unwrap();
        match SegmentStore::open(&path) {
            Err(JsonlError::Parse { line: 0, .. }) => {}
            other => panic!("expected bad-magic error, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_jsonl_records_are_visible_and_appends_go_binary() {
        let path = scratch_path("legacy");
        let legacy = path.with_extension("jsonl");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&legacy);
        let old = sample_record(1);
        std::fs::write(&legacy, format!("{}\n", old.to_json_line())).unwrap();
        {
            let mut store = SegmentStore::open_with_legacy(&path, Some(&legacy)).unwrap();
            assert_eq!(store.len().unwrap(), 1, "legacy record visible");
            assert_eq!(store.get(1, &old.canonical).unwrap(), Some(old.clone()));
            assert!(!store.put(&old).unwrap(), "legacy record dedupes appends");
            assert!(store.put(&sample_record(2)).unwrap());
        }
        // The legacy file was not rewritten; the new record went to the
        // segment file.
        assert_eq!(std::fs::read_to_string(&legacy).unwrap().lines().count(), 1);
        let store = SegmentStore::open_with_legacy(&path, Some(&legacy)).unwrap();
        assert_eq!(store.len().unwrap(), 2);
        // Without the legacy file only the binary append remains.
        let store = SegmentStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 1);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&legacy).unwrap();
    }

    #[test]
    fn write_records_builds_a_clean_segment_file() {
        let path = scratch_path("rewrite");
        let records = [sample_record(1), sample_record(2), sample_record(3)];
        let written = SegmentStore::write_records(&path, records.iter()).unwrap();
        assert_eq!(written, 3);
        let store = SegmentStore::open(&path).unwrap();
        assert_eq!(store.len().unwrap(), 3);
        assert_eq!(store.torn_records(), 0);
        for record in &records {
            assert_eq!(
                store.get(record.key, &record.canonical).unwrap().as_ref(),
                Some(record)
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
