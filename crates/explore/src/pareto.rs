//! Multi-objective Pareto-frontier extraction over evaluated design points.
//!
//! The three minimised objectives are the ones the paper trades against each
//! other: total execution cycles (performance), logic slices (area) and
//! registers used (the scarce resource the allocators ration).

use crate::store::PointRecord;

/// Returns `true` when `a` dominates `b`: no worse on every objective and
/// strictly better on at least one.
pub fn dominates(a: &PointRecord, b: &PointRecord) -> bool {
    let no_worse = a.total_cycles <= b.total_cycles
        && a.slices <= b.slices
        && a.registers_used <= b.registers_used;
    let strictly_better = a.total_cycles < b.total_cycles
        || a.slices < b.slices
        || a.registers_used < b.registers_used;
    no_worse && strictly_better
}

/// Extracts the Pareto frontier (the mutually non-dominated subset) of the
/// given records.
///
/// Infeasible records never enter the frontier.  Duplicate objective vectors
/// keep their first representative.  The result is sorted by ascending total
/// cycles, then slices, then registers, so renders are deterministic.
pub fn pareto_frontier<'a, I>(records: I) -> Vec<PointRecord>
where
    I: IntoIterator<Item = &'a PointRecord>,
{
    let candidates: Vec<&PointRecord> = records.into_iter().filter(|r| r.feasible).collect();
    let mut frontier: Vec<PointRecord> = Vec::new();
    for (index, &candidate) in candidates.iter().enumerate() {
        let dominated = candidates
            .iter()
            .any(|&other| !std::ptr::eq(other, candidate) && dominates(other, candidate));
        let duplicate = candidates[..index].iter().any(|&earlier| {
            earlier.total_cycles == candidate.total_cycles
                && earlier.slices == candidate.slices
                && earlier.registers_used == candidate.registers_used
        });
        if !dominated && !duplicate {
            frontier.push(candidate.clone());
        }
    }
    frontier.sort_by(|a, b| {
        (a.total_cycles, a.slices, a.registers_used, &a.canonical).cmp(&(
            b.total_cycles,
            b.slices,
            b.registers_used,
            &b.canonical,
        ))
    });
    frontier
}

/// The per-kernel winner of an exploration: the allocator reaching the fewest
/// total cycles (ties broken by fewer registers, then the canonical key).
#[derive(Debug, Clone, PartialEq)]
pub struct BestAllocator {
    /// Kernel name.
    pub kernel: String,
    /// Winning algorithm label.
    pub algorithm: String,
    /// The winning design point's budget.
    pub budget: u64,
    /// The winning design point's cycle count.
    pub total_cycles: u64,
    /// Whether the winning design fits on its evaluated device.
    pub fits: bool,
    /// Registers the winner spends.
    pub registers_used: u64,
    /// Cycle reduction versus the worst feasible point of the same kernel, in
    /// percent.
    pub reduction_vs_worst_pct: f64,
}

/// Summarises the best allocator per kernel, in first-appearance order of the
/// kernels.
pub fn best_allocators(records: &[PointRecord]) -> Vec<BestAllocator> {
    let mut kernels: Vec<&str> = Vec::new();
    for record in records {
        if record.feasible && !kernels.contains(&record.kernel.as_str()) {
            kernels.push(&record.kernel);
        }
    }
    kernels
        .into_iter()
        .filter_map(|kernel| {
            let feasible: Vec<&PointRecord> = records
                .iter()
                .filter(|r| r.feasible && r.kernel == kernel)
                .collect();
            let best = feasible
                .iter()
                .min_by_key(|r| (r.total_cycles, r.registers_used, &r.canonical))?;
            let worst_cycles = feasible
                .iter()
                .map(|r| r.total_cycles)
                .max()
                .unwrap_or(best.total_cycles);
            let reduction = if worst_cycles == 0 {
                0.0
            } else {
                100.0 * (worst_cycles as f64 - best.total_cycles as f64) / worst_cycles as f64
            };
            Some(BestAllocator {
                kernel: kernel.to_owned(),
                algorithm: best.algorithm.clone(),
                budget: best.budget,
                total_cycles: best.total_cycles,
                fits: best.fits,
                registers_used: best.registers_used,
                reduction_vs_worst_pct: reduction,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kernel: &str, algo: &str, cycles: u64, slices: u64, regs: u64) -> PointRecord {
        PointRecord {
            key: crate::space::fnv1a_64(format!("{kernel}/{algo}/{cycles}").as_bytes()),
            canonical: format!("kernel={kernel};algo={algo};c={cycles};s={slices};r={regs}"),
            kernel: kernel.to_owned(),
            algorithm: algo.to_owned(),
            version: "v?".to_owned(),
            budget: regs,
            ram_latency: 2,
            device: "XCV1000-BG560".to_owned(),
            feasible: true,
            fits: true,
            registers_used: regs,
            total_cycles: cycles,
            compute_cycles: cycles,
            memory_cycles: 0,
            transfer_cycles: 0,
            clock_period_ns: 10.0,
            execution_time_us: cycles as f64 / 100.0,
            slices,
            block_rams: 1,
            distribution: String::new(),
        }
    }

    #[test]
    fn domination_is_strict_somewhere() {
        let a = record("k", "A", 100, 50, 8);
        let b = record("k", "B", 100, 50, 8);
        let c = record("k", "C", 100, 60, 8);
        assert!(!dominates(&a, &b), "equal vectors do not dominate");
        assert!(dominates(&a, &c));
        assert!(!dominates(&c, &a));
    }

    #[test]
    fn frontier_drops_dominated_and_duplicate_points() {
        let points = vec![
            record("k", "A", 100, 50, 8),
            record("k", "B", 90, 60, 8), // trades cycles for slices: stays
            record("k", "C", 110, 55, 9), // dominated by A
            record("k", "D", 100, 50, 8), // duplicate of A
        ];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[0].algorithm, "B");
        assert_eq!(frontier[1].algorithm, "A");
    }

    #[test]
    fn infeasible_points_never_enter_the_frontier() {
        let mut bad = record("k", "X", 1, 1, 1);
        bad.feasible = false;
        let points = vec![bad, record("k", "A", 100, 50, 8)];
        let frontier = pareto_frontier(&points);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].algorithm, "A");
    }

    #[test]
    fn best_allocators_pick_the_cycle_minimum_per_kernel() {
        let points = vec![
            record("fir", "FR-RA", 200, 50, 8),
            record("fir", "CPA-RA", 120, 55, 8),
            record("mat", "CPA-RA", 400, 70, 16),
            record("mat", "PR-RA", 500, 60, 16),
        ];
        let best = best_allocators(&points);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].kernel, "fir");
        assert_eq!(best[0].algorithm, "CPA-RA");
        assert!((best[0].reduction_vs_worst_pct - 40.0).abs() < 1e-9);
        assert_eq!(best[1].kernel, "mat");
        assert_eq!(best[1].algorithm, "CPA-RA");
    }
}
