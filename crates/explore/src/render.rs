//! Text and CSV rendering of exploration results.

use std::fmt::Write as _;

use crate::engine::Exploration;
use crate::pareto::{best_allocators, pareto_frontier, BestAllocator};
use crate::store::PointRecord;

fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders one kernel's Pareto frontier as an aligned text table.
pub fn render_frontier(kernel: &str, frontier: &[PointRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Pareto frontier for {kernel} (minimising cycles, slices, registers):"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>7} {:<15} {:>10} {:>12} {:>8} {:>9} {:>10} {:>10} {:>5}",
        "algo",
        "budget",
        "latency",
        "device",
        "registers",
        "cycles",
        "slices",
        "blockRAMs",
        "clock(ns)",
        "time(us)",
        "fits"
    );
    for record in frontier {
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>7} {:<15} {:>10} {:>12} {:>8} {:>9} {:>10.2} {:>10.1} {:>5}",
            record.algorithm,
            record.budget,
            record.ram_latency,
            record.device,
            record.registers_used,
            record.total_cycles,
            record.slices,
            record.block_rams,
            record.clock_period_ns,
            record.execution_time_us,
            if record.fits { "yes" } else { "NO" }
        );
    }
    out
}

/// Renders every kernel's Pareto frontier followed by the best-allocator
/// summary — the default `srra explore` output.
pub fn render_exploration(run: &Exploration) -> String {
    let mut out = String::new();
    for kernel in run.kernel_names() {
        let frontier = pareto_frontier(run.kernel_records(kernel));
        out.push_str(&render_frontier(kernel, &frontier));
        out.push('\n');
    }
    out.push_str(&render_best_allocators(&best_allocators(&run.records)));
    out
}

/// Renders the per-kernel best-allocator summary.
pub fn render_best_allocators(best: &[BestAllocator]) -> String {
    let mut out = String::from("best allocator per kernel:\n");
    let _ = writeln!(
        out,
        "{:<8} {:<8} {:>6} {:>12} {:>10} {:>14} {:>5}",
        "kernel", "algo", "budget", "cycles", "registers", "vs worst", "fits"
    );
    for entry in best {
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:>6} {:>12} {:>10} {:>13.1}% {:>5}",
            entry.kernel,
            entry.algorithm,
            entry.budget,
            entry.total_cycles,
            entry.registers_used,
            entry.reduction_vs_worst_pct,
            if entry.fits { "yes" } else { "NO" }
        );
    }
    out
}

/// Renders every record (not just the frontier) as CSV, one line per design
/// point, in point order.
pub fn exploration_csv(run: &Exploration) -> String {
    let mut out = String::from(
        "kernel,algorithm,version,budget,ram_latency,device,feasible,fits,registers,\
         total_cycles,compute_cycles,memory_cycles,transfer_cycles,clock_period_ns,\
         execution_time_us,slices,block_rams,distribution\n",
    );
    for r in &run.records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{},{},{}",
            escape_csv(&r.kernel),
            escape_csv(&r.algorithm),
            escape_csv(&r.version),
            r.budget,
            r.ram_latency,
            escape_csv(&r.device),
            r.feasible,
            r.fits,
            r.registers_used,
            r.total_cycles,
            r.compute_cycles,
            r.memory_cycles,
            r.transfer_cycles,
            r.clock_period_ns,
            r.execution_time_us,
            r.slices,
            r.block_rams,
            escape_csv(&r.distribution)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Explorer;
    use crate::space::DesignSpace;
    use crate::store::MemoryStore;
    use srra_ir::examples::paper_example;

    fn run() -> Exploration {
        let space = DesignSpace::new()
            .with_kernel(paper_example())
            .with_budgets(&[16, 64]);
        Explorer::new(1)
            .explore(&space, &mut MemoryStore::new())
            .unwrap()
    }

    #[test]
    fn text_render_covers_frontier_and_summary() {
        let text = render_exploration(&run());
        assert!(text.contains("Pareto frontier for paper_example"));
        assert!(text.contains("best allocator per kernel:"));
        assert!(text.contains("CPA-RA"));
    }

    #[test]
    fn csv_has_one_line_per_record() {
        let run = run();
        let csv = exploration_csv(&run);
        assert_eq!(csv.lines().count(), run.records.len() + 1);
        let header_fields = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), header_fields, "line: {line}");
        }
    }

    #[test]
    fn renders_are_deterministic() {
        assert_eq!(render_exploration(&run()), render_exploration(&run()));
        assert_eq!(exploration_csv(&run()), exploration_csv(&run()));
    }
}
