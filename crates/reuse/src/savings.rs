//! Memory-access accounting for full scalar replacement of one reference.

use serde::{Deserialize, Serialize};
use srra_ir::{LoopNest, RefInfo};

use crate::registers::{footprint, reuse_loop};

/// Memory-access counts for a reference over the whole execution of the loop nest,
/// without replacement and with full scalar replacement.
///
/// These counts are the "value" side of the paper's knapsack formulation: the value of
/// promoting a reference is the number of memory accesses the promotion eliminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Accesses performed with no scalar replacement: one per occurrence per innermost
    /// iteration.
    pub total: u64,
    /// Accesses that remain after a full scalar replacement: each distinct element is
    /// transferred between RAM and the register file exactly once per occurrence kind
    /// (a fetch for reads, a final store for writes).
    pub essential: u64,
}

impl AccessCounts {
    /// Computes the access counts for a reference group in the given nest.
    ///
    /// Read occurrences that follow a write of the same reference group earlier in the
    /// loop body are *forwarded*: the consumer receives the freshly produced value
    /// directly from the datapath (the `d[i][k]` node of the paper's Figure 2(a) sits
    /// between the two multiplies), so they never touch memory and are excluded from
    /// both counts.
    pub fn of(reference: &RefInfo, nest: &LoopNest) -> Self {
        let total_iterations = nest.total_iterations();
        let first_write = reference
            .occurrences()
            .iter()
            .filter(|o| o.access.is_write())
            .map(|o| o.statement)
            .min();
        let memory_occurrences = reference
            .occurrences()
            .iter()
            .filter(|o| {
                !(o.access.is_read() && first_write.map(|w| w < o.statement).unwrap_or(false))
            })
            .count() as u64;
        let total = memory_occurrences.saturating_mul(total_iterations);

        let essential = match reuse_loop(reference, nest) {
            None => total,
            Some(reuse) => {
                // With the working set held in registers across the reuse loop, every
                // distinct element within one traversal of that loop is transferred
                // once per direction (an initial load if the group performs a read that
                // is not forwarded, and a final store if it performs a write), and the
                // whole traversal repeats once per iteration of the loops outside the
                // reuse loop.
                let outside: u64 = nest
                    .trip_counts()
                    .iter()
                    .take(reuse.index())
                    .fold(1u64, |acc, &t| acc.saturating_mul(t));
                let distinct = footprint(reference, nest, reuse.index());
                let has_unforwarded_read = reference.occurrences().iter().any(|o| {
                    o.access.is_read() && !first_write.map(|w| w < o.statement).unwrap_or(false)
                });
                let directions =
                    (u64::from(has_unforwarded_read) + u64::from(reference.has_write())).max(1);
                outside
                    .saturating_mul(distinct)
                    .saturating_mul(directions)
                    .min(total)
            }
        };

        Self { total, essential }
    }

    /// Number of accesses a full replacement eliminates.
    pub fn saved(&self) -> u64 {
        self.total.saturating_sub(self.essential)
    }

    /// Fraction of the total accesses that a full replacement eliminates.
    pub fn saved_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.saved() as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::paper_example;

    fn counts(name: &str) -> AccessCounts {
        let kernel = paper_example();
        let table = kernel.reference_table();
        AccessCounts::of(table.find_by_name(name).unwrap(), kernel.nest())
    }

    #[test]
    fn totals_count_every_occurrence_every_iteration() {
        // 2 * 20 * 30 = 1200 innermost iterations.
        assert_eq!(counts("a").total, 1200);
        assert_eq!(counts("b").total, 1200);
        assert_eq!(counts("c").total, 1200);
        // d occurs twice per iteration, but the read in statement 1 is forwarded from
        // the write in statement 0 and never touches memory.
        assert_eq!(counts("d").total, 1200);
        assert_eq!(counts("e").total, 1200);
    }

    #[test]
    fn essential_accesses_follow_distinct_elements() {
        // a[k]: 30 distinct elements, read once each.
        assert_eq!(counts("a").essential, 30);
        // b[k][j]: 600 distinct elements.
        assert_eq!(counts("b").essential, 600);
        // c[j]: 20 distinct elements.
        assert_eq!(counts("c").essential, 20);
        // d[i][k]: 60 distinct elements, written back once each (reads come from the
        // producing statement).
        assert_eq!(counts("d").essential, 60);
        // e[i][j][k]: no reuse, nothing saved.
        assert_eq!(counts("e").essential, 1200);
    }

    #[test]
    fn saved_and_fraction_are_consistent() {
        let a = counts("a");
        assert_eq!(a.saved(), 1170);
        assert!((a.saved_fraction() - 1170.0 / 1200.0).abs() < 1e-12);
        let e = counts("e");
        assert_eq!(e.saved(), 0);
        assert_eq!(e.saved_fraction(), 0.0);
    }

    #[test]
    fn essential_never_exceeds_total() {
        for name in ["a", "b", "c", "d", "e"] {
            let c = counts(name);
            assert!(c.essential <= c.total, "reference {name}");
        }
    }
}
