//! Whole-kernel reuse analysis: one [`ReuseSummary`] per reference group.

use serde::{Deserialize, Serialize};
use srra_ir::{ArrayId, Kernel, LoopId, RefId, ReferenceTable};

use crate::registers::{invariant_loops, registers_for_full_replacement, reuse_loop};
use crate::savings::AccessCounts;

/// The analysis results for a single reference group.
///
/// This bundles everything the allocation algorithms need to know about one array
/// reference: its register requirement (`R`), its memory-access economics and its
/// benefit/cost ratio `γ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseSummary {
    ref_id: RefId,
    array: ArrayId,
    array_name: String,
    rendered: String,
    invariant_loops: Vec<LoopId>,
    reuse_loop: Option<LoopId>,
    registers_full: u64,
    access_counts: AccessCounts,
    elem_bits: u32,
}

impl ReuseSummary {
    /// Identifier of the reference group this summary describes.
    pub fn ref_id(&self) -> RefId {
        self.ref_id
    }

    /// The referenced array.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Name of the referenced array.
    pub fn array_name(&self) -> &str {
        &self.array_name
    }

    /// The reference rendered as `name[subscripts]` with the kernel's loop names.
    pub fn rendered(&self) -> &str {
        &self.rendered
    }

    /// Loops carrying temporal reuse for the reference, outermost first.
    pub fn invariant_loops(&self) -> &[LoopId] {
        &self.invariant_loops
    }

    /// The outermost reuse-carrying loop, if any.
    pub fn reuse_loop(&self) -> Option<LoopId> {
        self.reuse_loop
    }

    /// Registers needed for a full scalar replacement (`R_i` in the paper, at least 1).
    pub fn registers_full(&self) -> u64 {
        self.registers_full
    }

    /// Memory-access counts without replacement and with full replacement.
    pub fn access_counts(&self) -> AccessCounts {
        self.access_counts
    }

    /// Accesses eliminated by a full replacement.
    pub fn saved_full(&self) -> u64 {
        self.access_counts.saved()
    }

    /// The benefit/cost ratio `γ = saved accesses / required registers` used by the
    /// greedy allocators.
    pub fn benefit_cost(&self) -> f64 {
        self.saved_full() as f64 / self.registers_full.max(1) as f64
    }

    /// Returns `true` when the reference carries any temporal reuse at all.
    pub fn has_reuse(&self) -> bool {
        self.reuse_loop.is_some() && self.saved_full() > 0
    }

    /// Width in bits of one element of the referenced array (used by the area model).
    pub fn elem_bits(&self) -> u32 {
        self.elem_bits
    }
}

/// Reuse analysis of a whole kernel: one [`ReuseSummary`] per reference group, in
/// [`ReferenceTable`] order.
///
/// # Example
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::ReuseAnalysis;
///
/// let kernel = paper_example();
/// let analysis = ReuseAnalysis::of(&kernel);
/// assert_eq!(analysis.len(), 5);
/// assert_eq!(analysis.total_registers_full(), 30 + 600 + 20 + 30 + 1);
/// let order: Vec<&str> = analysis
///     .sorted_by_benefit_cost()
///     .iter()
///     .map(|s| s.array_name())
///     .collect();
/// // c saves the most accesses per register; e (no reuse) comes last.
/// assert_eq!(order.first().copied(), Some("c"));
/// assert_eq!(order.last().copied(), Some("e"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReuseAnalysis {
    kernel_name: String,
    summaries: Vec<ReuseSummary>,
}

/// Process-wide count of whole-kernel reuse analyses, see [`analysis_runs`].
static ANALYSIS_RUNS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The number of whole-kernel reuse analyses performed by this process so far.
///
/// Instrumentation for the memoization regression tests: callers that share a
/// memoized analysis context can assert that a sweep over N design points bumps
/// this counter exactly once per kernel.  The counter is monotonic, so tests
/// must compare deltas, not absolute values.
#[doc(hidden)]
pub fn analysis_runs() -> usize {
    ANALYSIS_RUNS.load(std::sync::atomic::Ordering::Relaxed)
}

impl ReuseAnalysis {
    /// Analyses every reference group of the kernel.
    pub fn of(kernel: &Kernel) -> Self {
        ANALYSIS_RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Self::from_table(kernel, &kernel.reference_table())
    }

    /// Analyses the reference groups of a pre-computed table (avoids rebuilding it when
    /// the caller already has one).
    pub fn from_table(kernel: &Kernel, table: &ReferenceTable) -> Self {
        let nest = kernel.nest();
        let loop_names = nest.loop_names();
        let summaries = table
            .iter()
            .map(|info| {
                let elem_bits = kernel
                    .array(info.array())
                    .map(|a| a.elem_bits())
                    .unwrap_or(16);
                ReuseSummary {
                    ref_id: info.id(),
                    array: info.array(),
                    array_name: info.array_name().to_owned(),
                    rendered: info.render(&loop_names),
                    invariant_loops: invariant_loops(info, nest),
                    reuse_loop: reuse_loop(info, nest),
                    registers_full: registers_for_full_replacement(info, nest),
                    access_counts: AccessCounts::of(info, nest),
                    elem_bits,
                }
            })
            .collect();
        Self {
            kernel_name: kernel.name().to_owned(),
            summaries,
        }
    }

    /// Name of the analysed kernel.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Number of reference groups analysed.
    pub fn len(&self) -> usize {
        self.summaries.len()
    }

    /// Returns `true` when the kernel has no array references.
    pub fn is_empty(&self) -> bool {
        self.summaries.is_empty()
    }

    /// The summary for a reference group.
    pub fn get(&self, id: RefId) -> Option<&ReuseSummary> {
        self.summaries.get(id.index())
    }

    /// The summary of the first reference group of the array with the given name.
    pub fn by_name(&self, name: &str) -> Option<&ReuseSummary> {
        self.summaries.iter().find(|s| s.array_name() == name)
    }

    /// Iterates over the summaries in reference-table order.
    pub fn iter(&self) -> impl Iterator<Item = &ReuseSummary> {
        self.summaries.iter()
    }

    /// Summaries sorted by descending benefit/cost ratio (the FR-RA / PR-RA visit
    /// order).  Ties are broken by ascending register requirement, then by reference
    /// id, so the order is deterministic.
    pub fn sorted_by_benefit_cost(&self) -> Vec<&ReuseSummary> {
        let mut sorted: Vec<&ReuseSummary> = self.summaries.iter().collect();
        sorted.sort_by(|a, b| {
            b.benefit_cost()
                .partial_cmp(&a.benefit_cost())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.registers_full().cmp(&b.registers_full()))
                .then(a.ref_id().cmp(&b.ref_id()))
        });
        sorted
    }

    /// Total registers required to fully replace every reference.
    pub fn total_registers_full(&self) -> u64 {
        self.summaries
            .iter()
            .map(ReuseSummary::registers_full)
            .sum()
    }

    /// Total memory accesses without any replacement.
    pub fn total_accesses(&self) -> u64 {
        self.summaries.iter().map(|s| s.access_counts().total).sum()
    }

    /// Total memory accesses eliminated when every reference is fully replaced.
    pub fn total_saved_full(&self) -> u64 {
        self.summaries.iter().map(ReuseSummary::saved_full).sum()
    }
}

impl<'a> IntoIterator for &'a ReuseAnalysis {
    type Item = &'a ReuseSummary;
    type IntoIter = std::slice::Iter<'a, ReuseSummary>;

    fn into_iter(self) -> Self::IntoIter {
        self.summaries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::{dot_product, paper_example};

    #[test]
    fn analysis_covers_every_reference_group() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.len(), kernel.reference_table().len());
        assert_eq!(analysis.kernel_name(), "paper_example");
        assert!(!analysis.is_empty());
        for summary in &analysis {
            assert!(analysis.get(summary.ref_id()).is_some());
            assert!(summary.registers_full() >= 1);
        }
    }

    #[test]
    fn benefit_cost_ordering_matches_the_fr_ra_visit_order() {
        // With d's forwarded read excluded, the greedy order is c, a, d, b, e, which is
        // the order that reproduces the paper's FR-RA allocation (a and c fully
        // replaced, d left at one register).
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let order: Vec<&str> = analysis
            .sorted_by_benefit_cost()
            .iter()
            .map(|s| s.array_name())
            .collect();
        assert_eq!(order, vec!["c", "a", "d", "b", "e"]);
    }

    #[test]
    fn benefit_cost_values() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let gamma = |name: &str| analysis.by_name(name).unwrap().benefit_cost();
        // a: (1200 - 30) / 30 = 39, c: (1200 - 20) / 20 = 59,
        // b: (1200 - 600) / 600 = 1, d: (1200 - 60) / 30 = 38, e: 0.
        assert!((gamma("a") - 39.0).abs() < 1e-9);
        assert!((gamma("c") - 59.0).abs() < 1e-9);
        assert!((gamma("b") - 1.0).abs() < 1e-9);
        assert!((gamma("d") - 38.0).abs() < 1e-9);
        assert_eq!(gamma("e"), 0.0);
    }

    #[test]
    fn totals_aggregate_over_references() {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        assert_eq!(analysis.total_registers_full(), 681);
        assert_eq!(analysis.total_accesses(), 1200 * 5);
        assert_eq!(
            analysis.total_saved_full(),
            analysis.iter().map(|s| s.saved_full()).sum::<u64>()
        );
    }

    #[test]
    fn accumulator_reference_has_reuse() {
        let kernel = dot_product(64);
        let analysis = ReuseAnalysis::of(&kernel);
        let s = analysis.by_name("s").unwrap();
        assert!(s.has_reuse());
        assert_eq!(s.registers_full(), 1);
        // x and y are streamed: no reuse.
        assert!(!analysis.by_name("x").unwrap().has_reuse());
    }

    #[test]
    fn from_table_matches_of() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        assert_eq!(
            ReuseAnalysis::of(&kernel),
            ReuseAnalysis::from_table(&kernel, &table)
        );
    }
}
