//! Partial scalar replacement model: what happens when a reference receives fewer
//! registers than a full replacement requires.
//!
//! The paper's PR-RA variant assigns the registers left over by FR-RA to the next
//! reference in the benefit/cost order, exploiting *partial* data reuse: with `β` of the
//! required `R` registers, a proportional share `β / R` of the eliminable accesses is
//! eliminated.  The worked example in the paper uses exactly this model ("12 out of the
//! 30 iterations of k have only 1 memory access" when `β_d = 12` of `R_d = 30`).

use crate::analysis::ReuseSummary;

/// Fraction of the reference's reuse that `beta` registers can capture, in `[0, 1]`.
pub fn replacement_fraction(summary: &ReuseSummary, beta: u64) -> f64 {
    if summary.registers_full() == 0 {
        return 0.0;
    }
    (beta as f64 / summary.registers_full() as f64).clamp(0.0, 1.0)
}

/// Number of memory accesses eliminated over the whole loop execution when the
/// reference is assigned `beta` registers.
///
/// The count is zero when `beta == 0`, grows linearly (rounded down) with `beta`, and
/// saturates at [`ReuseSummary::saved_full`] once `beta` reaches the full requirement.
pub fn eliminated_accesses(summary: &ReuseSummary, beta: u64) -> u64 {
    if beta == 0 {
        return 0;
    }
    if beta >= summary.registers_full() {
        return summary.saved_full();
    }
    let saved = summary.saved_full() as u128 * beta as u128 / summary.registers_full() as u128;
    saved as u64
}

/// Number of memory accesses that remain over the whole loop execution when the
/// reference is assigned `beta` registers.
pub fn remaining_accesses(summary: &ReuseSummary, beta: u64) -> u64 {
    summary
        .access_counts()
        .total
        .saturating_sub(eliminated_accesses(summary, beta))
}

#[cfg(test)]
mod tests {
    use crate::analysis::ReuseAnalysis;
    use srra_ir::examples::paper_example;

    use super::*;

    fn summary(name: &str) -> ReuseSummary {
        let kernel = paper_example();
        ReuseAnalysis::of(&kernel).by_name(name).unwrap().clone()
    }

    #[test]
    fn zero_registers_eliminate_nothing() {
        let d = summary("d");
        assert_eq!(eliminated_accesses(&d, 0), 0);
        assert_eq!(remaining_accesses(&d, 0), d.access_counts().total);
    }

    #[test]
    fn full_budget_reaches_saved_full() {
        let a = summary("a");
        assert_eq!(eliminated_accesses(&a, a.registers_full()), a.saved_full());
        assert_eq!(
            eliminated_accesses(&a, a.registers_full() * 4),
            a.saved_full()
        );
        assert_eq!(
            remaining_accesses(&a, a.registers_full()),
            a.access_counts().essential
        );
    }

    #[test]
    fn partial_budget_is_proportional() {
        // d[i][k]: 30 registers for full reuse.  With 12 of them, the paper states that
        // 12 of every 30 k-iterations hit registers.
        let d = summary("d");
        let full = eliminated_accesses(&d, 30);
        let partial = eliminated_accesses(&d, 12);
        assert_eq!(partial, full * 12 / 30);
        assert!(partial < full);
        assert!((replacement_fraction(&d, 12) - 0.4).abs() < 1e-12);
        assert_eq!(replacement_fraction(&d, 60), 1.0);
    }

    #[test]
    fn monotone_in_beta() {
        let b = summary("b");
        let mut last = 0;
        for beta in 0..=b.registers_full() {
            let e = eliminated_accesses(&b, beta);
            assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn no_reuse_reference_never_saves() {
        let e = summary("e");
        for beta in [0, 1, 5, 100] {
            assert_eq!(eliminated_accesses(&e, beta), 0);
        }
    }
}
