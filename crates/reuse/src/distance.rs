//! Dependence / reuse distances between references of the same array.
//!
//! The paper's reuse analysis "relies on the concept of dependence distance": the
//! compiler inspects the affine index functions and determines at which loop iterations
//! the same data element is accessed again.  Two flavours matter here:
//!
//! * **self reuse** — a single reference touches the same element again after one
//!   iteration of an invariant loop (handled in [`crate::registers`]), and
//! * **group reuse** — two distinct references of the same array (for example the
//!   shifted window references `in[i]`, `in[i+1]`, `in[i+2]` of a stencil or FIR
//!   kernel) touch the same element a fixed number of iterations apart.
//!
//! Group reuse is computed for *uniformly generated* references: references whose
//! subscripts have identical linear parts and differ only by constants.  This is the
//! classical Callahan–Carr–Kennedy setting and covers all six evaluation kernels.

use serde::{Deserialize, Serialize};
use srra_ir::{Kernel, LoopId, RefId, RefInfo};

/// A constant iteration-space distance between two references of the same array.
///
/// `distance[d]` is the number of iterations of the loop at depth `d` separating the
/// two accesses of the same element; the source reference accesses the element first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DependenceDistance {
    distance: Vec<i64>,
}

impl DependenceDistance {
    /// Creates a distance vector (one entry per loop, outermost first).
    pub fn new(distance: Vec<i64>) -> Self {
        Self { distance }
    }

    /// The per-loop distances, outermost first.
    pub fn components(&self) -> &[i64] {
        &self.distance
    }

    /// Returns `true` when every component is zero: the two references touch the same
    /// element in the same iteration.
    pub fn is_loop_independent(&self) -> bool {
        self.distance.iter().all(|&d| d == 0)
    }

    /// Returns `true` when the distance is lexicographically non-negative, i.e. the
    /// reuse is realisable by executing the loop in its written order.
    pub fn is_lexicographically_non_negative(&self) -> bool {
        for &d in &self.distance {
            if d > 0 {
                return true;
            }
            if d < 0 {
                return false;
            }
        }
        true
    }

    /// The outermost loop with a non-zero component, i.e. the loop that carries the
    /// reuse.  `None` for loop-independent reuse.
    pub fn carrying_loop(&self) -> Option<LoopId> {
        self.distance.iter().position(|&d| d != 0).map(LoopId::new)
    }
}

/// Computes the dependence distance between two uniformly generated references.
///
/// Returns `None` when the references target different arrays, have different ranks,
/// differ in their linear parts (not uniformly generated), or when the constant
/// difference cannot be produced by an integer iteration distance.
///
/// Each subscript dimension must be driven by at most one loop for the distance to be
/// uniquely determined; subscripts mixing several loops in one dimension (e.g. `i + j`)
/// are resolved through the innermost participating loop, which is the convention that
/// matches sliding-window kernels such as FIR (`x[i + j]`).
pub fn dependence_distance(
    depth: usize,
    from: &RefInfo,
    to: &RefInfo,
) -> Option<DependenceDistance> {
    if from.array() != to.array() || from.subscripts().len() != to.subscripts().len() {
        return None;
    }
    let mut distance = vec![0i64; depth];
    let mut constrained = vec![false; depth];
    for (s_from, s_to) in from.subscripts().iter().zip(to.subscripts()) {
        // Uniformly generated: identical linear parts.
        let loops_from = s_from.used_loops();
        let loops_to = s_to.used_loops();
        if loops_from != loops_to {
            return None;
        }
        for l in &loops_from {
            if s_from.coefficient(*l) != s_to.coefficient(*l) {
                return None;
            }
        }
        let delta = s_from.constant_term() - s_to.constant_term();
        if loops_from.is_empty() {
            if delta != 0 {
                return None;
            }
            continue;
        }
        // Resolve the constant difference through the innermost participating loop.
        let carrier = *loops_from.last()?;
        let coeff = s_from.coefficient(carrier);
        if coeff == 0 || delta % coeff != 0 {
            if delta != 0 {
                return None;
            }
            continue;
        }
        let component = delta / coeff;
        let slot = carrier.index();
        if slot >= depth {
            return None;
        }
        if constrained[slot] && distance[slot] != component {
            return None;
        }
        distance[slot] = component;
        constrained[slot] = true;
    }
    Some(DependenceDistance::new(distance))
}

/// A pair of reference groups of the same array that exhibit group (inter-reference)
/// temporal reuse.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupReusePair {
    /// The reference that accesses the shared element first (the "generator").
    pub source: RefId,
    /// The reference that re-accesses the element `distance` iterations later.
    pub sink: RefId,
    /// The separating iteration distance.
    pub distance: DependenceDistance,
}

/// Enumerates all group-reuse pairs of a kernel.
///
/// A pair is reported when the dependence distance between the two references exists
/// and is lexicographically non-negative (so that the source access really happens
/// first).  Loop-independent pairs (distance zero) are reported once, with the lower
/// [`RefId`] as the source.
pub fn group_reuse_pairs(kernel: &Kernel) -> Vec<GroupReusePair> {
    let table = kernel.reference_table();
    let depth = kernel.nest().depth();
    let mut pairs = Vec::new();
    for from in table.iter() {
        for to in table.iter() {
            if from.id() == to.id() || from.array() != to.array() {
                continue;
            }
            if let Some(distance) = dependence_distance(depth, from, to) {
                let keep = if distance.is_loop_independent() {
                    from.id() < to.id()
                } else {
                    distance.is_lexicographically_non_negative()
                };
                if keep {
                    pairs.push(GroupReusePair {
                        source: from.id(),
                        sink: to.id(),
                        distance,
                    });
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::{paper_example, stencil3};
    use srra_ir::KernelBuilder;

    #[test]
    fn stencil_references_have_unit_distances() {
        let kernel = stencil3(64);
        let pairs = group_reuse_pairs(&kernel);
        // in[i] / in[i+1] / in[i+2] give three forward pairs:
        // in[i+1] -> in[i] distance 1, in[i+2] -> in[i+1] distance 1, in[i+2] -> in[i] distance 2.
        let distances: Vec<i64> = pairs.iter().map(|p| p.distance.components()[0]).collect();
        assert_eq!(pairs.len(), 3);
        assert!(distances.contains(&1));
        assert!(distances.contains(&2));
        for p in &pairs {
            assert!(p.distance.is_lexicographically_non_negative());
            assert_eq!(p.distance.carrying_loop(), Some(LoopId::new(0)));
        }
    }

    #[test]
    fn paper_example_has_no_group_reuse() {
        // Each array is referenced through a single subscript pattern.
        assert!(group_reuse_pairs(&paper_example()).is_empty());
    }

    #[test]
    fn distance_requires_uniform_generation() {
        // a[i] and a[2*i] are not uniformly generated.
        let b = KernelBuilder::new("nonuniform");
        let i = b.add_loop("i", 8);
        let a = b.add_array("a", &[16], 16);
        let t = b.add_array("t", &[16], 16);
        let sum = b.add(b.read(a, &[b.idx(i)]), b.read(a, &[b.scaled_idx(i, 2, 0)]));
        b.store(t, &[b.idx(i)], sum);
        let kernel = b.build().unwrap();
        let table = kernel.reference_table();
        let refs: Vec<_> = table.by_array(srra_ir::ArrayId::new(0));
        assert_eq!(refs.len(), 2);
        assert_eq!(
            dependence_distance(kernel.nest().depth(), refs[0], refs[1]),
            None
        );
    }

    #[test]
    fn loop_independent_distance_is_detected() {
        let d = DependenceDistance::new(vec![0, 0]);
        assert!(d.is_loop_independent());
        assert!(d.is_lexicographically_non_negative());
        assert_eq!(d.carrying_loop(), None);
        let neg = DependenceDistance::new(vec![0, -1]);
        assert!(!neg.is_lexicographically_non_negative());
        assert_eq!(neg.carrying_loop(), Some(LoopId::new(1)));
    }

    #[test]
    fn different_arrays_never_have_a_distance() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let a = table.find_by_name("a").unwrap();
        let c = table.find_by_name("c").unwrap();
        assert_eq!(dependence_distance(3, a, c), None);
    }

    #[test]
    fn sliding_window_distance_through_innermost_loop() {
        // FIR-style access x[i + j] vs x[i + j + 1]: distance 1 carried by j.
        let b = KernelBuilder::new("fir_like");
        let i = b.add_loop("i", 8);
        let j = b.add_loop("j", 4);
        let x = b.add_array("x", &[16], 16);
        let y = b.add_array("y", &[8], 16);
        let sum = b.add(
            b.read(x, &[b.idx_sum(i, j)]),
            b.read(x, &[b.idx_sum(i, j).with_constant(1)]),
        );
        b.store(y, &[b.idx(i)], sum);
        let kernel = b.build().unwrap();
        let table = kernel.reference_table();
        let refs = table.by_array(srra_ir::ArrayId::new(0));
        let d = dependence_distance(2, refs[1], refs[0]).unwrap();
        assert_eq!(d.components(), &[0, 1]);
        assert_eq!(d.carrying_loop(), Some(LoopId::new(1)));
    }
}
