//! Data-reuse analysis and register-requirement model for scalar replacement.
//!
//! This crate implements the compiler analysis the DATE'05 paper relies on (its
//! section 2, "Data Reuse & Scalar Replacement"): given a perfectly nested loop and an
//! array reference with affine subscripts, determine
//!
//! * which loops carry **temporal reuse** for the reference (the loops whose index does
//!   not appear in any subscript),
//! * how many registers a **full scalar replacement** of the reference requires
//!   ([`registers_for_full_replacement`]),
//! * how many memory accesses the replacement eliminates ([`AccessCounts`]), and
//! * the **benefit/cost ratio** `γ = saved accesses / required registers` that drives
//!   the FR-RA and PR-RA greedy allocators of `srra-core`.
//!
//! The numbers for the paper's Figure 1 example come out exactly as quoted in the text:
//! `a[k]` needs 30 registers, `b[k][j]` 600, `c[j]` 20, `d[i][k]` 30 and `e[i][j][k]` 1.
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_reuse::ReuseAnalysis;
//!
//! let kernel = paper_example();
//! let analysis = ReuseAnalysis::of(&kernel);
//! let a = analysis.by_name("a").unwrap();
//! assert_eq!(a.registers_full(), 30);
//! let b = analysis.by_name("b").unwrap();
//! assert_eq!(b.registers_full(), 600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod distance;
mod partial;
mod registers;
mod savings;

#[doc(hidden)]
pub use analysis::analysis_runs;
pub use analysis::{ReuseAnalysis, ReuseSummary};
pub use distance::{dependence_distance, group_reuse_pairs, DependenceDistance, GroupReusePair};
pub use partial::{eliminated_accesses, remaining_accesses, replacement_fraction};
pub use registers::{
    carries_reuse, footprint, invariant_loops, registers_for_full_replacement, reuse_loop,
};
pub use savings::AccessCounts;
