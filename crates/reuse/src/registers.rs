//! Register-requirement model for full scalar replacement of a single reference.
//!
//! The model follows the analytical framework the paper builds on (Callahan–Carr–
//! Kennedy reuse analysis and the So & Hall register-requirement computation, the
//! paper's references [4] and [11]).  For an affine reference inside a perfect nest we
//! compute, per loop level `ℓ`, the **footprint**: the number of distinct elements the
//! reference touches while the loops at depth `ℓ` and deeper run through their full
//! ranges and the outer loops stay fixed.  Loop `ℓ` *carries temporal reuse* when its
//! iterations overlap, i.e. when `footprint(ℓ) < trip(ℓ) × footprint(ℓ+1)` — this
//! covers both loop-invariant references (`c[j]` with respect to `i`) and sliding
//! windows (`x[i+j]` with respect to `i`).
//!
//! Exploiting the reuse carried at the outermost such loop requires keeping one
//! register per element of the *inner* footprint, which is exactly the working set that
//! must stay live across one iteration of that loop.

use srra_ir::{LoopId, LoopNest, RefInfo};

/// Returns the loops whose index does **not** appear in any subscript of the reference,
/// outermost first.
///
/// These loops carry *loop-invariant* temporal reuse: for every one of their iterations
/// the reference touches exactly the same set of elements.  In the paper's Figure 1
/// example, `b[k][j]` is invariant with respect to the `i` loop only, while `c[j]` is
/// invariant with respect to both `i` and `k`.
pub fn invariant_loops(reference: &RefInfo, nest: &LoopNest) -> Vec<LoopId> {
    nest.loop_ids()
        .filter(|l| {
            !reference
                .subscripts()
                .iter()
                .any(|subscript| subscript.uses_loop(*l))
        })
        .collect()
}

/// Number of distinct elements the reference touches while the loops at depth
/// `from_depth` and deeper run over their full ranges (outer loops fixed).
///
/// Computed as the product of the per-dimension subscript extents, which is exact for
/// the dense affine references of the evaluation kernels and a safe over-approximation
/// for strided references.
pub fn footprint(reference: &RefInfo, nest: &LoopNest, from_depth: usize) -> u64 {
    let restricted_trips: Vec<u64> = nest
        .trip_counts()
        .iter()
        .enumerate()
        .map(|(depth, &trip)| if depth >= from_depth { trip } else { 1 })
        .collect();
    reference
        .subscripts()
        .iter()
        .map(|subscript| {
            let (lo, hi) = subscript.range(&restricted_trips);
            (hi - lo + 1).max(1) as u64
        })
        .fold(1u64, |acc, extent| acc.saturating_mul(extent))
}

/// Returns `true` when the loop at `depth` carries temporal reuse for the reference:
/// consecutive iterations of that loop re-touch at least one element.
pub fn carries_reuse(reference: &RefInfo, nest: &LoopNest, depth: usize) -> bool {
    let own = footprint(reference, nest, depth);
    let inner = footprint(reference, nest, depth + 1);
    own < nest.trip_counts()[depth].saturating_mul(inner)
}

/// Returns the outermost loop that carries temporal reuse for the reference, if any.
///
/// This is the loop level at which the paper's analysis captures the reuse: keeping the
/// working set of the reference in registers across iterations of this loop eliminates
/// all redundant memory accesses.  `None` means the reference touches a different
/// element on every innermost iteration and carries no temporal reuse at all
/// (`e[i][j][k]` in the paper's example).
pub fn reuse_loop(reference: &RefInfo, nest: &LoopNest) -> Option<LoopId> {
    (0..nest.depth())
        .find(|&depth| carries_reuse(reference, nest, depth))
        .map(LoopId::new)
}

/// Number of registers required to fully exploit the temporal reuse of a reference.
///
/// This is the footprint of the loops *inside* the outermost reuse-carrying loop: the
/// set of values that must stay live across one of its iterations.  References without
/// temporal reuse still need a single register to hold the value while it is consumed,
/// which is the "one register per reference" minimum that FR-RA starts from.
///
/// # Examples
///
/// ```
/// use srra_ir::examples::paper_example;
/// use srra_reuse::registers_for_full_replacement;
///
/// let kernel = paper_example();
/// let table = kernel.reference_table();
/// let c = table.find_by_name("c").unwrap();
/// assert_eq!(registers_for_full_replacement(c, kernel.nest()), 20);
/// ```
pub fn registers_for_full_replacement(reference: &RefInfo, nest: &LoopNest) -> u64 {
    match reuse_loop(reference, nest) {
        None => 1,
        Some(reuse) => footprint(reference, nest, reuse.index() + 1).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::{paper_example, stencil3};
    use srra_ir::KernelBuilder;

    #[test]
    fn paper_example_invariant_loops() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let nest = kernel.nest();
        let loops = |name: &str| invariant_loops(table.find_by_name(name).unwrap(), nest);
        assert_eq!(loops("a"), vec![LoopId::new(0), LoopId::new(1)]);
        assert_eq!(loops("b"), vec![LoopId::new(0)]);
        assert_eq!(loops("c"), vec![LoopId::new(0), LoopId::new(2)]);
        assert_eq!(loops("d"), vec![LoopId::new(1)]);
        assert_eq!(loops("e"), Vec::<LoopId>::new());
    }

    #[test]
    fn paper_example_register_requirements_match_the_text() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let nest = kernel.nest();
        let regs =
            |name: &str| registers_for_full_replacement(table.find_by_name(name).unwrap(), nest);
        assert_eq!(regs("a"), 30);
        assert_eq!(regs("b"), 600);
        assert_eq!(regs("c"), 20);
        assert_eq!(regs("d"), 30);
        assert_eq!(regs("e"), 1);
    }

    #[test]
    fn reuse_loop_is_the_outermost_carrying_loop() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let nest = kernel.nest();
        assert_eq!(
            reuse_loop(table.find_by_name("a").unwrap(), nest),
            Some(LoopId::new(0))
        );
        assert_eq!(
            reuse_loop(table.find_by_name("d").unwrap(), nest),
            Some(LoopId::new(1))
        );
        assert_eq!(reuse_loop(table.find_by_name("e").unwrap(), nest), None);
    }

    #[test]
    fn footprints_of_the_paper_example() {
        let kernel = paper_example();
        let table = kernel.reference_table();
        let nest = kernel.nest();
        let b = table.find_by_name("b").unwrap();
        assert_eq!(footprint(b, nest, 0), 600);
        assert_eq!(footprint(b, nest, 1), 600);
        assert_eq!(footprint(b, nest, 2), 30);
        assert_eq!(footprint(b, nest, 3), 1);
        let e = table.find_by_name("e").unwrap();
        assert_eq!(footprint(e, nest, 0), 1_200);
    }

    #[test]
    fn stencil_window_references_have_no_self_reuse() {
        let kernel = stencil3(32);
        let table = kernel.reference_table();
        let nest = kernel.nest();
        // Each reference of the 1-deep stencil touches a new element every iteration;
        // the reuse between the shifted references is group reuse, not self reuse.
        for info in table.iter() {
            assert_eq!(registers_for_full_replacement(info, nest), 1);
        }
    }

    #[test]
    fn sliding_window_reuse_is_carried_by_the_outer_loop() {
        // FIR-style access x[i + j] in an (i, j) nest: the window of Nj elements
        // shifts by one per i iteration, so i carries reuse and Nj registers suffice.
        let b = KernelBuilder::new("fir_like");
        let i = b.add_loop("i", 56);
        let j = b.add_loop("j", 8);
        let x = b.add_array("x", &[64], 16);
        let y = b.add_array("y", &[56], 16);
        let acc = b.add(b.read(y, &[b.idx(i)]), b.read(x, &[b.idx_sum(i, j)]));
        b.store(y, &[b.idx(i)], acc);
        let kernel = b.build().unwrap();
        let table = kernel.reference_table();
        let x_ref = table.find_by_name("x").unwrap();
        assert_eq!(reuse_loop(x_ref, kernel.nest()), Some(LoopId::new(0)));
        assert_eq!(registers_for_full_replacement(x_ref, kernel.nest()), 8);
        assert!(carries_reuse(x_ref, kernel.nest(), 0));
        assert!(!carries_reuse(x_ref, kernel.nest(), 1));
    }

    #[test]
    fn constant_subscript_reference_needs_one_register() {
        // s[0] inside a 2-deep nest is invariant with respect to both loops but touches
        // a single element, so one register suffices.
        let b = KernelBuilder::new("acc");
        let i = b.add_loop("i", 8);
        let j = b.add_loop("j", 8);
        let x = b.add_array("x", &[8, 8], 16);
        let s = b.add_array("s", &[1], 32);
        let sum = b.add(
            b.read(s, &[b.constant(0)]),
            b.read(x, &[b.idx(i), b.idx(j)]),
        );
        b.store(s, &[b.constant(0)], sum);
        let kernel = b.build().unwrap();
        let table = kernel.reference_table();
        let s_ref = table.find_by_name("s").unwrap();
        assert_eq!(registers_for_full_replacement(s_ref, kernel.nest()), 1);
        assert_eq!(reuse_loop(s_ref, kernel.nest()), Some(LoopId::new(0)));
    }

    #[test]
    fn deeper_loops_multiply_the_requirement() {
        // x[k] inside (i, j, k) with trips (2, 3, 5): requirement is 5.
        // y[j][k] with reuse only at i: requirement is 3 * 5.
        let b = KernelBuilder::new("deep");
        let _i = b.add_loop("i", 2);
        let j = b.add_loop("j", 3);
        let k = b.add_loop("k", 5);
        let x = b.add_array("x", &[5], 16);
        let y = b.add_array("y", &[3, 5], 16);
        let t = b.add_array("t", &[1], 16);
        let sum = b.add(b.read(x, &[b.idx(k)]), b.read(y, &[b.idx(j), b.idx(k)]));
        b.store(t, &[b.constant(0)], sum);
        let kernel = b.build().unwrap();
        let table = kernel.reference_table();
        assert_eq!(
            registers_for_full_replacement(table.find_by_name("x").unwrap(), kernel.nest()),
            5
        );
        assert_eq!(
            registers_for_full_replacement(table.find_by_name("y").unwrap(), kernel.nest()),
            15
        );
    }
}
