//! Property-based tests for the reuse analysis: footprints, register requirements and
//! the partial-replacement access model.

use proptest::prelude::*;
use srra_ir::{Kernel, KernelBuilder};
use srra_reuse::{
    eliminated_accesses, footprint, registers_for_full_replacement, remaining_accesses,
    ReuseAnalysis,
};

/// A three-deep nest with one reference per "shape": invariant, windowed, accumulator
/// and streaming.
fn generated_kernel(ni: u64, nj: u64, nk: u64, window: bool) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let coeff = b.add_array("coeff", &[nk], 16);
    let window_len = nj + nk;
    let stream = b.add_array("stream", &[window_len.max(1)], 16);
    let acc = b.add_array("acc", &[ni, nj], 32);
    let sink = b.add_array("sink", &[ni, nj, nk], 16);

    let stream_subscript = if window { b.idx_sum(j, k) } else { b.idx(k) };
    let product = b.mul(
        b.read(coeff, &[b.idx(k)]),
        b.read(stream, &[stream_subscript]),
    );
    let sum = b.add(b.read(acc, &[b.idx(i), b.idx(j)]), product);
    b.store(acc, &[b.idx(i), b.idx(j)], sum);
    b.store(sink, &[b.idx(i), b.idx(j), b.idx(k)], product);
    b.build().expect("generated kernel is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn footprints_shrink_with_depth_and_requirements_are_positive(
        ni in 1u64..6,
        nj in 1u64..16,
        nk in 1u64..16,
        window in any::<bool>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, window);
        let table = kernel.reference_table();
        let nest = kernel.nest();
        for info in table.iter() {
            let mut previous = footprint(info, nest, 0);
            for depth in 1..=nest.depth() {
                let current = footprint(info, nest, depth);
                prop_assert!(current <= previous, "footprint must shrink with depth");
                prop_assert!(current >= 1);
                previous = current;
            }
            let registers = registers_for_full_replacement(info, nest);
            prop_assert!(registers >= 1);
            prop_assert!(registers <= footprint(info, nest, 0).max(1));
        }
    }

    #[test]
    fn essential_accesses_never_exceed_totals(
        ni in 1u64..6,
        nj in 1u64..16,
        nk in 1u64..16,
        window in any::<bool>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, window);
        let analysis = ReuseAnalysis::of(&kernel);
        for summary in &analysis {
            let counts = summary.access_counts();
            prop_assert!(counts.essential <= counts.total);
            prop_assert!(counts.saved() == counts.total - counts.essential);
            prop_assert!(summary.benefit_cost() >= 0.0);
        }
        prop_assert!(analysis.total_saved_full() <= analysis.total_accesses());
    }

    #[test]
    fn eliminated_accesses_are_monotone_and_bounded(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        beta_step in 1u64..7,
    ) {
        let kernel = generated_kernel(ni, nj, nk, true);
        let analysis = ReuseAnalysis::of(&kernel);
        for summary in &analysis {
            let mut previous = 0u64;
            let mut beta = 0u64;
            while beta <= summary.registers_full() + beta_step {
                let eliminated = eliminated_accesses(summary, beta);
                prop_assert!(eliminated >= previous, "monotone in beta");
                prop_assert!(eliminated <= summary.saved_full());
                prop_assert_eq!(
                    remaining_accesses(summary, beta),
                    summary.access_counts().total - eliminated
                );
                previous = eliminated;
                beta += beta_step;
            }
            prop_assert_eq!(
                eliminated_accesses(summary, summary.registers_full()),
                summary.saved_full()
            );
        }
    }

    #[test]
    fn benefit_cost_ordering_is_a_permutation_of_the_references(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        window in any::<bool>(),
    ) {
        let kernel = generated_kernel(ni, nj, nk, window);
        let analysis = ReuseAnalysis::of(&kernel);
        let sorted = analysis.sorted_by_benefit_cost();
        prop_assert_eq!(sorted.len(), analysis.len());
        let mut ids: Vec<usize> = sorted.iter().map(|s| s.ref_id().index()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), analysis.len());
        for pair in sorted.windows(2) {
            prop_assert!(pair[0].benefit_cost() >= pair[1].benefit_cost());
        }
    }
}
