//! Property-based tests for the FPGA models: scheduler legality, clock and area
//! monotonicity, and design-point consistency.

use proptest::prelude::*;
use srra_core::{allocate, AllocatorKind, ReplacementPlan};
use srra_dfg::{DataFlowGraph, LatencyModel, Storage, StorageMap};
use srra_fpga::{
    AreaModel, ClockModel, DeviceModel, EvaluationOptions, HardwareDesign, ListScheduler,
    ResourceLimits,
};
use srra_ir::{Kernel, KernelBuilder};
use srra_reuse::ReuseAnalysis;

fn generated_kernel(ni: u64, nj: u64, nk: u64) -> Kernel {
    let b = KernelBuilder::new("generated");
    let i = b.add_loop("i", ni);
    let j = b.add_loop("j", nj);
    let k = b.add_loop("k", nk);
    let a = b.add_array("a", &[nk], 16);
    let bb = b.add_array("b", &[nk, nj], 16);
    let c = b.add_array("c", &[nj], 16);
    let d = b.add_array("d", &[ni, nk], 16);
    let e = b.add_array("e", &[ni, nj, nk], 16);
    let op1 = b.mul(b.read(a, &[b.idx(k)]), b.read(bb, &[b.idx(k), b.idx(j)]));
    b.store(d, &[b.idx(i), b.idx(k)], op1);
    let op2 = b.mul(b.read(c, &[b.idx(j)]), b.read(d, &[b.idx(i), b.idx(k)]));
    b.store(e, &[b.idx(i), b.idx(j), b.idx(k)], op2);
    b.build().expect("generated kernel is valid")
}

fn storage_for(dfg: &DataFlowGraph, mask: u32) -> StorageMap {
    let mut storage = StorageMap::all_ram();
    for (bit, node) in dfg.reference_nodes().into_iter().enumerate() {
        if mask & (1 << (bit % 16)) != 0 {
            if let Some(ref_id) = dfg.node(node).reference() {
                storage.set(ref_id, Storage::Register);
            }
        }
    }
    storage
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn schedules_respect_precedence_and_port_limits(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        mask in any::<u32>(),
        ports in 1u32..3,
    ) {
        let kernel = generated_kernel(ni, nj, nk);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let storage = storage_for(&dfg, mask);
        let model = LatencyModel::default();
        let limits = ResourceLimits { ram_ports_per_array: ports, ..ResourceLimits::default() };
        let schedule = ListScheduler::new(limits).schedule(&dfg, &model, &storage);

        // Precedence.
        for node in dfg.node_ids() {
            for &succ in dfg.successors(node) {
                prop_assert!(schedule.start(succ) >= schedule.finish(node));
            }
        }
        // Port limits: count concurrent RAM accesses per array per cycle.
        for cycle in 0..schedule.cycles() {
            let mut per_array: std::collections::HashMap<srra_ir::ArrayId, u32> = Default::default();
            for node in dfg.node_ids() {
                let is_ram = dfg
                    .node(node)
                    .reference()
                    .map(|r| storage.storage(r) == Storage::Ram)
                    .unwrap_or(false);
                if !is_ram {
                    continue;
                }
                let busy = schedule.start(node) <= cycle
                    && cycle < schedule.finish(node).max(schedule.start(node) + 1);
                if busy {
                    if let srra_dfg::NodeKind::Reference { array, .. } = dfg.node(node).kind() {
                        *per_array.entry(*array).or_insert(0) += 1;
                    }
                }
            }
            for (&array, &count) in &per_array {
                prop_assert!(count <= ports, "array {array} uses {count} ports in one cycle");
            }
        }
        // The schedule is never shorter than the unconstrained critical path.
        let unconstrained = ListScheduler::default().schedule(&dfg, &model, &storage);
        prop_assert!(schedule.cycles() >= unconstrained.cycles());
    }

    #[test]
    fn clock_and_area_grow_with_the_register_budget(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        budget in 6u64..100,
        extra in 1u64..100,
    ) {
        let kernel = generated_kernel(ni, nj, nk);
        let analysis = ReuseAnalysis::of(&kernel);
        let device = DeviceModel::xcv1000();
        let small = allocate(AllocatorKind::PartialReuse, &kernel, &analysis, budget).unwrap();
        let large = allocate(AllocatorKind::PartialReuse, &kernel, &analysis, budget + extra).unwrap();
        let small_plan = ReplacementPlan::new(&kernel, &analysis, &small);
        let large_plan = ReplacementPlan::new(&kernel, &analysis, &large);
        prop_assert!(large_plan.total_registers() >= small_plan.total_registers());
        let area = AreaModel::default();
        let small_area = area.estimate(&kernel, &small_plan, &device);
        let large_area = area.estimate(&kernel, &large_plan, &device);
        prop_assert!(large_area.data_flip_flops >= small_area.data_flip_flops);
        // More data registers never reduce the register component of the clock model.
        let clock = ClockModel {
            per_partial_ref_ns: 0.0,
            per_ram_array_ns: 0.0,
            ..ClockModel::default()
        };
        prop_assert!(clock.period_ns(&large_plan) >= clock.period_ns(&small_plan) - 1e-9);
    }

    #[test]
    fn design_points_are_internally_consistent(
        ni in 1u64..5,
        nj in 2u64..12,
        nk in 2u64..12,
        budget in 6u64..100,
    ) {
        let kernel = generated_kernel(ni, nj, nk);
        let analysis = ReuseAnalysis::of(&kernel);
        let device = DeviceModel::xcv1000();
        let options = EvaluationOptions::default();
        for kind in AllocatorKind::all() {
            let Ok(allocation) = allocate(kind, &kernel, &analysis, budget) else {
                continue;
            };
            let design = HardwareDesign::evaluate(&kernel, &analysis, &allocation, &device, &options);
            prop_assert_eq!(
                design.total_cycles,
                design.compute_cycles + design.memory_cycles + design.transfer_cycles
            );
            prop_assert!(design.clock_period_ns > 0.0);
            let expected_time = design.total_cycles as f64 * design.clock_period_ns / 1_000.0;
            prop_assert!((design.execution_time_us - expected_time).abs() < 1e-6);
            prop_assert_eq!(design.registers_used, allocation.total_registers());
            prop_assert!(design.slices > 0);
        }
    }
}
