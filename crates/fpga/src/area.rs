//! Analytic area model: logic slices and BlockRAM usage.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use srra_core::ReplacementPlan;
use srra_dfg::{DataFlowGraph, NodeKind};
use srra_ir::{BinOp, Kernel};

use crate::device::DeviceModel;

/// Estimated resource usage of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AreaEstimate {
    /// Logic slices occupied.
    pub slices: u64,
    /// BlockRAM primitives occupied.
    pub block_rams: u64,
    /// Flip-flops used for scalar-replaced data.
    pub data_flip_flops: u64,
}

impl AreaEstimate {
    /// Slice occupancy on the given device, as a fraction.
    pub fn occupancy(&self, device: &DeviceModel) -> f64 {
        device.slice_occupancy(self.slices)
    }

    /// Returns `true` when the estimate fits the device.
    pub fn fits(&self, device: &DeviceModel) -> bool {
        device.fits(self.slices, self.block_rams)
    }
}

/// Analytic area estimator.
///
/// Slices are charged for the datapath operators (per operator class, scaled by operand
/// width), the scalar-replacement register file (one slice per two flip-flops, plus
/// multiplexing for rotation), the loop control and the RAM address generators.
/// BlockRAMs are charged for every array that still has RAM-resident data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Slices for the loop controller and iteration counters.
    pub control_slices: u64,
    /// Slices per bit of a multiplier operand (array multiplier cost).
    pub multiplier_slices_per_bit: f64,
    /// Slices per bit of an adder/comparator/logic operator.
    pub alu_slices_per_bit: f64,
    /// Slices per data flip-flop (two flip-flops per slice => 0.5), including packing
    /// overhead.
    pub slices_per_flip_flop: f64,
    /// Extra slices per register of a partially replaced reference (rotation muxes).
    pub mux_slices_per_partial_register: f64,
    /// Slices per RAM-resident array (address generation).
    pub address_gen_slices: u64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            control_slices: 60,
            multiplier_slices_per_bit: 9.0,
            alu_slices_per_bit: 0.6,
            slices_per_flip_flop: 0.55,
            mux_slices_per_partial_register: 0.7,
            address_gen_slices: 25,
        }
    }
}

impl AreaModel {
    /// Estimates the area of a design implementing `plan` for `kernel`.
    pub fn estimate(
        &self,
        kernel: &Kernel,
        plan: &ReplacementPlan,
        device: &DeviceModel,
    ) -> AreaEstimate {
        let dfg = DataFlowGraph::from_kernel(kernel);

        // Datapath operators: one instance per DFG operation (spatial implementation).
        let mut operator_slices = 0.0f64;
        for node in dfg.nodes() {
            let bits = 16.0;
            match node.kind() {
                NodeKind::Binary { op, .. } => {
                    operator_slices += match op {
                        BinOp::Mul | BinOp::Div => self.multiplier_slices_per_bit * bits,
                        _ => self.alu_slices_per_bit * bits,
                    };
                }
                NodeKind::Unary { .. } => operator_slices += self.alu_slices_per_bit * bits,
                _ => {}
            }
        }

        // Scalar-replacement registers and their steering logic.
        let data_flip_flops = plan.total_register_bits();
        let mut register_slices = data_flip_flops as f64 * self.slices_per_flip_flop;
        for r in plan.refs() {
            if r.mode == srra_core::ReplacementMode::Partial {
                register_slices += r.beta as f64 * self.mux_slices_per_partial_register;
            }
        }

        // RAM-resident arrays: BlockRAMs by capacity, plus address generators.
        let mut ram_bits: BTreeMap<&str, u64> = BTreeMap::new();
        for r in plan.refs() {
            if r.steady_miss > 0.0 || r.prologue_loads > 0 || r.epilogue_stores > 0 {
                let decl = kernel
                    .arrays()
                    .iter()
                    .find(|a| a.name() == r.array_name)
                    .expect("array exists");
                ram_bits.insert(decl.name(), decl.total_bits());
            }
        }
        let block_rams: u64 = ram_bits
            .values()
            .map(|bits| device.block_rams_for(*bits))
            .sum();
        let address_slices = ram_bits.len() as u64 * self.address_gen_slices;

        let slices = self.control_slices
            + address_slices
            + operator_slices.ceil() as u64
            + register_slices.ceil() as u64;

        AreaEstimate {
            slices,
            block_rams,
            data_flip_flops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_core::{allocate, AllocatorKind, ReplacementPlan};
    use srra_ir::examples::paper_example;
    use srra_reuse::ReuseAnalysis;

    fn estimate(kind: AllocatorKind, budget: u64) -> AreaEstimate {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        let plan = ReplacementPlan::new(&kernel, &analysis, &allocation);
        AreaModel::default().estimate(&kernel, &plan, &DeviceModel::xcv1000())
    }

    #[test]
    fn more_registers_cost_more_slices() {
        let base = estimate(AllocatorKind::NoReplacement, 0);
        let fr = estimate(AllocatorKind::FullReuse, 64);
        let cpa = estimate(AllocatorKind::CriticalPathAware, 64);
        assert!(fr.slices > base.slices);
        assert!(cpa.slices > base.slices);
        assert_eq!(base.data_flip_flops, 0);
        assert_eq!(fr.data_flip_flops, 53 * 16);
        assert_eq!(cpa.data_flip_flops, 64 * 16);
    }

    #[test]
    fn fully_replaced_read_only_arrays_still_occupy_their_block_ram() {
        // Even a fully replaced reference needs its array in RAM for the prologue
        // loads, so the BlockRAM count does not drop below the number of live arrays.
        let base = estimate(AllocatorKind::NoReplacement, 0);
        let fr = estimate(AllocatorKind::FullReuse, 64);
        assert_eq!(base.block_rams, fr.block_rams);
    }

    #[test]
    fn estimates_fit_the_paper_device() {
        let device = DeviceModel::xcv1000();
        for kind in [
            AllocatorKind::NoReplacement,
            AllocatorKind::FullReuse,
            AllocatorKind::PartialReuse,
            AllocatorKind::CriticalPathAware,
        ] {
            let est = estimate(kind, 64);
            assert!(est.fits(&device), "{kind:?} should fit: {est:?}");
            assert!(est.occupancy(&device) < 0.5);
        }
    }
}
