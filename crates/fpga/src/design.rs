//! Whole-design evaluation: cycles, clock, wall-clock time and area for one allocation.

use serde::{Deserialize, Serialize};
use srra_core::{memory_cost, MemoryCostModel, RegisterAllocation, ReplacementPlan};
use srra_dfg::{DataFlowGraph, LatencyModel, Storage, StorageMap};
use srra_ir::Kernel;
use srra_reuse::ReuseAnalysis;

use crate::area::{AreaEstimate, AreaModel};
use crate::clock::ClockModel;
use crate::device::DeviceModel;
use crate::schedule::{ListScheduler, ResourceLimits};

/// All the knobs of the hardware evaluation, bundled so design points stay comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationOptions {
    /// Operation and memory latencies.
    pub latency: LatencyModel,
    /// Scheduler resource limits (RAM ports, optional operator limits).
    pub limits: ResourceLimits,
    /// Clock-period model.
    pub clock: ClockModel,
    /// Area model.
    pub area: AreaModel,
    /// Memory-cycle cost model (RAM latency, concurrency).
    pub memory: MemoryCostModel,
    /// Loop-control overhead added to every innermost iteration, in cycles.
    pub loop_overhead_cycles: u64,
}

impl Default for EvaluationOptions {
    /// The default hardware evaluation charges two cycles per BlockRAM access: Virtex
    /// BlockRAMs are synchronous, so an FSM implementation spends one state driving the
    /// address and one state capturing the data.  (The abstract `T_mem` metric of
    /// `srra-core`, used for the Figure 2(c) reproduction, keeps its single-cycle
    /// default.)
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            limits: ResourceLimits::default(),
            clock: ClockModel::default(),
            area: AreaModel::default(),
            memory: MemoryCostModel::default().with_ram_latency(2),
            loop_overhead_cycles: 0,
        }
    }
}

/// A fully evaluated hardware design point, the unit of comparison in Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareDesign {
    /// Name of the kernel.
    pub kernel: String,
    /// The algorithm's Table 1 version name (`v1`, `v2`, `v3`, ...).
    pub version: String,
    /// The algorithm's label (`FR-RA`, `PR-RA`, `CPA-RA`, ...).
    pub algorithm: String,
    /// Registers consumed by the allocation.
    pub registers_used: u64,
    /// Per-reference register distribution, e.g. `a:30 b:1 c:20 d:1 e:1`.
    pub register_distribution: String,
    /// Total execution cycles of the computation.
    pub total_cycles: u64,
    /// Cycles spent on datapath operations and loop control.
    pub compute_cycles: u64,
    /// Cycles spent on RAM accesses (steady state).
    pub memory_cycles: u64,
    /// Cycles spent warming up / draining registers (prologue and epilogue).
    pub transfer_cycles: u64,
    /// Achievable clock period in nanoseconds.
    pub clock_period_ns: f64,
    /// Wall-clock execution time in microseconds.
    pub execution_time_us: f64,
    /// Logic slices occupied.
    pub slices: u64,
    /// Slice occupancy on the evaluated device.
    pub slice_occupancy: f64,
    /// BlockRAMs occupied.
    pub block_rams: u64,
    /// Memory accesses remaining over the whole execution.
    pub remaining_accesses: u64,
}

impl HardwareDesign {
    /// Evaluates a register allocation as a hardware design point.
    ///
    /// The total cycle count decomposes as
    /// `iterations × (datapath schedule + loop overhead) + steady-state memory cycles +
    /// prologue/epilogue transfers`; the datapath schedule comes from the
    /// resource-constrained list scheduler with every reference register-resident, and
    /// the memory cycles come from the `srra-core` cost model (which accounts for
    /// partial replacement and concurrent access to distinct RAM blocks).
    pub fn evaluate(
        kernel: &Kernel,
        analysis: &ReuseAnalysis,
        allocation: &RegisterAllocation,
        device: &DeviceModel,
        options: &EvaluationOptions,
    ) -> Self {
        let plan = ReplacementPlan::new(kernel, analysis, allocation);
        let dfg = DataFlowGraph::from_kernel(kernel);

        // Datapath skeleton: the schedule of one iteration when every operand is
        // already register-resident.
        let mut all_registers = StorageMap::all_ram();
        for summary in analysis.iter() {
            all_registers.set(summary.ref_id(), Storage::Register);
        }
        let scheduler = ListScheduler::new(options.limits.clone());
        let datapath = scheduler.schedule(&dfg, &options.latency, &all_registers);

        let iterations = kernel.nest().total_iterations();
        let compute_cycles =
            iterations.saturating_mul(datapath.cycles() + options.loop_overhead_cycles);

        let memory = memory_cost(kernel, analysis, allocation, &options.memory);
        let transfer_cycles = (plan.total_prologue_loads() + plan.total_epilogue_stores())
            .saturating_mul(options.memory.ram_latency);

        let total_cycles = compute_cycles + memory.memory_cycles + transfer_cycles;

        let clock_period_ns = options.clock.period_ns(&plan);
        let execution_time_us = total_cycles as f64 * clock_period_ns / 1_000.0;

        let area: AreaEstimate = options.area.estimate(kernel, &plan, device);

        Self {
            kernel: kernel.name().to_owned(),
            version: allocation.algorithm().version_name().to_owned(),
            algorithm: allocation.algorithm().label().to_owned(),
            registers_used: allocation.total_registers(),
            register_distribution: allocation.distribution(),
            total_cycles,
            compute_cycles,
            memory_cycles: memory.memory_cycles,
            transfer_cycles,
            clock_period_ns,
            execution_time_us,
            slices: area.slices,
            slice_occupancy: area.occupancy(device),
            block_rams: area.block_rams,
            remaining_accesses: memory.remaining_accesses,
        }
    }

    /// Percentage reduction of this design's cycle count relative to `baseline`
    /// (positive means fewer cycles than the baseline).
    pub fn cycle_reduction_vs(&self, baseline: &HardwareDesign) -> f64 {
        if baseline.total_cycles == 0 {
            return 0.0;
        }
        100.0 * (baseline.total_cycles as f64 - self.total_cycles as f64)
            / baseline.total_cycles as f64
    }

    /// Wall-clock speedup of this design relative to `baseline` (values above 1 mean
    /// this design is faster).
    pub fn speedup_vs(&self, baseline: &HardwareDesign) -> f64 {
        if self.execution_time_us == 0.0 {
            return 1.0;
        }
        baseline.execution_time_us / self.execution_time_us
    }

    /// Percentage clock-period degradation relative to `baseline` (positive means this
    /// design's clock is slower).
    pub fn clock_degradation_vs(&self, baseline: &HardwareDesign) -> f64 {
        if baseline.clock_period_ns == 0.0 {
            return 0.0;
        }
        100.0 * (self.clock_period_ns - baseline.clock_period_ns) / baseline.clock_period_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_core::{allocate, AllocatorKind};
    use srra_ir::examples::paper_example;

    fn design(kind: AllocatorKind, budget: u64) -> HardwareDesign {
        let kernel = paper_example();
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        HardwareDesign::evaluate(
            &kernel,
            &analysis,
            &allocation,
            &DeviceModel::xcv1000(),
            &EvaluationOptions::default(),
        )
    }

    #[test]
    fn cycle_ordering_matches_the_paper() {
        let base = design(AllocatorKind::NoReplacement, 0);
        let fr = design(AllocatorKind::FullReuse, 64);
        let pr = design(AllocatorKind::PartialReuse, 64);
        let cpa = design(AllocatorKind::CriticalPathAware, 64);
        // FR-RA promotes a and c, but b shares their memory stage and keeps missing, so
        // under concurrent RAM access the steady-state cycles do not improve over the
        // untransformed code — exactly the ineffective-allocation effect the paper's
        // introduction describes.  Only the prologue transfers are added on top.
        assert!(fr.total_cycles <= base.total_cycles + fr.transfer_cycles);
        assert!(pr.total_cycles <= fr.total_cycles);
        assert!(cpa.total_cycles < pr.total_cycles);
        assert!(cpa.cycle_reduction_vs(&fr) > 0.0);
        assert!(cpa.speedup_vs(&fr) > 1.0);
    }

    #[test]
    fn cycle_decomposition_adds_up() {
        let d = design(AllocatorKind::CriticalPathAware, 64);
        assert_eq!(
            d.total_cycles,
            d.compute_cycles + d.memory_cycles + d.transfer_cycles
        );
        assert!(d.compute_cycles > 0);
        assert!(d.memory_cycles > 0);
    }

    #[test]
    fn clock_degradation_is_small_but_present() {
        let fr = design(AllocatorKind::FullReuse, 64);
        let cpa = design(AllocatorKind::CriticalPathAware, 64);
        let degradation = cpa.clock_degradation_vs(&fr);
        assert!(degradation > 0.0);
        assert!(degradation < 15.0);
        // Despite the slower clock, CPA-RA still wins on wall-clock time.
        assert!(cpa.execution_time_us < fr.execution_time_us);
    }

    #[test]
    fn metadata_is_filled_in() {
        let d = design(AllocatorKind::PartialReuse, 64);
        assert_eq!(d.kernel, "paper_example");
        assert_eq!(d.version, "v2");
        assert_eq!(d.algorithm, "PR-RA");
        assert_eq!(d.registers_used, 64);
        assert!(d.register_distribution.contains("d:12"));
        assert!(d.slices > 0);
        assert!(d.block_rams > 0);
        assert!(d.slice_occupancy > 0.0 && d.slice_occupancy < 1.0);
        assert!(d.execution_time_us > 0.0);
    }
}
