//! Functional execution of a scalar-replacement plan: an element-accurate simulation of
//! the register/RAM traffic.
//!
//! The analytic models in `srra-core` predict how many memory accesses remain after an
//! allocation.  This module *executes* the loop nest iteration by iteration, keeping a
//! small register file per reference (of its assigned capacity `β`, managed FIFO like a
//! hardware rotation register) and a RAM behind it, and counts what actually happens.
//! It serves two purposes:
//!
//! * it validates the analytic miss-fraction model on small kernels (see the tests and
//!   the cross-validation integration test), and
//! * it provides a ground-truth trace for users who want to inspect a design point in
//!   detail (per-reference hits, misses and write-backs).
//!
//! Simulation walks the full iteration space, so it is intended for scaled-down kernels
//! (up to a few hundred thousand iterations), not for the full Table 1 problem sizes.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};
use srra_core::{RegisterAllocation, ReplacementMode};
use srra_ir::{AccessKind, Kernel, RefId};
use srra_reuse::ReuseAnalysis;

/// Per-reference traffic counts observed during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RefTraffic {
    /// Accesses served by the reference's registers.
    pub register_hits: u64,
    /// Reads satisfied by forwarding the value produced earlier in the same iteration
    /// (they never reach the storage at all).
    pub forwarded: u64,
    /// Reads that had to fetch the element from RAM.
    pub ram_reads: u64,
    /// Stores that went to RAM (including write-backs of evicted dirty elements and the
    /// final flush).
    pub ram_writes: u64,
}

impl RefTraffic {
    /// Total RAM accesses (reads plus writes).
    pub fn ram_accesses(&self) -> u64 {
        self.ram_reads + self.ram_writes
    }
}

/// The outcome of simulating one allocation over the whole iteration space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Innermost iterations executed.
    pub iterations: u64,
    /// Traffic per reference group.
    pub traffic: HashMap<RefId, RefTraffic>,
}

impl SimulationResult {
    /// Total RAM accesses across every reference.
    pub fn total_ram_accesses(&self) -> u64 {
        self.traffic.values().map(RefTraffic::ram_accesses).sum()
    }

    /// Total register hits across every reference.
    pub fn total_register_hits(&self) -> u64 {
        self.traffic.values().map(|t| t.register_hits).sum()
    }

    /// Traffic of one reference (zero counts if it never executed).
    pub fn of(&self, ref_id: RefId) -> RefTraffic {
        self.traffic.get(&ref_id).copied().unwrap_or_default()
    }
}

/// How a register file replaces residents once it is full.
///
/// References whose reuse is loop-invariant (`c[j]`, coefficient arrays, accumulators)
/// pin the first `β` distinct elements — exactly what a partial scalar replacement
/// generates in hardware.  Sliding-window references (`x[i+j]`) rotate, so they evict
/// the oldest element (FIFO), which is how a shift-register window behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillPolicy {
    /// Keep the first `β` distinct elements forever (partial replacement of an
    /// invariant working set).
    Pin,
    /// Evict the oldest resident (rotating window).
    Rotate,
}

/// A bounded register file fronting one reference's RAM.
struct RegisterFile {
    capacity: usize,
    policy: FillPolicy,
    /// Resident element coordinates, oldest first, with a dirty flag.
    resident: VecDeque<(Vec<i64>, bool)>,
}

impl RegisterFile {
    fn new(capacity: usize, policy: FillPolicy) -> Self {
        Self {
            capacity,
            policy,
            resident: VecDeque::new(),
        }
    }

    fn find(&mut self, element: &[i64]) -> Option<&mut (Vec<i64>, bool)> {
        self.resident
            .iter_mut()
            .find(|(coords, _)| coords == element)
    }

    /// Tries to insert an element.  Returns `(inserted, evicted_dirty)`.
    fn insert(&mut self, element: Vec<i64>, dirty: bool) -> (bool, bool) {
        if self.capacity == 0 {
            return (false, false);
        }
        let mut evicted_dirty = false;
        if self.resident.len() >= self.capacity {
            match self.policy {
                FillPolicy::Pin => return (false, false),
                FillPolicy::Rotate => {
                    if let Some((_, was_dirty)) = self.resident.pop_front() {
                        evicted_dirty = was_dirty;
                    }
                }
            }
        }
        self.resident.push_back((element, dirty));
        (true, evicted_dirty)
    }

    /// Number of dirty residents (flushed at the end of the simulation).
    fn dirty_count(&self) -> u64 {
        self.resident.iter().filter(|(_, dirty)| *dirty).count() as u64
    }

    /// Empties the register file (at a reuse-loop boundary), returning how many dirty
    /// residents had to be written back.
    fn flush(&mut self) -> u64 {
        let dirty = self.dirty_count();
        self.resident.clear();
        dirty
    }
}

/// Executes the kernel under the given allocation and returns the observed traffic.
///
/// Each reference group owns a FIFO register file of its assigned capacity `β` (zero
/// for references in [`ReplacementMode::None`], which therefore hit RAM on every
/// access).  Reads allocate into the register file; writes are write-allocate /
/// write-back, with dirty elements flushed to RAM when evicted and at the end of the
/// execution.
///
/// # Panics
///
/// Panics if the kernel's iteration space exceeds `max_iterations`, to avoid
/// accidentally simulating a billion iterations; pick smaller kernel parameters
/// instead.
pub fn simulate(
    kernel: &Kernel,
    analysis: &ReuseAnalysis,
    allocation: &RegisterAllocation,
    max_iterations: u64,
) -> SimulationResult {
    let total_iterations = kernel.nest().total_iterations();
    assert!(
        total_iterations <= max_iterations,
        "kernel has {total_iterations} iterations, more than the simulation limit {max_iterations}"
    );

    let table = kernel.reference_table();
    let mut files: HashMap<RefId, RegisterFile> = HashMap::new();
    let mut traffic: HashMap<RefId, RefTraffic> = HashMap::new();
    for summary in analysis.iter() {
        let decision_mode = allocation
            .get(summary.ref_id())
            .map(|d| d.mode())
            .unwrap_or(ReplacementMode::None);
        let capacity = match decision_mode {
            ReplacementMode::None => 0,
            _ => allocation.beta(summary.ref_id()) as usize,
        };
        let policy = if summary.invariant_loops().is_empty() {
            FillPolicy::Rotate
        } else {
            FillPolicy::Pin
        };
        files.insert(summary.ref_id(), RegisterFile::new(capacity, policy));
        traffic.insert(summary.ref_id(), RefTraffic::default());
    }

    // Depth of each reference's reuse loop: whenever a loop *outside* that depth
    // advances, the reference's working set changes completely and its registers are
    // flushed and refilled (this is what the peeled prologue/epilogue of the generated
    // code does per traversal of the reuse loop).
    let reuse_depth: HashMap<RefId, usize> = analysis
        .iter()
        .map(|s| {
            (
                s.ref_id(),
                s.reuse_loop().map(|l| l.index()).unwrap_or(usize::MAX),
            )
        })
        .collect();

    // Pre-compute the occurrence list per statement: (ref id, access kind, subscripts).
    let mut occurrences: Vec<(RefId, AccessKind, Vec<srra_ir::AffineExpr>)> = Vec::new();
    for stmt in kernel.nest().body() {
        for array_ref in stmt.array_refs() {
            let info = table
                .find(array_ref.array(), array_ref.subscripts())
                .expect("reference in table");
            occurrences.push((
                info.id(),
                array_ref.access(),
                array_ref.subscripts().to_vec(),
            ));
        }
    }

    // Walk the iteration space in lexicographic order.
    let trip_counts = kernel.nest().trip_counts();
    let depth = trip_counts.len();
    let mut point = vec![0i64; depth];
    loop {
        // Values produced earlier in the same iteration are forwarded through the
        // datapath: a read of an element written by a previous statement of this very
        // iteration never touches the storage (the `d[i][k]` flow of the paper's
        // example).
        let mut written_this_iteration: Vec<(RefId, Vec<i64>)> = Vec::new();
        for (ref_id, access, subscripts) in &occurrences {
            let element: Vec<i64> = subscripts.iter().map(|s| s.eval(&point)).collect();
            let file = files.get_mut(ref_id).expect("register file exists");
            let stats = traffic.get_mut(ref_id).expect("traffic entry exists");
            match access {
                AccessKind::Read => {
                    if written_this_iteration
                        .iter()
                        .any(|(r, e)| r == ref_id && e == &element)
                    {
                        stats.forwarded += 1;
                    } else if let Some(_entry) = file.find(&element) {
                        stats.register_hits += 1;
                    } else {
                        stats.ram_reads += 1;
                        let (_, evicted_dirty) = file.insert(element, false);
                        if evicted_dirty {
                            stats.ram_writes += 1;
                        }
                    }
                }
                AccessKind::Write => {
                    if let Some(entry) = file.find(&element) {
                        entry.1 = true;
                        stats.register_hits += 1;
                    } else {
                        let (inserted, evicted_dirty) = file.insert(element.clone(), true);
                        if evicted_dirty {
                            stats.ram_writes += 1;
                        }
                        if inserted {
                            stats.register_hits += 1;
                        } else {
                            stats.ram_writes += 1;
                        }
                    }
                    written_this_iteration.push((*ref_id, element));
                }
            }
        }

        // Advance the iteration vector.
        let mut level = depth;
        let advanced_level;
        loop {
            if level == 0 {
                advanced_level = None;
                break;
            }
            level -= 1;
            point[level] += 1;
            if (point[level] as u64) < trip_counts[level] {
                advanced_level = Some(level);
                break;
            }
            point[level] = 0;
            if level == 0 {
                advanced_level = None;
                break;
            }
        }

        let Some(advanced_level) = advanced_level else {
            // Wrapped the outermost loop: execution finished.
            let mut result = SimulationResult {
                iterations: total_iterations,
                traffic,
            };
            // Flush dirty registers.
            for (ref_id, file) in &files {
                if let Some(stats) = result.traffic.get_mut(ref_id) {
                    stats.ram_writes += file.dirty_count();
                }
            }
            return result;
        };

        // A loop outside a reference's reuse loop advanced: its working set is stale.
        for (ref_id, file) in files.iter_mut() {
            let boundary = reuse_depth
                .get(ref_id)
                .map(|&d| d != usize::MAX && advanced_level < d)
                .unwrap_or(false);
            if boundary {
                let write_backs = file.flush();
                if let Some(stats) = traffic.get_mut(ref_id) {
                    stats.ram_writes += write_backs;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_core::{allocate, memory_cost, AllocatorKind, MemoryCostModel};
    use srra_ir::examples::{dot_product, paper_example_with};

    fn run(kind: AllocatorKind, budget: u64) -> (SimulationResult, u64, u64) {
        let kernel = paper_example_with(2, 10, 15);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(kind, &kernel, &analysis, budget).unwrap();
        let cost = memory_cost(&kernel, &analysis, &allocation, &MemoryCostModel::default());
        let sim = simulate(&kernel, &analysis, &allocation, 1_000_000);
        (sim, cost.remaining_accesses, cost.eliminated_accesses)
    }

    #[test]
    fn no_replacement_sends_every_access_to_ram() {
        let kernel = paper_example_with(2, 10, 15);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::NoReplacement, &kernel, &analysis, 0).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, 1_000_000);
        // 2 * 10 * 15 iterations, 6 occurrences each, of which d's read is forwarded
        // from the write earlier in the same iteration and never reaches the storage.
        assert_eq!(sim.iterations, 300);
        assert_eq!(sim.total_ram_accesses(), 300 * 5);
        assert_eq!(sim.total_register_hits(), 0);
        let d = ReuseAnalysis::of(&kernel).by_name("d").unwrap().ref_id();
        assert_eq!(sim.of(d).forwarded, 300);
    }

    #[test]
    fn full_replacement_only_performs_essential_transfers() {
        // Budget large enough to fully replace everything with reuse.
        let kernel = paper_example_with(2, 10, 15);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 1000).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, 1_000_000);
        for summary in &analysis {
            let observed = sim.of(summary.ref_id());
            if summary.has_reuse() {
                assert_eq!(
                    observed.ram_accesses(),
                    summary.access_counts().essential,
                    "{} should only perform its essential transfers",
                    summary.rendered()
                );
            }
        }
    }

    #[test]
    fn simulated_ordering_matches_the_analytic_ordering() {
        let kernel = paper_example_with(2, 10, 15);
        let analysis = ReuseAnalysis::of(&kernel);
        let base_alloc = allocate(AllocatorKind::NoReplacement, &kernel, &analysis, 0).unwrap();
        let base = simulate(&kernel, &analysis, &base_alloc, 1_000_000);

        let (fr, fr_remaining, _) = run(AllocatorKind::FullReuse, 40);
        let (pr, pr_remaining, _) = run(AllocatorKind::PartialReuse, 40);
        let (cpa, _, cpa_eliminated) = run(AllocatorKind::CriticalPathAware, 40);
        // Analytic ordering: PR-RA eliminates at least as much as FR-RA.
        assert!(pr_remaining <= fr_remaining);
        assert!(cpa_eliminated > 0);
        // Simulated ordering: PR-RA's extra registers never add RAM traffic over FR-RA,
        // and every allocator beats the untransformed code.  (CPA-RA can perform *more*
        // total accesses than FR-RA — it minimises critical-path cycles, not access
        // counts — which is exactly the paper's argument for it.)
        assert!(pr.total_ram_accesses() <= fr.total_ram_accesses());
        assert!(fr.total_ram_accesses() < base.total_ram_accesses());
        assert!(cpa.total_ram_accesses() < base.total_ram_accesses());
    }

    #[test]
    fn analytic_and_simulated_traffic_agree_for_full_and_none_modes() {
        let kernel = paper_example_with(2, 10, 15);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 40).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, 1_000_000);
        for decision in &allocation {
            let summary = analysis.get(decision.ref_id()).unwrap();
            let observed = sim.of(decision.ref_id()).ram_accesses();
            match decision.mode() {
                ReplacementMode::Full => {
                    assert_eq!(observed, summary.access_counts().essential)
                }
                ReplacementMode::None => assert_eq!(observed, summary.access_counts().total),
                ReplacementMode::Partial => {
                    assert!(observed <= summary.access_counts().total);
                }
            }
        }
    }

    #[test]
    fn accumulator_reuse_is_captured_by_a_single_register() {
        let kernel = dot_product(64);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 8).unwrap();
        let sim = simulate(&kernel, &analysis, &allocation, 1_000_000);
        let s = analysis.by_name("s").unwrap();
        // One initial fetch plus the final write-back.
        assert_eq!(sim.of(s.ref_id()).ram_accesses(), 2);
        assert_eq!(sim.of(s.ref_id()).register_hits, 2 * 64 - 1);
    }

    #[test]
    #[should_panic(expected = "more than the simulation limit")]
    fn oversized_kernels_are_rejected() {
        let kernel = paper_example_with(100, 100, 100);
        let analysis = ReuseAnalysis::of(&kernel);
        let allocation = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 64).unwrap();
        let _ = simulate(&kernel, &analysis, &allocation, 1_000);
    }
}
