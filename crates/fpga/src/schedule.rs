//! Resource-constrained list scheduling of one loop-body iteration.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use srra_dfg::{DataFlowGraph, LatencyModel, NodeId, NodeKind, Storage, StorageMap};
use srra_ir::BinOp;

/// Hardware resource limits visible to the scheduler.
///
/// A fine-grain configurable architecture can instantiate one operator per operation
/// (a fully spatial implementation), so operator counts are unlimited by default; the
/// binding of arrays to BlockRAMs, however, fixes the number of concurrent accesses per
/// array to the RAM's port count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// Concurrent accesses allowed per array per cycle (BlockRAM ports).
    pub ram_ports_per_array: u32,
    /// Maximum multipliers active in any cycle (`None` = unlimited, fully spatial).
    pub multipliers: Option<u32>,
    /// Maximum adders/subtractors/comparators active in any cycle (`None` = unlimited).
    pub alus: Option<u32>,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        Self {
            ram_ports_per_array: 2,
            multipliers: None,
            alus: None,
        }
    }
}

/// Resource classes tracked by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    RamPort(srra_ir::ArrayId),
    Multiplier,
    Alu,
}

/// The schedule of one steady-state loop iteration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationSchedule {
    start_times: Vec<u64>,
    finish_times: Vec<u64>,
    cycles: u64,
}

impl IterationSchedule {
    /// Start cycle of a node.
    pub fn start(&self, node: NodeId) -> u64 {
        self.start_times[node.index()]
    }

    /// Finish cycle of a node (start + latency).
    pub fn finish(&self, node: NodeId) -> u64 {
        self.finish_times[node.index()]
    }

    /// Total cycles one iteration occupies (the maximum finish time, at least 1).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }
}

/// Resource-constrained list scheduler.
///
/// Nodes are scheduled in priority order (longest path to a sink first, the classic
/// critical-path heuristic) at the earliest cycle where their predecessors have
/// finished and a resource of their class is free.
#[derive(Debug, Clone, Default)]
pub struct ListScheduler {
    limits: ResourceLimits,
}

impl ListScheduler {
    /// Creates a scheduler with the given resource limits.
    pub fn new(limits: ResourceLimits) -> Self {
        Self { limits }
    }

    /// The scheduler's resource limits.
    pub fn limits(&self) -> &ResourceLimits {
        &self.limits
    }

    fn resource_of(
        &self,
        dfg: &DataFlowGraph,
        node: NodeId,
        storage: &StorageMap,
    ) -> Option<(Resource, u32)> {
        match dfg.node(node).kind() {
            NodeKind::Reference { ref_id, array, .. } => {
                if storage.storage(*ref_id) == Storage::Ram {
                    Some((Resource::RamPort(*array), self.limits.ram_ports_per_array))
                } else {
                    None
                }
            }
            NodeKind::Binary { op, .. } => match op {
                BinOp::Mul | BinOp::Div => self
                    .limits
                    .multipliers
                    .map(|limit| (Resource::Multiplier, limit)),
                _ => self.limits.alus.map(|limit| (Resource::Alu, limit)),
            },
            NodeKind::Unary { .. } => self.limits.alus.map(|limit| (Resource::Alu, limit)),
            NodeKind::Input => None,
        }
    }

    /// Schedules one iteration of the loop body.
    pub fn schedule(
        &self,
        dfg: &DataFlowGraph,
        model: &LatencyModel,
        storage: &StorageMap,
    ) -> IterationSchedule {
        let n = dfg.node_count();
        let latency: Vec<u64> = dfg
            .node_ids()
            .map(|id| model.node_latency(dfg.node(id), storage))
            .collect();

        // Priority: longest latency path from the node to any sink (inclusive).
        let order = dfg.topological_order();
        let mut downstream = vec![0u64; n];
        for &node in order.iter().rev() {
            let best = dfg
                .successors(node)
                .iter()
                .map(|s| downstream[s.index()])
                .max()
                .unwrap_or(0);
            downstream[node.index()] = best + latency[node.index()];
        }

        let mut priority: Vec<NodeId> = dfg.node_ids().collect();
        priority.sort_by(|a, b| {
            downstream[b.index()]
                .cmp(&downstream[a.index()])
                .then(a.index().cmp(&b.index()))
        });

        let mut start = vec![u64::MAX; n];
        let mut finish = vec![0u64; n];
        let mut scheduled = vec![false; n];
        let mut usage: HashMap<(Resource, u64), u32> = HashMap::new();
        let mut remaining = n;

        while remaining > 0 {
            let mut progressed = false;
            for &node in &priority {
                if scheduled[node.index()] {
                    continue;
                }
                let preds_done = dfg.predecessors(node).iter().all(|p| scheduled[p.index()]);
                if !preds_done {
                    continue;
                }
                let ready: u64 = dfg
                    .predecessors(node)
                    .iter()
                    .map(|p| finish[p.index()])
                    .max()
                    .unwrap_or(0);
                let lat = latency[node.index()];
                let slot = match self.resource_of(dfg, node, storage) {
                    None => ready,
                    Some((resource, limit)) => {
                        let mut t = ready;
                        loop {
                            let span = lat.max(1);
                            let conflict = (t..t + span)
                                .any(|c| usage.get(&(resource, c)).copied().unwrap_or(0) >= limit);
                            if !conflict {
                                for c in t..t + span {
                                    *usage.entry((resource, c)).or_insert(0) += 1;
                                }
                                break t;
                            }
                            t += 1;
                        }
                    }
                };
                start[node.index()] = slot;
                finish[node.index()] = slot + lat;
                scheduled[node.index()] = true;
                remaining -= 1;
                progressed = true;
            }
            assert!(progressed, "scheduler made no progress (cyclic graph?)");
        }

        let cycles = finish.iter().copied().max().unwrap_or(0).max(1);
        IterationSchedule {
            start_times: start,
            finish_times: finish,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srra_ir::examples::{paper_example, stencil3};
    use srra_ir::KernelBuilder;

    fn paper_dfg() -> (srra_ir::Kernel, DataFlowGraph) {
        let kernel = paper_example();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        (kernel, dfg)
    }

    #[test]
    fn unconstrained_schedule_matches_the_critical_path() {
        let (_, dfg) = paper_dfg();
        let schedule = ListScheduler::default().schedule(
            &dfg,
            &LatencyModel::default(),
            &StorageMap::all_ram(),
        );
        // a/b (1) -> op1 (2) -> d (1) -> op2 (2) -> e (1) = 7 cycles.
        assert_eq!(schedule.cycles(), 7);
    }

    #[test]
    fn register_promotion_shortens_the_schedule() {
        let (kernel, dfg) = paper_dfg();
        let table = kernel.reference_table();
        let mut storage = StorageMap::all_ram();
        for name in ["a", "b", "d", "e"] {
            storage.set(table.find_by_name(name).unwrap().id(), Storage::Register);
        }
        let schedule = ListScheduler::default().schedule(&dfg, &LatencyModel::default(), &storage);
        assert_eq!(schedule.cycles(), 4);
    }

    #[test]
    fn precedence_is_respected() {
        let (_, dfg) = paper_dfg();
        let schedule = ListScheduler::default().schedule(
            &dfg,
            &LatencyModel::default(),
            &StorageMap::all_ram(),
        );
        for node in dfg.node_ids() {
            for &succ in dfg.successors(node) {
                assert!(schedule.start(succ) >= schedule.finish(node));
            }
        }
    }

    #[test]
    fn single_ported_ram_serialises_same_array_accesses() {
        // Three reads of the same array in one iteration: with one port they cannot
        // overlap, with two ports two of them can.
        let kernel = stencil3(32);
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let single = ListScheduler::new(ResourceLimits {
            ram_ports_per_array: 1,
            ..ResourceLimits::default()
        })
        .schedule(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        let dual = ListScheduler::default().schedule(
            &dfg,
            &LatencyModel::default(),
            &StorageMap::all_ram(),
        );
        assert!(single.cycles() > dual.cycles());
    }

    #[test]
    fn limited_multipliers_serialise_independent_products() {
        // Two independent multiplications: unlimited multipliers run them in parallel,
        // a single multiplier serialises them.
        let b = KernelBuilder::new("two_muls");
        let i = b.add_loop("i", 8);
        let x = b.add_array("x", &[8], 16);
        let y = b.add_array("y", &[8], 16);
        let o = b.add_array("o", &[8], 16);
        let p1 = b.mul(b.read(x, &[b.idx(i)]), b.int(3));
        let p2 = b.mul(b.read(y, &[b.idx(i)]), b.int(5));
        let sum = b.add(p1, p2);
        b.store(o, &[b.idx(i)], sum);
        let kernel = b.build().unwrap();
        let dfg = DataFlowGraph::from_kernel(&kernel);
        let unlimited = ListScheduler::default().schedule(
            &dfg,
            &LatencyModel::default(),
            &StorageMap::all_ram(),
        );
        let constrained = ListScheduler::new(ResourceLimits {
            multipliers: Some(1),
            ..ResourceLimits::default()
        })
        .schedule(&dfg, &LatencyModel::default(), &StorageMap::all_ram());
        assert!(constrained.cycles() > unlimited.cycles());
    }

    #[test]
    fn zero_latency_graph_still_takes_one_cycle() {
        let (kernel, dfg) = paper_dfg();
        let table = kernel.reference_table();
        let mut storage = StorageMap::all_ram();
        for info in table.iter() {
            storage.set(info.id(), Storage::Register);
        }
        let zero_ops = LatencyModel::default()
            .with_mul_latency(0)
            .with_register_latency(0);
        let schedule = ListScheduler::default().schedule(&dfg, &zero_ops, &storage);
        assert_eq!(schedule.cycles(), 1);
    }
}
