use serde::{Deserialize, Serialize};

/// Resource envelope of a target FPGA part.
///
/// Only the resources the paper reports on are modelled: logic slices (each holding two
/// 4-input LUTs and two flip-flops on a Virtex part), discrete registers (flip-flops)
/// and BlockRAM memories with their capacity and port count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    name: String,
    slices: u64,
    block_rams: u64,
    block_ram_bits: u64,
    block_ram_ports: u32,
}

impl DeviceModel {
    /// Creates a custom device model.
    pub fn new(
        name: impl Into<String>,
        slices: u64,
        block_rams: u64,
        block_ram_bits: u64,
        block_ram_ports: u32,
    ) -> Self {
        Self {
            name: name.into(),
            slices,
            block_rams,
            block_ram_bits,
            block_ram_ports,
        }
    }

    /// The Xilinx Virtex XCV1000 BG560 device used in the paper: 12,288 slices,
    /// 32 BlockRAMs of 4,096 bits, each configurable as single- or dual-ported.
    pub fn xcv1000() -> Self {
        Self::new("XCV1000-BG560", 12_288, 32, 4_096, 2)
    }

    /// A smaller Virtex XCV300 part, useful for resource-pressure experiments.
    pub fn xcv300() -> Self {
        Self::new("XCV300", 3_072, 16, 4_096, 2)
    }

    /// Part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logic slices.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Number of flip-flops (two per slice on Virtex parts).
    pub fn flip_flops(&self) -> u64 {
        self.slices * 2
    }

    /// Number of BlockRAM primitives.
    pub fn block_rams(&self) -> u64 {
        self.block_rams
    }

    /// Capacity of one BlockRAM in bits.
    pub fn block_ram_bits(&self) -> u64 {
        self.block_ram_bits
    }

    /// Number of independent access ports per BlockRAM.
    pub fn block_ram_ports(&self) -> u32 {
        self.block_ram_ports
    }

    /// Number of BlockRAMs needed to hold `bits` bits of data.
    pub fn block_rams_for(&self, bits: u64) -> u64 {
        bits.div_ceil(self.block_ram_bits).max(1)
    }

    /// Slice occupancy as a fraction of the device, clamped to `[0, +∞)`.
    pub fn slice_occupancy(&self, used_slices: u64) -> f64 {
        used_slices as f64 / self.slices as f64
    }

    /// Returns `true` when the given slice and BlockRAM usage fits on the device.
    pub fn fits(&self, used_slices: u64, used_block_rams: u64) -> bool {
        used_slices <= self.slices && used_block_rams <= self.block_rams
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::xcv1000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xcv1000_matches_the_paper_envelope() {
        let d = DeviceModel::xcv1000();
        assert_eq!(d.name(), "XCV1000-BG560");
        assert_eq!(d.slices(), 12_288);
        assert_eq!(d.flip_flops(), 24_576);
        assert_eq!(d.block_rams(), 32);
        assert_eq!(d.block_ram_bits(), 4_096);
        assert_eq!(d.block_ram_ports(), 2);
    }

    #[test]
    fn block_ram_packing_rounds_up() {
        let d = DeviceModel::xcv1000();
        assert_eq!(d.block_rams_for(1), 1);
        assert_eq!(d.block_rams_for(4_096), 1);
        assert_eq!(d.block_rams_for(4_097), 2);
        assert_eq!(d.block_rams_for(65_536), 16);
    }

    #[test]
    fn occupancy_and_fit() {
        let d = DeviceModel::xcv300();
        assert!((d.slice_occupancy(1_536) - 0.5).abs() < 1e-12);
        assert!(d.fits(3_072, 16));
        assert!(!d.fits(3_073, 1));
        assert!(!d.fits(1, 17));
    }

    #[test]
    fn default_is_the_paper_device() {
        assert_eq!(DeviceModel::default(), DeviceModel::xcv1000());
    }
}
