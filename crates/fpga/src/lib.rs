//! FPGA device, scheduling, clock and area models.
//!
//! The paper evaluates its register allocation algorithms by synthesising behavioural
//! VHDL with Mentor Monet, Synplify and Xilinx ISE and running place-and-route for a
//! Virtex XCV1000 BG560 part.  That tool chain (and the device) is not available here,
//! so this crate provides the documented substitution described in `DESIGN.md`:
//!
//! * [`DeviceModel`] — the target part's resource envelope (slices, flip-flops,
//!   BlockRAMs), with an XCV1000 preset,
//! * [`ListScheduler`] — a resource-constrained list scheduler that executes the loop
//!   body DFG with RAM-port constraints and produces the steady-state iteration
//!   latency,
//! * [`ClockModel`] — an analytic estimate of the achievable clock period, including
//!   the control/mux degradation that more registers and partial replacement cause
//!   (the effect behind the paper's "clock period" column),
//! * [`AreaModel`] — slice and BlockRAM usage estimates,
//! * [`HardwareDesign`] — the combined design point (cycles, clock, wall-clock time,
//!   area), produced by [`HardwareDesign::evaluate`].
//!
//! The absolute numbers are not expected to match a 2001-era synthesis flow; the
//! *relative* behaviour (cycle-count ordering across FR-RA/PR-RA/CPA-RA, slight clock
//! degradation for the more complex designs, register/RAM trade-offs) is produced by
//! the same mechanisms and is what the Table 1 reproduction relies on.
//!
//! # Example
//!
//! ```
//! use srra_ir::examples::paper_example;
//! use srra_reuse::ReuseAnalysis;
//! use srra_core::{allocate, AllocatorKind};
//! use srra_fpga::{DeviceModel, EvaluationOptions, HardwareDesign};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kernel = paper_example();
//! let analysis = ReuseAnalysis::of(&kernel);
//! let fr = allocate(AllocatorKind::FullReuse, &kernel, &analysis, 64)?;
//! let cpa = allocate(AllocatorKind::CriticalPathAware, &kernel, &analysis, 64)?;
//! let options = EvaluationOptions::default();
//! let device = DeviceModel::xcv1000();
//! let fr_design = HardwareDesign::evaluate(&kernel, &analysis, &fr, &device, &options);
//! let cpa_design = HardwareDesign::evaluate(&kernel, &analysis, &cpa, &device, &options);
//! assert!(cpa_design.total_cycles < fr_design.total_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod clock;
mod design;
mod device;
mod execute;
mod schedule;

pub use area::{AreaEstimate, AreaModel};
pub use clock::ClockModel;
pub use design::{EvaluationOptions, HardwareDesign};
pub use device::DeviceModel;
pub use execute::{simulate, RefTraffic, SimulationResult};
pub use schedule::{IterationSchedule, ListScheduler, ResourceLimits};
